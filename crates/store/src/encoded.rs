//! Dictionary-encoded query graphs.
//!
//! The SPARQL front-end works on decoded [`gstored_sparql::QueryGraph`]s;
//! evaluation works on term ids. [`EncodedQuery`] resolves every constant
//! against the dictionary once, at the coordinator, and is then shared
//! with all sites. A constant that is absent from the dictionary can never
//! match ([`EncodedVertex::Unsatisfiable`]).

use gstored_rdf::{Dictionary, TermId};
use gstored_sparql::{EdgeLabel, QVertex, QueryGraph};

/// A class requirement on a query vertex: resolved class ids, or a marker
/// that some required class does not occur in the data at all.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequiredClasses {
    /// All required classes resolved (empty = unconstrained).
    Resolved(Vec<TermId>),
    /// A required class is absent from the dictionary: no vertex can match.
    Unsatisfiable,
}

impl RequiredClasses {
    /// The resolved class ids, or `None` when unsatisfiable.
    pub fn ids(&self) -> Option<&[TermId]> {
        match self {
            RequiredClasses::Resolved(v) => Some(v),
            RequiredClasses::Unsatisfiable => None,
        }
    }

    /// Whether there is no constraint at all.
    pub fn is_empty(&self) -> bool {
        matches!(self, RequiredClasses::Resolved(v) if v.is_empty())
    }
}

/// An encoded query vertex.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EncodedVertex {
    /// A variable vertex.
    Var,
    /// A constant resolved to a term id.
    Const(TermId),
    /// A constant that does not occur in the data: no match can bind it.
    Unsatisfiable,
}

impl EncodedVertex {
    /// Whether this vertex is a variable.
    pub fn is_var(&self) -> bool {
        matches!(self, EncodedVertex::Var)
    }
}

/// An encoded edge label.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EncodedLabel {
    /// Matches any data label (a predicate variable — Definition 3 treats
    /// each occurrence independently).
    Any,
    /// A constant predicate.
    Const(TermId),
    /// A constant predicate absent from the data: never matches.
    Unsatisfiable,
}

/// An encoded query edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EncodedEdge {
    /// Position in the original pattern list (edge identity).
    pub index: usize,
    pub from: usize,
    pub to: usize,
    pub label: EncodedLabel,
}

/// A query graph with all constants resolved to term ids.
#[derive(Debug, Clone)]
pub struct EncodedQuery {
    vertices: Vec<EncodedVertex>,
    edges: Vec<EncodedEdge>,
    out: Vec<Vec<usize>>,
    inc: Vec<Vec<usize>>,
    /// Per-vertex class requirements (from `rdf:type` patterns).
    required_classes: Vec<RequiredClasses>,
    /// Query-vertex ids of projected variables (in projection order).
    projection: Vec<usize>,
    /// Variable names per vertex (None for constants), for decoding output.
    var_names: Vec<Option<String>>,
}

impl EncodedQuery {
    /// Encode a query graph against a dictionary (read-only: unknown
    /// constants become [`EncodedVertex::Unsatisfiable`] rather than being
    /// interned, so encoding cannot grow the dictionary).
    ///
    /// Returns `None` if a projected variable has no query vertex (i.e. it
    /// only occurs in predicate position — an unsupported projection).
    pub fn encode(q: &QueryGraph, dict: &Dictionary) -> Option<Self> {
        let vertices: Vec<EncodedVertex> = q
            .vertices()
            .iter()
            .map(|v| match v {
                QVertex::Var(_) => EncodedVertex::Var,
                QVertex::Const(t) => match dict.id_of(t) {
                    Some(id) => EncodedVertex::Const(id),
                    None => EncodedVertex::Unsatisfiable,
                },
            })
            .collect();
        let var_names: Vec<Option<String>> = q
            .vertices()
            .iter()
            .map(|v| v.as_var().map(str::to_owned))
            .collect();
        let edges: Vec<EncodedEdge> = q
            .edges()
            .iter()
            .map(|e| EncodedEdge {
                index: e.index,
                from: e.from,
                to: e.to,
                label: match &e.label {
                    EdgeLabel::Var(_) => EncodedLabel::Any,
                    EdgeLabel::Const(t) => match dict.id_of(t) {
                        Some(id) => EncodedLabel::Const(id),
                        None => EncodedLabel::Unsatisfiable,
                    },
                },
            })
            .collect();
        let n = vertices.len();
        let mut out = vec![Vec::new(); n];
        let mut inc = vec![Vec::new(); n];
        for (i, e) in edges.iter().enumerate() {
            out[e.from].push(i);
            inc[e.to].push(i);
        }
        let required_classes: Vec<RequiredClasses> = (0..n)
            .map(|v| {
                let mut ids = Vec::new();
                for c in q.class_constraints(v) {
                    match dict.id_of(c) {
                        Some(id) => ids.push(id),
                        None => return RequiredClasses::Unsatisfiable,
                    }
                }
                RequiredClasses::Resolved(ids)
            })
            .collect();
        let mut projection = Vec::with_capacity(q.projection().len());
        for name in q.projection() {
            projection.push(q.vertex_of_var(name)?);
        }
        Some(EncodedQuery {
            vertices,
            edges,
            out,
            inc,
            required_classes,
            projection,
            var_names,
        })
    }

    /// Rebuild an encoded query from its serializable parts (the inverse
    /// of reading the accessors). The per-vertex edge indexes are derived
    /// from the edge list; used by the wire codec when shipping a query
    /// to a remote worker process.
    ///
    /// All vectors must be consistent: `required_classes` and `var_names`
    /// have one entry per vertex, edge endpoints and projection entries
    /// index into `vertices`.
    pub fn from_parts(
        vertices: Vec<EncodedVertex>,
        edges: Vec<EncodedEdge>,
        required_classes: Vec<RequiredClasses>,
        projection: Vec<usize>,
        var_names: Vec<Option<String>>,
    ) -> Self {
        let n = vertices.len();
        assert_eq!(required_classes.len(), n, "one class entry per vertex");
        assert_eq!(var_names.len(), n, "one name entry per vertex");
        let mut out = vec![Vec::new(); n];
        let mut inc = vec![Vec::new(); n];
        for (i, e) in edges.iter().enumerate() {
            out[e.from].push(i);
            inc[e.to].push(i);
        }
        EncodedQuery {
            vertices,
            edges,
            out,
            inc,
            required_classes,
            projection,
            var_names,
        }
    }

    /// Number of query vertices `|V^Q|`.
    pub fn vertex_count(&self) -> usize {
        self.vertices.len()
    }

    /// Number of query edges `|E^Q|`.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The encoded vertices.
    pub fn vertices(&self) -> &[EncodedVertex] {
        &self.vertices
    }

    /// The encoded edges.
    pub fn edges(&self) -> &[EncodedEdge] {
        &self.edges
    }

    /// One vertex.
    pub fn vertex(&self, v: usize) -> EncodedVertex {
        self.vertices[v]
    }

    /// One edge.
    pub fn edge(&self, i: usize) -> &EncodedEdge {
        &self.edges[i]
    }

    /// Outgoing edge indexes of `v`.
    pub fn out_edges(&self, v: usize) -> &[usize] {
        &self.out[v]
    }

    /// Incoming edge indexes of `v`.
    pub fn in_edges(&self, v: usize) -> &[usize] {
        &self.inc[v]
    }

    /// All edges incident to `v`.
    pub fn incident_edges(&self, v: usize) -> impl Iterator<Item = usize> + '_ {
        self.out[v].iter().chain(self.inc[v].iter()).copied()
    }

    /// Undirected neighbors of `v` (deduplicated, excluding self).
    pub fn neighbors(&self, v: usize) -> Vec<usize> {
        let mut ns: Vec<usize> = self.out[v]
            .iter()
            .map(|&e| self.edges[e].to)
            .chain(self.inc[v].iter().map(|&e| self.edges[e].from))
            .filter(|&u| u != v)
            .collect();
        ns.sort_unstable();
        ns.dedup();
        ns
    }

    /// Query-vertex ids of the projection, in order.
    pub fn projection(&self) -> &[usize] {
        &self.projection
    }

    /// Variable name of a vertex (None for constants).
    pub fn var_name(&self, v: usize) -> Option<&str> {
        self.var_names[v].as_deref()
    }

    /// Class requirements of a vertex.
    pub fn required_classes(&self, v: usize) -> &RequiredClasses {
        &self.required_classes[v]
    }

    /// Whether any vertex or edge is unsatisfiable (query has no matches).
    pub fn has_unsatisfiable(&self) -> bool {
        self.vertices
            .iter()
            .any(|v| matches!(v, EncodedVertex::Unsatisfiable))
            || self
                .edges
                .iter()
                .any(|e| matches!(e.label, EncodedLabel::Unsatisfiable))
            || self
                .required_classes
                .iter()
                .any(|r| matches!(r, RequiredClasses::Unsatisfiable))
    }

    /// Whether the given vertex subset is weakly connected in the query.
    pub fn subset_connected(&self, subset: &[usize]) -> bool {
        if subset.is_empty() {
            return false;
        }
        let mut seen = vec![subset[0]];
        let mut stack = vec![subset[0]];
        while let Some(v) = stack.pop() {
            for u in self.neighbors(v) {
                if subset.contains(&u) && !seen.contains(&u) {
                    seen.push(u);
                    stack.push(u);
                }
            }
        }
        seen.len() == subset.len()
    }

    /// Every non-empty weakly-connected *proper* subset of query vertices:
    /// the candidate internal cores of the LPM enumerator. (The full vertex
    /// set is excluded — an all-internal match has no crossing edge and is
    /// a local complete match, not an LPM; Definition 5 condition 4.)
    pub fn proper_connected_subsets(&self) -> Vec<Vec<usize>> {
        let n = self.vertices.len();
        assert!(n <= 30, "query too large for subset enumeration");
        let mut result = Vec::new();
        let full = (1u32 << n) - 1;
        for mask in 1u32..full {
            let subset: Vec<usize> = (0..n).filter(|&i| mask & (1 << i) != 0).collect();
            if self.subset_connected(&subset) {
                result.push(subset);
            }
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gstored_rdf::{RdfGraph, Term, Triple};
    use gstored_sparql::parse_query;

    fn setup() -> (RdfGraph, QueryGraph) {
        let g = RdfGraph::from_triples(vec![Triple::new(
            Term::iri("http://a"),
            Term::iri("http://p"),
            Term::iri("http://b"),
        )]);
        let q = QueryGraph::from_query(
            &parse_query("SELECT ?x WHERE { ?x <http://p> <http://b> }").unwrap(),
        )
        .unwrap();
        (g, q)
    }

    #[test]
    fn encodes_constants_against_dictionary() {
        let (g, q) = setup();
        let e = EncodedQuery::encode(&q, g.dict()).unwrap();
        assert_eq!(e.vertex_count(), 2);
        assert!(e.vertex(0).is_var());
        let b = g.dict().id_of(&Term::iri("http://b")).unwrap();
        assert_eq!(e.vertex(1), EncodedVertex::Const(b));
        let p = g.dict().id_of(&Term::iri("http://p")).unwrap();
        assert_eq!(e.edge(0).label, EncodedLabel::Const(p));
        assert!(!e.has_unsatisfiable());
    }

    #[test]
    fn unknown_constants_are_unsatisfiable() {
        let (g, _) = setup();
        let q = QueryGraph::from_query(
            &parse_query("SELECT ?x WHERE { ?x <http://p> <http://nope> }").unwrap(),
        )
        .unwrap();
        let e = EncodedQuery::encode(&q, g.dict()).unwrap();
        assert_eq!(e.vertex(1), EncodedVertex::Unsatisfiable);
        assert!(e.has_unsatisfiable());
    }

    #[test]
    fn unknown_predicate_is_unsatisfiable() {
        let (g, _) = setup();
        let q =
            QueryGraph::from_query(&parse_query("SELECT ?x WHERE { ?x <http://q> ?y }").unwrap())
                .unwrap();
        let e = EncodedQuery::encode(&q, g.dict()).unwrap();
        assert_eq!(e.edge(0).label, EncodedLabel::Unsatisfiable);
    }

    #[test]
    fn variable_predicates_encode_as_any() {
        let (g, _) = setup();
        let q =
            QueryGraph::from_query(&parse_query("SELECT ?x WHERE { ?x ?p ?y }").unwrap()).unwrap();
        let e = EncodedQuery::encode(&q, g.dict()).unwrap();
        assert_eq!(e.edge(0).label, EncodedLabel::Any);
    }

    #[test]
    fn predicate_only_projection_is_rejected() {
        let (g, _) = setup();
        let q =
            QueryGraph::from_query(&parse_query("SELECT ?p WHERE { ?x ?p ?y }").unwrap()).unwrap();
        assert!(EncodedQuery::encode(&q, g.dict()).is_none());
    }

    #[test]
    fn projection_maps_to_vertex_ids() {
        let (g, q) = setup();
        let e = EncodedQuery::encode(&q, g.dict()).unwrap();
        assert_eq!(e.projection(), &[0]);
        assert_eq!(e.var_name(0), Some("x"));
        assert_eq!(e.var_name(1), None);
    }

    #[test]
    fn proper_connected_subsets_exclude_full_set() {
        let (g, _) = setup();
        let q = QueryGraph::from_query(
            &parse_query("SELECT * WHERE { ?x <http://p> ?y . ?y <http://p> ?z }").unwrap(),
        )
        .unwrap();
        let e = EncodedQuery::encode(&q, g.dict()).unwrap();
        let subsets = e.proper_connected_subsets();
        assert!(subsets.iter().all(|s| s.len() < 3));
        // {x,y}, {y,z} connected; {x,z} not; singletons all connected.
        assert_eq!(subsets.len(), 3 + 2);
    }

    #[test]
    fn encoding_does_not_grow_dictionary() {
        let (g, _) = setup();
        let before = g.dict().len();
        let q = QueryGraph::from_query(
            &parse_query("SELECT ?x WHERE { ?x <http://p> <http://unknown> }").unwrap(),
        )
        .unwrap();
        let _ = EncodedQuery::encode(&q, g.dict()).unwrap();
        assert_eq!(g.dict().len(), before);
    }
}
