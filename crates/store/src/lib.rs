//! # gstored-store
//!
//! The per-site local evaluation layer: what the paper obtains by
//! "modifying gStore \[25\] to perform partial evaluation". Each simulated
//! site wraps its [`gstored_partition::Fragment`] in a [`LocalStore`] and
//! exposes:
//!
//! * [`encoded::EncodedQuery`] — the query graph with constants resolved
//!   against the dictionary.
//! * [`candidates`] — filter-and-evaluate candidate computation per query
//!   vertex (the "find candidates first" behaviour Section VI relies on).
//! * [`matcher`] — backtracking graph homomorphism search, used for
//!   (a) the centralized reference evaluation, (b) intra-fragment complete
//!   matches, and (c) the star-query fast path of Section VIII-B.
//! * [`partial`] — the **local partial match** enumerator implementing
//!   Definition 5 exactly (connected internal core + forced crossing-edge
//!   boundary), reproducing the paper's Fig. 3 byte for byte.
//! * [`lpm::LocalPartialMatch`] — the partial-match representation shared
//!   with `gstored-core`, including the crossing-edge → query-edge mapping
//!   that LEC features are built from.

pub mod candidates;
pub mod encoded;
pub mod labels;
pub mod lpm;
pub mod matcher;
pub mod partial;

pub use candidates::{internal_candidates, vertex_candidates, CandidateFilter};
pub use encoded::{EncodedEdge, EncodedLabel, EncodedQuery, EncodedVertex, RequiredClasses};
pub use lpm::{Binding, LocalPartialMatch};
pub use matcher::{find_matches, find_star_matches, local_complete_matches, Adjacency};
pub use partial::enumerate_local_partial_matches;

/// A local store: a fragment plus the machinery to evaluate queries on it.
///
/// Thin by design — all state lives in the fragment; the store adds the
/// evaluation entry points used by `gstored-core`'s sites.
#[derive(Debug, Clone)]
pub struct LocalStore {
    fragment: gstored_partition::Fragment,
}

impl LocalStore {
    /// Wrap a fragment.
    pub fn new(fragment: gstored_partition::Fragment) -> Self {
        LocalStore { fragment }
    }

    /// The underlying fragment.
    pub fn fragment(&self) -> &gstored_partition::Fragment {
        &self.fragment
    }

    /// Complete matches entirely inside this fragment (every query vertex
    /// bound to an **internal** vertex). Together with the assembled
    /// crossing matches these are exactly all matches, with no overlap.
    pub fn local_complete_matches(&self, q: &EncodedQuery) -> Vec<Vec<gstored_rdf::VertexId>> {
        matcher::local_complete_matches(&self.fragment, q)
    }

    /// Local partial matches per Definition 5.
    pub fn local_partial_matches(
        &self,
        q: &EncodedQuery,
        filter: &CandidateFilter,
    ) -> Vec<LocalPartialMatch> {
        partial::enumerate_local_partial_matches(&self.fragment, q, filter)
    }

    /// Internal candidates `C(Q, v)` for every query vertex (Section VI).
    pub fn internal_candidates(&self, q: &EncodedQuery) -> Vec<Vec<gstored_rdf::VertexId>> {
        candidates::internal_candidates(&self.fragment, q)
    }
}
