//! Backtracking graph homomorphism search.
//!
//! Used for three jobs:
//!
//! * the **centralized reference evaluation** over the whole `RdfGraph`
//!   (ground truth in tests, and the "single store" side of baselines),
//! * **intra-fragment complete matches** (every query vertex bound to an
//!   internal vertex) — together with assembled crossing matches these
//!   partition the answer set,
//! * the **star-query fast path** (Section VIII-B): a star match is fully
//!   contained in whichever fragment the center is internal to, so sites
//!   evaluate stars locally with no communication.
//!
//! The search is a standard candidate-ordered backtracking over the query
//! vertices, with Definition 3's injective multiset label matching checked
//! on every bound pair.

use gstored_partition::Fragment;
use gstored_rdf::{RdfGraph, TermId, VertexId};

use crate::candidates::vertex_candidates;
use crate::encoded::EncodedQuery;
use crate::labels::labels_satisfiable;

/// Read-only adjacency abstraction: implemented by the full graph and by
/// fragments, so candidate computation and matching run on either.
pub trait Adjacency {
    /// Outgoing `(label, to)` pairs of `v`, sorted.
    fn out_edges(&self, v: VertexId) -> &[(TermId, VertexId)];
    /// Incoming `(label, from)` pairs of `v`, sorted.
    fn in_edges(&self, v: VertexId) -> &[(TermId, VertexId)];
    /// Whether `v` carries every class in `required` (gStore-style vertex
    /// signatures; see `gstored_rdf::RdfGraph`'s class handling).
    fn has_classes(&self, v: VertexId, required: &[TermId]) -> bool;
}

impl Adjacency for RdfGraph {
    fn out_edges(&self, v: VertexId) -> &[(TermId, VertexId)] {
        RdfGraph::out_edges(self, v)
    }
    fn in_edges(&self, v: VertexId) -> &[(TermId, VertexId)] {
        RdfGraph::in_edges(self, v)
    }
    fn has_classes(&self, v: VertexId, required: &[TermId]) -> bool {
        required.iter().all(|c| RdfGraph::has_class(self, v, *c))
    }
}

impl Adjacency for Fragment {
    fn out_edges(&self, v: VertexId) -> &[(TermId, VertexId)] {
        Fragment::out_edges(self, v)
    }
    fn in_edges(&self, v: VertexId) -> &[(TermId, VertexId)] {
        Fragment::in_edges(self, v)
    }
    fn has_classes(&self, v: VertexId, required: &[TermId]) -> bool {
        Fragment::has_classes(self, v, required)
    }
}

/// All homomorphic matches of `q` over the full graph (Definition 3).
/// This is the centralized reference semantics.
pub fn find_matches(graph: &RdfGraph, q: &EncodedQuery) -> Vec<Vec<VertexId>> {
    if q.has_unsatisfiable() {
        return Vec::new();
    }
    let mut universe: Vec<VertexId> = graph.vertices().collect();
    universe.sort_unstable();
    search(graph, q, &universe, &|_| true)
}

/// Complete matches of `q` inside one fragment with **every** query vertex
/// bound to an internal vertex.
pub fn local_complete_matches(fragment: &Fragment, q: &EncodedQuery) -> Vec<Vec<VertexId>> {
    if q.has_unsatisfiable() {
        return Vec::new();
    }
    search(fragment, q, &fragment.internal, &|_| true)
}

/// Star-query fast path: matches inside one fragment whose designated
/// `center` query vertex binds to an internal vertex. Leaves may bind to
/// extended vertices (their edges to the center are replicated crossing
/// edges), and each match is counted exactly once across the cluster
/// because internal sets are disjoint.
pub fn find_star_matches(
    fragment: &Fragment,
    q: &EncodedQuery,
    center: usize,
) -> Vec<Vec<VertexId>> {
    if q.has_unsatisfiable() {
        return Vec::new();
    }
    // The center draws from internal vertices; leaves from everything
    // stored locally (internal ∪ extended).
    let mut universe: Vec<VertexId> = fragment
        .internal
        .iter()
        .chain(fragment.extended.iter())
        .copied()
        .collect();
    universe.sort_unstable();
    universe.dedup();
    let internal = fragment.internal.clone();
    search(fragment, q, &universe, &move |(qv, u)| {
        qv != center || internal.binary_search(&u).is_ok()
    })
}

/// Core backtracking search. `admit` can veto `(query vertex, data vertex)`
/// pairs (used by the star fast path).
fn search<A: Adjacency>(
    adj: &A,
    q: &EncodedQuery,
    universe: &[VertexId],
    admit: &dyn Fn((usize, VertexId)) -> bool,
) -> Vec<Vec<VertexId>> {
    let n = q.vertex_count();
    // Candidate sets per query vertex.
    let mut cands: Vec<Vec<VertexId>> = Vec::with_capacity(n);
    for qv in 0..n {
        let mut c = vertex_candidates(adj, q, qv, universe);
        c.retain(|&u| admit((qv, u)));
        if c.is_empty() {
            return Vec::new();
        }
        cands.push(c);
    }

    let order = matching_order(q, &cands);
    let mut binding: Vec<Option<VertexId>> = vec![None; n];
    let mut out = Vec::new();
    extend(adj, q, &order, 0, &mut binding, &cands, &mut out);
    out
}

/// Query-vertex ordering: start from the smallest candidate set, then
/// prefer vertices adjacent to already-ordered ones (connected expansion),
/// tie-broken by candidate count. Connected expansion lets every new
/// binding be checked against at least one bound neighbor.
fn matching_order(q: &EncodedQuery, cands: &[Vec<VertexId>]) -> Vec<usize> {
    let n = q.vertex_count();
    let mut order = Vec::with_capacity(n);
    let mut placed = vec![false; n];
    let first = (0..n)
        .min_by_key(|&v| cands[v].len())
        .expect("non-empty query");
    order.push(first);
    placed[first] = true;
    while order.len() < n {
        let next = (0..n)
            .filter(|&v| !placed[v])
            .min_by_key(|&v| {
                let connected = q.neighbors(v).iter().any(|&u| placed[u]);
                (if connected { 0 } else { 1 }, cands[v].len())
            })
            .expect("loop bounded by n");
        order.push(next);
        placed[next] = true;
    }
    order
}

fn extend<A: Adjacency>(
    adj: &A,
    q: &EncodedQuery,
    order: &[usize],
    depth: usize,
    binding: &mut Vec<Option<VertexId>>,
    cands: &[Vec<VertexId>],
    out: &mut Vec<Vec<VertexId>>,
) {
    if depth == order.len() {
        out.push(
            binding
                .iter()
                .map(|b| b.expect("complete binding"))
                .collect(),
        );
        return;
    }
    let qv = order[depth];
    // If qv was already bound through constant propagation, just recurse.
    for &u in &cands[qv] {
        binding[qv] = Some(u);
        if consistent(adj, q, qv, binding) {
            extend(adj, q, order, depth + 1, binding, cands, out);
        }
    }
    binding[qv] = None;
}

/// Check every query edge between `qv` and an already-bound vertex,
/// grouping parallel edges for the injective multiset label test.
pub(crate) fn consistent<A: Adjacency>(
    adj: &A,
    q: &EncodedQuery,
    qv: usize,
    binding: &[Option<VertexId>],
) -> bool {
    debug_assert!(binding[qv].is_some(), "qv must be bound");
    // Collect bound neighbors (deduplicated) in both directions.
    let mut checked: Vec<(usize, bool)> = Vec::new(); // (other qv, qv_is_source)
    for &ei in q.out_edges(qv) {
        let e = q.edge(ei);
        if binding[e.to].is_some() && !checked.contains(&(e.to, true)) {
            checked.push((e.to, true));
        }
    }
    for &ei in q.in_edges(qv) {
        let e = q.edge(ei);
        if binding[e.from].is_some() && !checked.contains(&(e.from, false)) {
            checked.push((e.from, false));
        }
    }
    for (other, qv_is_source) in checked {
        let (src_q, dst_q) = if qv_is_source {
            (qv, other)
        } else {
            (other, qv)
        };
        let src_u = binding[src_q].expect("both bound");
        let dst_u = binding[dst_q].expect("both bound");
        // Parallel query edges between src_q and dst_q (this direction).
        let q_labels: Vec<_> = q
            .out_edges(src_q)
            .iter()
            .filter(|&&ei| q.edge(ei).to == dst_q)
            .map(|&ei| q.edge(ei).label)
            .collect();
        // Data labels between the images.
        let d_labels: Vec<TermId> = adj
            .out_edges(src_u)
            .iter()
            .filter(|&&(_, t)| t == dst_u)
            .map(|&(l, _)| l)
            .collect();
        if !labels_satisfiable(&q_labels, &d_labels) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use gstored_partition::{DistributedGraph, ExplicitPartitioner, HashPartitioner};
    use gstored_rdf::{Term, Triple};
    use gstored_sparql::{analysis, parse_query, QueryGraph};
    use std::collections::HashMap;

    fn t(s: &str, p: &str, o: &str) -> Triple {
        Triple::new(Term::iri(s), Term::iri(p), Term::iri(o))
    }

    fn encode(g: &RdfGraph, text: &str) -> EncodedQuery {
        let q = QueryGraph::from_query(&parse_query(text).unwrap()).unwrap();
        EncodedQuery::encode(&q, g.dict()).unwrap()
    }

    fn diamond() -> RdfGraph {
        let mut g = RdfGraph::from_triples(vec![
            t("http://a", "http://p", "http://b"),
            t("http://a", "http://p", "http://c"),
            t("http://b", "http://q", "http://d"),
            t("http://c", "http://q", "http://d"),
        ]);
        g.finalize();
        g
    }

    #[test]
    fn finds_both_paths_through_diamond() {
        let g = diamond();
        let q = encode(&g, "SELECT * WHERE { ?x <http://p> ?y . ?y <http://q> ?z }");
        let ms = find_matches(&g, &q);
        assert_eq!(ms.len(), 2);
    }

    #[test]
    fn homomorphisms_allow_shared_images() {
        // ?x -p-> ?y, ?z -p-> ?y : x and z may bind the same vertex.
        let g = diamond();
        let q = encode(&g, "SELECT * WHERE { ?x <http://p> ?y . ?z <http://p> ?y }");
        let ms = find_matches(&g, &q);
        // y=b: x=a,z=a. y=c: x=a,z=a. 2 matches.
        assert_eq!(ms.len(), 2);
    }

    #[test]
    fn constant_anchors_the_search() {
        let g = diamond();
        let q = encode(&g, "SELECT ?x WHERE { ?x <http://q> <http://d> }");
        let ms = find_matches(&g, &q);
        assert_eq!(ms.len(), 2);
    }

    #[test]
    fn cycle_queries_match_cycles_only() {
        let mut g = RdfGraph::from_triples(vec![
            t("http://1", "http://p", "http://2"),
            t("http://2", "http://p", "http://3"),
            t("http://3", "http://p", "http://1"),
            t("http://4", "http://p", "http://5"), // not on a cycle
        ]);
        g.finalize();
        let q = encode(
            &g,
            "SELECT * WHERE { ?a <http://p> ?b . ?b <http://p> ?c . ?c <http://p> ?a }",
        );
        let ms = find_matches(&g, &q);
        assert_eq!(ms.len(), 3, "three rotations of the triangle");
    }

    #[test]
    fn injective_multiset_labels_enforced() {
        // Two parallel query edges with the same constant predicate can
        // never match a simple data edge.
        let g = diamond();
        let q = encode(&g, "SELECT * WHERE { ?x <http://p> ?y . ?x <http://p> ?y }");
        assert!(find_matches(&g, &q).is_empty());
        // But constant + variable over two parallel data labels works.
        let mut g2 = RdfGraph::from_triples(vec![
            t("http://a", "http://p", "http://b"),
            t("http://a", "http://r", "http://b"),
        ]);
        g2.finalize();
        let q2 = encode(&g2, "SELECT ?x ?y WHERE { ?x <http://p> ?y . ?x ?any ?y }");
        assert_eq!(find_matches(&g2, &q2).len(), 1);
    }

    #[test]
    fn variable_predicate_matches_each_label_once() {
        let mut g = RdfGraph::from_triples(vec![
            t("http://a", "http://p", "http://b"),
            t("http://a", "http://q", "http://b"),
        ]);
        g.finalize();
        let q = encode(&g, "SELECT ?x ?y WHERE { ?x ?p ?y }");
        // Vertex bindings are (a,b) either way; the two predicate labels do
        // not multiply vertex bindings (labels are not part of the binding).
        let ms = find_matches(&g, &q);
        assert_eq!(ms.len(), 1);
    }

    #[test]
    fn local_complete_matches_require_all_internal() {
        let g = diamond();
        let a = g.vertex_of(&Term::iri("http://a")).unwrap();
        let b = g.vertex_of(&Term::iri("http://b")).unwrap();
        let c = g.vertex_of(&Term::iri("http://c")).unwrap();
        let d = g.vertex_of(&Term::iri("http://d")).unwrap();
        // a,b in F0; c,d in F1.
        let mut map = HashMap::new();
        map.insert(a, 0);
        map.insert(b, 0);
        map.insert(c, 1);
        map.insert(d, 1);
        let q = encode(&g, "SELECT * WHERE { ?x <http://p> ?y . ?y <http://q> ?z }");
        let dist = DistributedGraph::build(g, &ExplicitPartitioner::new(2, map));
        let m0 = local_complete_matches(&dist.fragments[0], &q);
        let m1 = local_complete_matches(&dist.fragments[1], &q);
        // a->b->d crosses; a->c->d crosses; no all-internal match anywhere.
        assert!(m0.is_empty());
        assert!(m1.is_empty());
    }

    #[test]
    fn star_fast_path_counts_each_match_once() {
        // Star query: center with two leaves; leaves scattered.
        let mut g = RdfGraph::from_triples(vec![
            t("http://h", "http://p", "http://l1"),
            t("http://h", "http://q", "http://l2"),
            t("http://h2", "http://p", "http://l1"),
            t("http://h2", "http://q", "http://l2"),
        ]);
        g.finalize();
        let q = encode(&g, "SELECT * WHERE { ?c <http://p> ?a . ?c <http://q> ?b }");
        let qg = QueryGraph::from_query(
            &parse_query("SELECT * WHERE { ?c <http://p> ?a . ?c <http://q> ?b }").unwrap(),
        )
        .unwrap();
        let center = analysis::analyze(&qg).star_center.unwrap();
        let centralized = find_matches(&g, &q).len();
        for seed in 0..5 {
            let dist = DistributedGraph::build(g.clone(), &HashPartitioner::with_seed(3, seed));
            let total: usize = dist
                .fragments
                .iter()
                .map(|f| find_star_matches(f, &q, center).len())
                .sum();
            assert_eq!(total, centralized, "seed {seed}");
        }
    }

    #[test]
    fn fragment_matching_sees_crossing_edges() {
        let g = diamond();
        let a = g.vertex_of(&Term::iri("http://a")).unwrap();
        let q = encode(&g, "SELECT * WHERE { ?x <http://p> ?y }");
        // Put a alone in F0: its p-edges are crossing but replicated, so a
        // star centered on x=a still matches locally.
        let mut map = HashMap::new();
        map.insert(a, 0);
        let dist = DistributedGraph::build(g, &ExplicitPartitioner::new(2, map).with_default(1));
        let ms = find_star_matches(&dist.fragments[0], &q, 0);
        assert_eq!(ms.len(), 2);
    }

    #[test]
    fn empty_candidates_short_circuit() {
        let g = diamond();
        let q = encode(&g, "SELECT * WHERE { ?x <http://p> ?y . ?y <http://p> ?z }");
        // No vertex has an incoming p AND outgoing p in the diamond
        // (b,c have in-p but out-q). So no matches.
        assert!(find_matches(&g, &q).is_empty());
    }

    #[test]
    fn self_loop_matching() {
        let mut g = RdfGraph::from_triples(vec![
            t("http://s", "http://p", "http://s"),
            t("http://s", "http://p", "http://o"),
        ]);
        g.finalize();
        let q = encode(&g, "SELECT ?x WHERE { ?x <http://p> ?x }");
        let ms = find_matches(&g, &q);
        assert_eq!(ms.len(), 1);
        let s = g.vertex_of(&Term::iri("http://s")).unwrap();
        assert_eq!(ms[0], vec![s]);
    }
}
