//! Backtracking graph homomorphism search.
//!
//! Used for three jobs:
//!
//! * the **centralized reference evaluation** over the whole `RdfGraph`
//!   (ground truth in tests, and the "single store" side of baselines),
//! * **intra-fragment complete matches** (every query vertex bound to an
//!   internal vertex) — together with assembled crossing matches these
//!   partition the answer set,
//! * the **star-query fast path** (Section VIII-B): a star match is fully
//!   contained in whichever fragment the center is internal to, so sites
//!   evaluate stars locally with no communication.
//!
//! The search is a candidate-ordered backtracking over the query vertices
//! with **neighbor-driven enumeration**: once the matching order places a
//! vertex adjacent to an already-bound one, candidates are read off the
//! bound neighbor's label-matching adjacency range (a `partition_point`
//! slice of the sorted `(label, vertex)` lists) instead of scanning the
//! vertex's full candidate list, and each one is verified against the
//! remaining constraints. Definition 3's injective multiset label matching
//! is checked on every bound pair.

use gstored_partition::Fragment;
use gstored_rdf::{RdfGraph, TermId, VertexId};

use crate::candidates::{label_edge_range, vertex_candidates};
use crate::encoded::{EncodedLabel, EncodedQuery};
use crate::labels::labels_satisfiable;

/// Read-only adjacency abstraction: implemented by the full graph and by
/// fragments, so candidate computation and matching run on either.
pub trait Adjacency {
    /// Outgoing `(label, to)` pairs of `v`, sorted.
    fn out_edges(&self, v: VertexId) -> &[(TermId, VertexId)];
    /// Incoming `(label, from)` pairs of `v`, sorted.
    fn in_edges(&self, v: VertexId) -> &[(TermId, VertexId)];
    /// Whether `v` carries every class in `required` (gStore-style vertex
    /// signatures; see `gstored_rdf::RdfGraph`'s class handling).
    fn has_classes(&self, v: VertexId, required: &[TermId]) -> bool;
}

impl Adjacency for RdfGraph {
    fn out_edges(&self, v: VertexId) -> &[(TermId, VertexId)] {
        RdfGraph::out_edges(self, v)
    }
    fn in_edges(&self, v: VertexId) -> &[(TermId, VertexId)] {
        RdfGraph::in_edges(self, v)
    }
    fn has_classes(&self, v: VertexId, required: &[TermId]) -> bool {
        required.iter().all(|c| RdfGraph::has_class(self, v, *c))
    }
}

impl Adjacency for Fragment {
    fn out_edges(&self, v: VertexId) -> &[(TermId, VertexId)] {
        Fragment::out_edges(self, v)
    }
    fn in_edges(&self, v: VertexId) -> &[(TermId, VertexId)] {
        Fragment::in_edges(self, v)
    }
    fn has_classes(&self, v: VertexId, required: &[TermId]) -> bool {
        Fragment::has_classes(self, v, required)
    }
}

/// All homomorphic matches of `q` over the full graph (Definition 3).
/// This is the centralized reference semantics.
pub fn find_matches(graph: &RdfGraph, q: &EncodedQuery) -> Vec<Vec<VertexId>> {
    if q.has_unsatisfiable() {
        return Vec::new();
    }
    let mut universe: Vec<VertexId> = graph.vertices().collect();
    universe.sort_unstable();
    search(graph, q, &universe, |_, _| true)
}

/// Complete matches of `q` inside one fragment with **every** query vertex
/// bound to an internal vertex.
pub fn local_complete_matches(fragment: &Fragment, q: &EncodedQuery) -> Vec<Vec<VertexId>> {
    if q.has_unsatisfiable() {
        return Vec::new();
    }
    search(fragment, q, &fragment.internal, |_, _| true)
}

/// Star-query fast path: matches inside one fragment whose designated
/// `center` query vertex binds to an internal vertex. Leaves may bind to
/// extended vertices (their edges to the center are replicated crossing
/// edges), and each match is counted exactly once across the cluster
/// because internal sets are disjoint.
pub fn find_star_matches(
    fragment: &Fragment,
    q: &EncodedQuery,
    center: usize,
) -> Vec<Vec<VertexId>> {
    if q.has_unsatisfiable() {
        return Vec::new();
    }
    // The center draws from internal vertices; leaves from everything
    // stored locally (internal ∪ extended).
    let mut universe: Vec<VertexId> = fragment
        .internal
        .iter()
        .chain(fragment.extended.iter())
        .copied()
        .collect();
    universe.sort_unstable();
    universe.dedup();
    // Borrow the internal list — the admit closure lives only as long as
    // the search, so no clone is needed.
    let internal: &[VertexId] = &fragment.internal;
    search(fragment, q, &universe, |qv, u| {
        qv != center || internal.binary_search(&u).is_ok()
    })
}

/// Core backtracking search. `admit` can veto `(query vertex, data vertex)`
/// pairs (used by the star fast path); it is statically dispatched so the
/// common all-admitting closure compiles to nothing.
fn search<A: Adjacency>(
    adj: &A,
    q: &EncodedQuery,
    universe: &[VertexId],
    admit: impl Fn(usize, VertexId) -> bool,
) -> Vec<Vec<VertexId>> {
    let n = q.vertex_count();
    // Candidate sets per query vertex (sorted — they filter the sorted
    // universe — so the neighbor-driven enumeration can binary-search them).
    let mut cands: Vec<Vec<VertexId>> = Vec::with_capacity(n);
    for qv in 0..n {
        let mut c = vertex_candidates(adj, q, qv, universe);
        c.retain(|&u| admit(qv, u));
        if c.is_empty() {
            return Vec::new();
        }
        cands.push(c);
    }

    let order = matching_order(q, &cands);
    let mut binding: Vec<Option<VertexId>> = vec![None; n];
    let mut out = Vec::new();
    extend(adj, q, &order, 0, &mut binding, &cands, &mut out);
    out
}

/// Query-vertex ordering: start from the smallest candidate set, then
/// prefer vertices adjacent to already-ordered ones (connected expansion),
/// tie-broken by candidate count. Connected expansion lets every new
/// binding be checked against at least one bound neighbor.
fn matching_order(q: &EncodedQuery, cands: &[Vec<VertexId>]) -> Vec<usize> {
    let n = q.vertex_count();
    let mut order = Vec::with_capacity(n);
    let mut placed = vec![false; n];
    let first = (0..n)
        .min_by_key(|&v| cands[v].len())
        .expect("non-empty query");
    order.push(first);
    placed[first] = true;
    while order.len() < n {
        let next = (0..n)
            .filter(|&v| !placed[v])
            .min_by_key(|&v| {
                let connected = q.neighbors(v).iter().any(|&u| placed[u]);
                (if connected { 0 } else { 1 }, cands[v].len())
            })
            .expect("loop bounded by n");
        order.push(next);
        placed[next] = true;
    }
    order
}

/// Where the candidates for the vertex being bound next come from.
///
/// [`anchor_candidates`] picks the cheapest source: a bound neighbor's
/// label-matching adjacency range when one exists and is smaller than the
/// per-vertex candidate list, the candidate list otherwise.
pub(crate) enum Anchor<'a> {
    /// A constant-label `partition_point` range of a bound neighbor's
    /// adjacency: its vertices are sorted and duplicate-free.
    Range(&'a [(TermId, VertexId)]),
    /// A variable-label adjacency slice of a bound neighbor: vertices may
    /// repeat across labels, so the caller must deduplicate.
    Mixed(&'a [(TermId, VertexId)]),
    /// No bound neighbor beats the candidate list — scan it.
    Scan,
    /// Some incident edge admits no binding at all: prune this branch.
    Empty,
}

/// Pick the smallest candidate source for `qv` given the current partial
/// `binding`: every query edge between `qv` and a bound vertex offers the
/// bound endpoint's adjacency range in the matching direction, competing
/// against the precomputed candidate list of size `cands_len`.
pub(crate) fn anchor_candidates<'a, A: Adjacency>(
    adj: &'a A,
    q: &EncodedQuery,
    qv: usize,
    binding: &[Option<VertexId>],
    cands_len: usize,
) -> Anchor<'a> {
    let mut best_len = cands_len;
    let mut best: Option<(&'a [(TermId, VertexId)], bool)> = None; // (slice, is_mixed)
    let mut consider = |slice: &'a [(TermId, VertexId)], label: EncodedLabel| -> bool {
        let (range, mixed) = match label {
            EncodedLabel::Const(p) => (label_edge_range(slice, p), false),
            EncodedLabel::Any => (slice, true),
            EncodedLabel::Unsatisfiable => (&slice[..0], false),
        };
        if range.is_empty() {
            return false; // no candidate can satisfy this edge
        }
        if range.len() < best_len {
            best_len = range.len();
            best = Some((range, mixed));
        }
        true
    };
    // An edge qv -> other constrains qv to the in-neighbors of other's
    // image; other -> qv constrains qv to the out-neighbors.
    for &ei in q.out_edges(qv) {
        let e = q.edge(ei);
        if let Some(nb) = binding[e.to] {
            if !consider(adj.in_edges(nb), e.label) {
                return Anchor::Empty;
            }
        }
    }
    for &ei in q.in_edges(qv) {
        let e = q.edge(ei);
        if let Some(nb) = binding[e.from] {
            if !consider(adj.out_edges(nb), e.label) {
                return Anchor::Empty;
            }
        }
    }
    match best {
        Some((range, false)) => Anchor::Range(range),
        Some((range, true)) => Anchor::Mixed(range),
        None => Anchor::Scan,
    }
}

/// Invoke `f` once per viable candidate for `qv`: the members of `cands`
/// (sorted) that also satisfy the cheapest anchor source picked by
/// [`anchor_candidates`]. This is the neighbor-driven enumeration both
/// the matcher and the LPM enumerator extend with — when a bound
/// neighbor's adjacency range is smaller than the candidate list, only
/// that range is walked and membership in `cands` is a binary search;
/// the caller's consistency check verifies all remaining edges.
pub(crate) fn for_each_anchored_candidate<A: Adjacency>(
    adj: &A,
    q: &EncodedQuery,
    qv: usize,
    binding: &mut Vec<Option<VertexId>>,
    cands: &[VertexId],
    mut f: impl FnMut(&mut Vec<Option<VertexId>>, VertexId),
) {
    match anchor_candidates(adj, q, qv, binding, cands.len()) {
        Anchor::Range(range) => {
            for &(_, u) in range {
                if cands.binary_search(&u).is_ok() {
                    f(binding, u);
                }
            }
        }
        Anchor::Mixed(range) => {
            let mut targets: Vec<VertexId> = range.iter().map(|&(_, u)| u).collect();
            targets.sort_unstable();
            targets.dedup();
            for u in targets {
                if cands.binary_search(&u).is_ok() {
                    f(binding, u);
                }
            }
        }
        Anchor::Scan => {
            for &u in cands {
                f(binding, u);
            }
        }
        Anchor::Empty => {}
    }
}

fn extend<A: Adjacency>(
    adj: &A,
    q: &EncodedQuery,
    order: &[usize],
    depth: usize,
    binding: &mut Vec<Option<VertexId>>,
    cands: &[Vec<VertexId>],
    out: &mut Vec<Vec<VertexId>>,
) {
    if depth == order.len() {
        out.push(
            binding
                .iter()
                .map(|b| b.expect("complete binding"))
                .collect(),
        );
        return;
    }
    let qv = order[depth];
    for_each_anchored_candidate(adj, q, qv, binding, &cands[qv], |binding, u| {
        binding[qv] = Some(u);
        if consistent(adj, q, qv, binding) {
            extend(adj, q, order, depth + 1, binding, cands, out);
        }
    });
    binding[qv] = None;
}

/// Check every query edge between `qv` and an already-bound vertex,
/// grouping parallel edges for the injective multiset label test.
pub(crate) fn consistent<A: Adjacency>(
    adj: &A,
    q: &EncodedQuery,
    qv: usize,
    binding: &[Option<VertexId>],
) -> bool {
    pairs_consistent(adj, q, qv, binding, |_| true)
}

/// [`consistent`] restricted to bound neighbors accepted by `relevant`
/// (the LPM enumerator exempts boundary-boundary edges per condition 3).
/// Bound-neighbor groups are deduplicated with two per-direction bitsets
/// over the query vertices — no allocation, no linear scans.
pub(crate) fn pairs_consistent<A: Adjacency>(
    adj: &A,
    q: &EncodedQuery,
    qv: usize,
    binding: &[Option<VertexId>],
    relevant: impl Fn(usize) -> bool,
) -> bool {
    debug_assert!(binding[qv].is_some(), "qv must be bound");
    // Bitsets fit every distributable query (LECSign masks are 64-bit);
    // wider queries skip dedup, re-checking parallel groups redundantly
    // but correctly.
    let dedup = binding.len() <= 64;
    let (mut seen_out, mut seen_in) = (0u64, 0u64);
    for &ei in q.out_edges(qv) {
        let e = q.edge(ei);
        if binding[e.to].is_none() || !relevant(e.to) {
            continue;
        }
        if dedup {
            let bit = 1u64 << e.to;
            if seen_out & bit != 0 {
                continue;
            }
            seen_out |= bit;
        }
        if !pair_consistent(adj, q, qv, e.to, binding) {
            return false;
        }
    }
    for &ei in q.in_edges(qv) {
        let e = q.edge(ei);
        if binding[e.from].is_none() || !relevant(e.from) {
            continue;
        }
        if dedup {
            let bit = 1u64 << e.from;
            if seen_in & bit != 0 {
                continue;
            }
            seen_in |= bit;
        }
        if !pair_consistent(adj, q, e.from, qv, binding) {
            return false;
        }
    }
    true
}

/// Verify all parallel query edges `src_q -> dst_q` against the data edges
/// between the bound images. The single-edge case (overwhelmingly common)
/// is a direct adjacency probe; parallel edges fall back to the injective
/// multiset matching.
fn pair_consistent<A: Adjacency>(
    adj: &A,
    q: &EncodedQuery,
    src_q: usize,
    dst_q: usize,
    binding: &[Option<VertexId>],
) -> bool {
    let src_u = binding[src_q].expect("both bound");
    let dst_u = binding[dst_q].expect("both bound");
    let out = adj.out_edges(src_u);
    let mut first: Option<EncodedLabel> = None;
    let mut multi = false;
    for &ei in q.out_edges(src_q) {
        if q.edge(ei).to != dst_q {
            continue;
        }
        if first.is_some() {
            multi = true;
            break;
        }
        first = Some(q.edge(ei).label);
    }
    let Some(label) = first else {
        return true;
    };
    if !multi {
        return match label {
            EncodedLabel::Any => out.iter().any(|&(_, t)| t == dst_u),
            EncodedLabel::Const(p) => out.binary_search(&(p, dst_u)).is_ok(),
            EncodedLabel::Unsatisfiable => false,
        };
    }
    // Parallel query edges between src_q and dst_q (this direction).
    let q_labels: Vec<EncodedLabel> = q
        .out_edges(src_q)
        .iter()
        .filter(|&&ei| q.edge(ei).to == dst_q)
        .map(|&ei| q.edge(ei).label)
        .collect();
    // Data labels between the images.
    let d_labels: Vec<TermId> = out
        .iter()
        .filter(|&&(_, t)| t == dst_u)
        .map(|&(l, _)| l)
        .collect();
    labels_satisfiable(&q_labels, &d_labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gstored_partition::{DistributedGraph, ExplicitPartitioner, HashPartitioner};
    use gstored_rdf::{Term, Triple};
    use gstored_sparql::{analysis, parse_query, QueryGraph};
    use std::collections::HashMap;

    fn t(s: &str, p: &str, o: &str) -> Triple {
        Triple::new(Term::iri(s), Term::iri(p), Term::iri(o))
    }

    fn encode(g: &RdfGraph, text: &str) -> EncodedQuery {
        let q = QueryGraph::from_query(&parse_query(text).unwrap()).unwrap();
        EncodedQuery::encode(&q, g.dict()).unwrap()
    }

    fn diamond() -> RdfGraph {
        let mut g = RdfGraph::from_triples(vec![
            t("http://a", "http://p", "http://b"),
            t("http://a", "http://p", "http://c"),
            t("http://b", "http://q", "http://d"),
            t("http://c", "http://q", "http://d"),
        ]);
        g.finalize();
        g
    }

    #[test]
    fn finds_both_paths_through_diamond() {
        let g = diamond();
        let q = encode(&g, "SELECT * WHERE { ?x <http://p> ?y . ?y <http://q> ?z }");
        let ms = find_matches(&g, &q);
        assert_eq!(ms.len(), 2);
    }

    #[test]
    fn homomorphisms_allow_shared_images() {
        // ?x -p-> ?y, ?z -p-> ?y : x and z may bind the same vertex.
        let g = diamond();
        let q = encode(&g, "SELECT * WHERE { ?x <http://p> ?y . ?z <http://p> ?y }");
        let ms = find_matches(&g, &q);
        // y=b: x=a,z=a. y=c: x=a,z=a. 2 matches.
        assert_eq!(ms.len(), 2);
    }

    #[test]
    fn constant_anchors_the_search() {
        let g = diamond();
        let q = encode(&g, "SELECT ?x WHERE { ?x <http://q> <http://d> }");
        let ms = find_matches(&g, &q);
        assert_eq!(ms.len(), 2);
    }

    #[test]
    fn cycle_queries_match_cycles_only() {
        let mut g = RdfGraph::from_triples(vec![
            t("http://1", "http://p", "http://2"),
            t("http://2", "http://p", "http://3"),
            t("http://3", "http://p", "http://1"),
            t("http://4", "http://p", "http://5"), // not on a cycle
        ]);
        g.finalize();
        let q = encode(
            &g,
            "SELECT * WHERE { ?a <http://p> ?b . ?b <http://p> ?c . ?c <http://p> ?a }",
        );
        let ms = find_matches(&g, &q);
        assert_eq!(ms.len(), 3, "three rotations of the triangle");
    }

    #[test]
    fn injective_multiset_labels_enforced() {
        // Two parallel query edges with the same constant predicate can
        // never match a simple data edge.
        let g = diamond();
        let q = encode(&g, "SELECT * WHERE { ?x <http://p> ?y . ?x <http://p> ?y }");
        assert!(find_matches(&g, &q).is_empty());
        // But constant + variable over two parallel data labels works.
        let mut g2 = RdfGraph::from_triples(vec![
            t("http://a", "http://p", "http://b"),
            t("http://a", "http://r", "http://b"),
        ]);
        g2.finalize();
        let q2 = encode(&g2, "SELECT ?x ?y WHERE { ?x <http://p> ?y . ?x ?any ?y }");
        assert_eq!(find_matches(&g2, &q2).len(), 1);
    }

    #[test]
    fn variable_predicate_matches_each_label_once() {
        let mut g = RdfGraph::from_triples(vec![
            t("http://a", "http://p", "http://b"),
            t("http://a", "http://q", "http://b"),
        ]);
        g.finalize();
        let q = encode(&g, "SELECT ?x ?y WHERE { ?x ?p ?y }");
        // Vertex bindings are (a,b) either way; the two predicate labels do
        // not multiply vertex bindings (labels are not part of the binding).
        let ms = find_matches(&g, &q);
        assert_eq!(ms.len(), 1);
    }

    #[test]
    fn local_complete_matches_require_all_internal() {
        let g = diamond();
        let a = g.vertex_of(&Term::iri("http://a")).unwrap();
        let b = g.vertex_of(&Term::iri("http://b")).unwrap();
        let c = g.vertex_of(&Term::iri("http://c")).unwrap();
        let d = g.vertex_of(&Term::iri("http://d")).unwrap();
        // a,b in F0; c,d in F1.
        let mut map = HashMap::new();
        map.insert(a, 0);
        map.insert(b, 0);
        map.insert(c, 1);
        map.insert(d, 1);
        let q = encode(&g, "SELECT * WHERE { ?x <http://p> ?y . ?y <http://q> ?z }");
        let dist = DistributedGraph::build(g, &ExplicitPartitioner::new(2, map));
        let m0 = local_complete_matches(&dist.fragments[0], &q);
        let m1 = local_complete_matches(&dist.fragments[1], &q);
        // a->b->d crosses; a->c->d crosses; no all-internal match anywhere.
        assert!(m0.is_empty());
        assert!(m1.is_empty());
    }

    #[test]
    fn star_fast_path_counts_each_match_once() {
        // Star query: center with two leaves; leaves scattered.
        let mut g = RdfGraph::from_triples(vec![
            t("http://h", "http://p", "http://l1"),
            t("http://h", "http://q", "http://l2"),
            t("http://h2", "http://p", "http://l1"),
            t("http://h2", "http://q", "http://l2"),
        ]);
        g.finalize();
        let q = encode(&g, "SELECT * WHERE { ?c <http://p> ?a . ?c <http://q> ?b }");
        let qg = QueryGraph::from_query(
            &parse_query("SELECT * WHERE { ?c <http://p> ?a . ?c <http://q> ?b }").unwrap(),
        )
        .unwrap();
        let center = analysis::analyze(&qg).star_center.unwrap();
        let centralized = find_matches(&g, &q).len();
        for seed in 0..5 {
            let dist = DistributedGraph::build(g.clone(), &HashPartitioner::with_seed(3, seed));
            let total: usize = dist
                .fragments
                .iter()
                .map(|f| find_star_matches(f, &q, center).len())
                .sum();
            assert_eq!(total, centralized, "seed {seed}");
        }
    }

    #[test]
    fn fragment_matching_sees_crossing_edges() {
        let g = diamond();
        let a = g.vertex_of(&Term::iri("http://a")).unwrap();
        let q = encode(&g, "SELECT * WHERE { ?x <http://p> ?y }");
        // Put a alone in F0: its p-edges are crossing but replicated, so a
        // star centered on x=a still matches locally.
        let mut map = HashMap::new();
        map.insert(a, 0);
        let dist = DistributedGraph::build(g, &ExplicitPartitioner::new(2, map).with_default(1));
        let ms = find_star_matches(&dist.fragments[0], &q, 0);
        assert_eq!(ms.len(), 2);
    }

    #[test]
    fn empty_candidates_short_circuit() {
        let g = diamond();
        let q = encode(&g, "SELECT * WHERE { ?x <http://p> ?y . ?y <http://p> ?z }");
        // No vertex has an incoming p AND outgoing p in the diamond
        // (b,c have in-p but out-q). So no matches.
        assert!(find_matches(&g, &q).is_empty());
    }

    #[test]
    fn self_loop_matching() {
        let mut g = RdfGraph::from_triples(vec![
            t("http://s", "http://p", "http://s"),
            t("http://s", "http://p", "http://o"),
        ]);
        g.finalize();
        let q = encode(&g, "SELECT ?x WHERE { ?x <http://p> ?x }");
        let ms = find_matches(&g, &q);
        assert_eq!(ms.len(), 1);
        let s = g.vertex_of(&Term::iri("http://s")).unwrap();
        assert_eq!(ms[0], vec![s]);
    }
}
