//! Local partial matches (Definition 5 of the paper).
//!
//! A local partial match (LPM) binds a subset of query vertices to vertices
//! of one fragment; the rest are `NULL`. Its serialization is the vector
//! `[f(v1), ..., f(vn)]` shown in the paper's Fig. 3. Each LPM records the
//! crossing edges it matched and which query edge each one matched — the
//! raw material of LEC features (Definition 8).

use gstored_partition::FragmentId;
use gstored_rdf::{EdgeRef, VertexId};

/// A (partial) binding of query vertices: index = query vertex id,
/// `None` = the paper's `NULL`.
pub type Binding = Vec<Option<VertexId>>;

/// One local partial match.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LocalPartialMatch {
    /// Fragment the match was found in.
    pub fragment: FragmentId,
    /// The serialization vector `[f(v1), ..., f(vn)]`.
    pub binding: Binding,
    /// Matched crossing edges: `(data edge, query edge index)` pairs,
    /// sorted by query edge index. This is the function `g` of the LEC
    /// feature restricted to this match.
    pub crossing: Vec<(EdgeRef, usize)>,
    /// Bitmask over query vertices: bit `i` set iff `f(v_i)` is an
    /// internal vertex of `fragment` (the LECSign of Definition 8).
    pub internal_mask: u64,
}

impl LocalPartialMatch {
    /// Whether query vertex `v` is bound (non-NULL).
    pub fn is_bound(&self, v: usize) -> bool {
        self.binding[v].is_some()
    }

    /// Whether query vertex `v` is bound to an internal vertex.
    pub fn is_internal(&self, v: usize) -> bool {
        self.internal_mask & (1 << v) != 0
    }

    /// Number of bound query vertices.
    pub fn bound_count(&self) -> usize {
        self.binding.iter().filter(|b| b.is_some()).count()
    }

    /// The paper's join condition on raw matches (\[18\], restated in the
    /// proof of Theorem 2): the two LPMs come from different fragments,
    /// share at least one crossing edge matching the same query edge, and
    /// agree on every query vertex bound in both. Additionally no query
    /// vertex may be *internal* in both (vertex-disjoint fragments make
    /// that impossible for genuinely joinable matches; checking it keeps
    /// the join sound on adversarial inputs).
    pub fn joinable(&self, other: &LocalPartialMatch) -> bool {
        if self.fragment == other.fragment {
            return false;
        }
        if self.internal_mask & other.internal_mask != 0 {
            return false;
        }
        // At least one shared crossing edge mapped to the same query edge.
        let mut shared = false;
        for &(e, qe) in &self.crossing {
            for &(e2, qe2) in &other.crossing {
                if qe == qe2 {
                    if e == e2 {
                        shared = true;
                    } else {
                        // Same query edge matched by different data edges:
                        // the bindings conflict.
                        return false;
                    }
                }
            }
        }
        if !shared {
            return false;
        }
        // Binding agreement on commonly-bound vertices.
        self.binding
            .iter()
            .zip(&other.binding)
            .all(|(a, b)| match (a, b) {
                (Some(x), Some(y)) => x == y,
                _ => true,
            })
    }

    /// Join two LPMs into a combined partial match (caller must have
    /// checked [`Self::joinable`]). The fragment id of the result is
    /// meaningless and set to `usize::MAX`.
    pub fn join(&self, other: &LocalPartialMatch) -> LocalPartialMatch {
        debug_assert!(self.joinable(other));
        let binding: Binding = self
            .binding
            .iter()
            .zip(&other.binding)
            .map(|(a, b)| a.or(*b))
            .collect();
        let mut crossing = self.crossing.clone();
        for &(e, qe) in &other.crossing {
            if !crossing.contains(&(e, qe)) {
                crossing.push((e, qe));
            }
        }
        crossing.sort_unstable_by_key(|&(_, qe)| qe);
        LocalPartialMatch {
            fragment: usize::MAX,
            binding,
            crossing,
            internal_mask: self.internal_mask | other.internal_mask,
        }
    }

    /// Whether a joined result covers the whole query: every vertex is
    /// internal somewhere (Theorem 4 condition 3). For such results the
    /// binding is total and all query edges are matched.
    pub fn is_complete(&self, vertex_count: usize) -> bool {
        let full = if vertex_count == 64 {
            u64::MAX
        } else {
            (1u64 << vertex_count) - 1
        };
        self.internal_mask == full
    }

    /// The complete binding, if every vertex is bound.
    pub fn complete_binding(&self) -> Option<Vec<VertexId>> {
        self.binding.iter().copied().collect()
    }
}

/// Pretty-print the serialization vector like the paper's Fig. 3
/// (`[006,NULL,001,NULL,003]`), using raw term ids.
pub fn format_binding(b: &Binding) -> String {
    let parts: Vec<String> = b
        .iter()
        .map(|x| match x {
            Some(v) => format!("{}", v.0),
            None => "NULL".to_string(),
        })
        .collect();
    format!("[{}]", parts.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gstored_rdf::TermId;

    fn edge(f: u64, l: u64, t: u64) -> EdgeRef {
        EdgeRef {
            from: TermId(f),
            label: TermId(l),
            to: TermId(t),
        }
    }

    fn lpm(
        fragment: FragmentId,
        binding: Vec<Option<u64>>,
        crossing: Vec<(EdgeRef, usize)>,
        internal: &[usize],
    ) -> LocalPartialMatch {
        let mut mask = 0u64;
        for &i in internal {
            mask |= 1 << i;
        }
        LocalPartialMatch {
            fragment,
            binding: binding.into_iter().map(|o| o.map(TermId)).collect(),
            crossing,
            internal_mask: mask,
        }
    }

    /// PM1_1 and PM1_2 from the paper's Example 4 (Fig. 3): they join on
    /// the shared crossing edge 001->006 mapping query edge v3->v1.
    #[test]
    fn paper_pm11_joins_pm12() {
        let ce = edge(1, 100, 6); // 001 -influencedBy-> 006
        let pm11 = lpm(
            0,
            vec![Some(6), None, Some(1), None, Some(3)],
            vec![(ce, 1)],
            &[2, 4], // v3, v5 internal in F1
        );
        let pm12 = lpm(
            1,
            vec![Some(6), Some(8), Some(1), Some(9), None],
            vec![(ce, 1)],
            &[0, 1, 3], // v1, v2, v4 internal in F2
        );
        assert!(pm11.joinable(&pm12));
        assert!(pm12.joinable(&pm11));
        let joined = pm11.join(&pm12);
        assert!(joined.is_complete(5));
        assert_eq!(
            joined.complete_binding().unwrap(),
            vec![TermId(6), TermId(8), TermId(1), TermId(9), TermId(3)]
        );
    }

    #[test]
    fn same_fragment_never_joins() {
        let ce = edge(1, 100, 6);
        let a = lpm(0, vec![Some(6), None], vec![(ce, 0)], &[1]);
        let b = lpm(0, vec![Some(6), None], vec![(ce, 0)], &[1]);
        assert!(!a.joinable(&b));
    }

    #[test]
    fn no_shared_crossing_edge_no_join() {
        let a = lpm(0, vec![Some(6), None], vec![(edge(1, 100, 6), 0)], &[0]);
        let b = lpm(1, vec![None, Some(9)], vec![(edge(2, 100, 9), 1)], &[1]);
        assert!(!a.joinable(&b));
    }

    #[test]
    fn conflicting_bindings_block_join() {
        let ce = edge(1, 100, 6);
        // Both bind v1 but to different data vertices.
        let a = lpm(0, vec![Some(6), Some(7)], vec![(ce, 0)], &[0]);
        let b = lpm(1, vec![Some(6), Some(8)], vec![(ce, 0)], &[1]);
        assert!(!a.joinable(&b));
    }

    #[test]
    fn same_query_edge_different_data_edges_blocks_join() {
        let a = lpm(0, vec![Some(6), None], vec![(edge(1, 100, 6), 0)], &[0]);
        let b = lpm(1, vec![None, Some(9)], vec![(edge(2, 100, 9), 0)], &[1]);
        assert!(!a.joinable(&b));
    }

    #[test]
    fn overlapping_internal_masks_block_join() {
        let ce = edge(1, 100, 6);
        let a = lpm(0, vec![Some(6), None], vec![(ce, 0)], &[0]);
        let b = lpm(1, vec![Some(6), None], vec![(ce, 0)], &[0]);
        assert!(!a.joinable(&b));
    }

    #[test]
    fn join_merges_crossing_edges_sorted() {
        let e0 = edge(1, 100, 6);
        let e1 = edge(2, 100, 7);
        let a = lpm(0, vec![Some(6), None, Some(1)], vec![(e0, 1)], &[2]);
        let b = lpm(
            1,
            vec![Some(6), Some(7), None],
            vec![(e0, 1), (e1, 0)],
            &[0],
        );
        assert!(a.joinable(&b));
        let j = a.join(&b);
        assert_eq!(j.crossing, vec![(e1, 0), (e0, 1)]);
        assert!(!j.is_complete(3), "v2 not internal anywhere yet");
    }

    #[test]
    fn format_binding_matches_paper_style() {
        let b: Binding = vec![
            Some(TermId(6)),
            None,
            Some(TermId(1)),
            None,
            Some(TermId(3)),
        ];
        assert_eq!(format_binding(&b), "[6,NULL,1,NULL,3]");
    }

    #[test]
    fn is_complete_handles_word_boundary() {
        let full = lpm(0, vec![Some(1)], vec![], &[0]);
        assert!(full.is_complete(1));
        let mut wide = full.clone();
        wide.internal_mask = u64::MAX;
        assert!(wide.is_complete(64));
    }
}
