//! Filter-and-evaluate candidate computation.
//!
//! "Existing RDF database systems ... first compute out the candidates of
//! all variables, and then search matches over these candidates. The
//! process of finding candidates is often very quick." (Section VI.)
//!
//! A data vertex `u` is a candidate for query vertex `v` when `u` has, for
//! every query edge incident to `v`, an incident data edge with a
//! compatible label and direction. For internal vertices of a fragment
//! this filter is *exact with respect to the full graph*, because crossing
//! edges are replicated, so an internal vertex's complete neighborhood is
//! locally visible — the property Algorithm 4 depends on.

use gstored_rdf::{TermId, VertexId};

use crate::encoded::{EncodedLabel, EncodedQuery, EncodedVertex};
use crate::matcher::Adjacency;

/// Optional per-query-vertex restriction on *extended-vertex* bindings,
/// plus optional exact candidate sets. Used to plug Algorithm 4's
/// bit-vector filter into the LPM enumerator.
#[derive(Debug, Clone, Default)]
pub struct CandidateFilter {
    /// For each query vertex, an optional predicate on extended-vertex
    /// bindings: a compact bit vector `B_v` with a hash mapping. `None`
    /// means unfiltered.
    pub extended_bits: Vec<Option<BitVectorFilter>>,
}

impl CandidateFilter {
    /// A filter that lets everything through (the non-optimized engines).
    pub fn none(vertex_count: usize) -> Self {
        CandidateFilter {
            extended_bits: vec![None; vertex_count],
        }
    }

    /// Whether `u` is an admissible *extended* binding for query vertex `v`.
    #[inline]
    pub fn admits_extended(&self, v: usize, u: VertexId) -> bool {
        match self.extended_bits.get(v).and_then(Option::as_ref) {
            Some(bv) => bv.contains(u),
            None => true,
        }
    }
}

/// The fixed-length candidate bit vector of Section VI: `B_v` with a hash
/// function mapping each candidate to one bit. A Bloom-style one-hash
/// filter: membership tests may return false positives, never false
/// negatives — pruning stays sound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitVectorFilter {
    bits: Vec<u64>,
    n_bits: usize,
}

impl BitVectorFilter {
    /// An empty filter with `n_bits` bits (rounded up to a multiple of 64).
    pub fn new(n_bits: usize) -> Self {
        let n_bits = n_bits.max(64);
        BitVectorFilter {
            bits: vec![0; n_bits.div_ceil(64)],
            n_bits,
        }
    }

    #[inline]
    fn slot(&self, v: VertexId) -> (usize, u64) {
        // splitmix-style mix so consecutive ids spread.
        let mut x = v.0.wrapping_add(0x9e3779b97f4a7c15);
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        x ^= x >> 27;
        let bit = (x % self.n_bits as u64) as usize;
        (bit / 64, 1u64 << (bit % 64))
    }

    /// Set the bit for `v`.
    pub fn insert(&mut self, v: VertexId) {
        let (w, m) = self.slot(v);
        self.bits[w] |= m;
    }

    /// Test the bit for `v`.
    #[inline]
    pub fn contains(&self, v: VertexId) -> bool {
        let (w, m) = self.slot(v);
        self.bits[w] & m != 0
    }

    /// Bitwise OR with another filter of identical size (the coordinator's
    /// union step in Algorithm 4).
    pub fn union_with(&mut self, other: &BitVectorFilter) {
        assert_eq!(self.n_bits, other.n_bits, "bit vector sizes must agree");
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            *a |= b;
        }
    }

    /// Size in bytes when shipped (fixed-length — the point of Section VI).
    pub fn wire_size(&self) -> usize {
        self.bits.len() * 8
    }

    /// Raw words (for the wire codec).
    pub fn words(&self) -> &[u64] {
        &self.bits
    }

    /// Rebuild from raw words.
    pub fn from_words(words: Vec<u64>, n_bits: usize) -> Self {
        assert_eq!(words.len(), n_bits.max(64).div_ceil(64));
        BitVectorFilter {
            bits: words,
            n_bits: n_bits.max(64),
        }
    }

    /// Number of bits.
    pub fn n_bits(&self) -> usize {
        self.n_bits
    }
}

/// Candidates of query vertex `qv` among `universe`, using adjacency `adj`.
///
/// `universe` is typically the internal vertices of a fragment or all
/// vertices of the full graph.
pub fn vertex_candidates<A: Adjacency>(
    adj: &A,
    q: &EncodedQuery,
    qv: usize,
    universe: &[VertexId],
) -> Vec<VertexId> {
    match q.vertex(qv) {
        EncodedVertex::Unsatisfiable => Vec::new(),
        EncodedVertex::Const(id) => {
            if universe.binary_search(&id).is_ok() && passes_structure(adj, q, qv, id) {
                vec![id]
            } else {
                Vec::new()
            }
        }
        EncodedVertex::Var => universe
            .iter()
            .copied()
            .filter(|&u| passes_structure(adj, q, qv, u))
            .collect(),
    }
}

/// Neighborhood-structure filter: `u` must have an incident edge with a
/// compatible label in the right direction for every query edge at `qv`,
/// with simple degree lower bounds.
fn passes_structure<A: Adjacency>(adj: &A, q: &EncodedQuery, qv: usize, u: VertexId) -> bool {
    // Class requirements first (cheap and highly selective).
    match q.required_classes(qv).ids() {
        Some(required) => {
            if !adj.has_classes(u, required) {
                return false;
            }
        }
        None => return false,
    }
    let out = adj.out_edges(u);
    let inc = adj.in_edges(u);
    // No aggregate degree bound: query edges incident to `qv` from
    // *different* neighbor vertices may legally share one data edge
    // (Definition 3's injectivity applies per query vertex pair only), so
    // only per-label presence is sound here.
    for &ei in q.out_edges(qv) {
        if !has_label(out, q.edge(ei).label) {
            return false;
        }
    }
    for &ei in q.in_edges(qv) {
        if !has_label(inc, q.edge(ei).label) {
            return false;
        }
    }
    true
}

#[inline]
fn has_label(edges: &[(TermId, VertexId)], label: EncodedLabel) -> bool {
    match label {
        EncodedLabel::Any => !edges.is_empty(),
        EncodedLabel::Const(p) => !label_edge_range(edges, p).is_empty(),
        EncodedLabel::Unsatisfiable => false,
    }
}

/// The contiguous sub-slice of a sorted `(label, vertex)` adjacency list
/// carrying exactly `label`.
///
/// Adjacency lists are sorted by `(label, vertex)`, so the range is found
/// with two `partition_point` calls and its vertices are sorted and
/// duplicate-free. This is the lookup the neighbor-driven matcher uses to
/// enumerate only a bound neighbor's label-matching edges instead of
/// scanning a full candidate list.
#[inline]
pub fn label_edge_range(edges: &[(TermId, VertexId)], label: TermId) -> &[(TermId, VertexId)] {
    let lo = edges.partition_point(|&(l, _)| l < label);
    let len = edges[lo..].partition_point(|&(l, _)| l == label);
    &edges[lo..lo + len]
}

/// Internal candidates `C(Q, v)` for every query vertex of a fragment
/// (Section VI / Algorithm 4 site side): candidates drawn from the
/// fragment's internal vertices only.
pub fn internal_candidates(
    fragment: &gstored_partition::Fragment,
    q: &EncodedQuery,
) -> Vec<Vec<VertexId>> {
    (0..q.vertex_count())
        .map(|qv| vertex_candidates(fragment, q, qv, &fragment.internal))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gstored_partition::{DistributedGraph, HashPartitioner};
    use gstored_rdf::{RdfGraph, Term, Triple};
    use gstored_sparql::{parse_query, QueryGraph};

    fn data() -> RdfGraph {
        let t = |s: &str, p: &str, o: &str| Triple::new(Term::iri(s), Term::iri(p), Term::iri(o));
        RdfGraph::from_triples(vec![
            t("http://a", "http://p", "http://b"),
            t("http://a", "http://q", "http://c"),
            t("http://b", "http://p", "http://c"),
            t("http://d", "http://q", "http://a"),
        ])
    }

    fn query(g: &RdfGraph, text: &str) -> EncodedQuery {
        let q = QueryGraph::from_query(&parse_query(text).unwrap()).unwrap();
        EncodedQuery::encode(&q, g.dict()).unwrap()
    }

    fn sorted_vertices(g: &RdfGraph) -> Vec<VertexId> {
        let mut v: Vec<VertexId> = g.vertices().collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn candidates_respect_labels_and_direction() {
        let mut g = data();
        g.finalize();
        let q = query(&g, "SELECT * WHERE { ?x <http://p> ?y . ?x <http://q> ?z }");
        let universe = sorted_vertices(&g);
        let cands = vertex_candidates(&g, &q, 0, &universe);
        // Only "a" has both an out-p and an out-q edge.
        let a = g.vertex_of(&Term::iri("http://a")).unwrap();
        assert_eq!(cands, vec![a]);
    }

    #[test]
    fn constant_vertex_candidates() {
        let mut g = data();
        g.finalize();
        let q = query(&g, "SELECT ?x WHERE { ?x <http://p> <http://b> }");
        let universe = sorted_vertices(&g);
        let b = g.vertex_of(&Term::iri("http://b")).unwrap();
        assert_eq!(vertex_candidates(&g, &q, 1, &universe), vec![b]);
    }

    #[test]
    fn degree_bound_prunes() {
        let mut g = data();
        g.finalize();
        // ?x needs two distinct out-p edges (injective multiset): nobody has.
        let q = query(
            &g,
            "SELECT * WHERE { ?x <http://p> ?y . ?x <http://p> ?y2 . ?y <http://p> ?y2 }",
        );
        let universe = sorted_vertices(&g);
        // Structure filter alone requires out-degree >= 2 with p twice; it
        // checks label presence per edge, so 'a' (p and q out) fails the
        // label check only if no p... a has one p: passes has_label twice
        // but fails the degree precheck? a has out-degree 2 -> passes. The
        // exact multiset rejection happens in the matcher; here we just
        // check the weaker filter does not crash and includes 'a'.
        let cands = vertex_candidates(&g, &q, 0, &universe);
        let a = g.vertex_of(&Term::iri("http://a")).unwrap();
        assert!(cands.contains(&a));
    }

    #[test]
    fn variable_predicate_requires_any_edge() {
        let mut g = data();
        g.finalize();
        let q = query(&g, "SELECT ?x ?y WHERE { ?x ?p ?y }");
        let universe = sorted_vertices(&g);
        let cands = vertex_candidates(&g, &q, 0, &universe);
        // Subjects only: a, b, d (c has no out-edges).
        assert_eq!(cands.len(), 3);
    }

    #[test]
    fn internal_candidates_use_internal_universe_only() {
        let g = data();
        let dist = DistributedGraph::build(g, &HashPartitioner::new(2));
        let q = {
            let dict = dist.dict();
            let qg = QueryGraph::from_query(
                &parse_query("SELECT * WHERE { ?x <http://p> ?y }").unwrap(),
            )
            .unwrap();
            EncodedQuery::encode(&qg, dict).unwrap()
        };
        for f in &dist.fragments {
            let cands = internal_candidates(f, &q);
            for c in &cands[0] {
                assert!(f.is_internal(*c));
            }
        }
    }

    #[test]
    fn bit_vector_filter_has_no_false_negatives() {
        let mut bv = BitVectorFilter::new(256);
        for i in 0..100u64 {
            bv.insert(TermId(i * 7));
        }
        for i in 0..100u64 {
            assert!(bv.contains(TermId(i * 7)));
        }
    }

    #[test]
    fn bit_vector_union_matches_algorithm4() {
        let mut a = BitVectorFilter::new(128);
        let mut b = BitVectorFilter::new(128);
        a.insert(TermId(1));
        b.insert(TermId(2));
        a.union_with(&b);
        assert!(a.contains(TermId(1)));
        assert!(a.contains(TermId(2)));
    }

    #[test]
    fn bit_vector_wire_size_is_fixed() {
        let bv = BitVectorFilter::new(1 << 16);
        assert_eq!(bv.wire_size(), (1 << 16) / 8);
        let round = BitVectorFilter::from_words(bv.words().to_vec(), bv.n_bits());
        assert_eq!(bv, round);
    }

    #[test]
    fn candidate_filter_default_admits_everything() {
        let f = CandidateFilter::none(4);
        assert!(f.admits_extended(0, TermId(42)));
        assert!(f.admits_extended(3, TermId(7)));
    }

    #[test]
    fn label_edge_range_finds_exact_prefix() {
        let v = |n: u64| TermId(n);
        let edges = vec![
            (v(1), v(10)),
            (v(2), v(5)),
            (v(2), v(7)),
            (v(2), v(9)),
            (v(4), v(1)),
        ];
        assert_eq!(label_edge_range(&edges, v(2)), &edges[1..4]);
        assert_eq!(label_edge_range(&edges, v(1)), &edges[0..1]);
        assert_eq!(label_edge_range(&edges, v(4)), &edges[4..5]);
        assert!(label_edge_range(&edges, v(3)).is_empty());
        assert!(label_edge_range(&edges, v(0)).is_empty());
        assert!(label_edge_range(&edges, v(9)).is_empty());
        assert!(label_edge_range(&[], v(1)).is_empty());
    }

    #[test]
    fn candidate_filter_with_bits_restricts() {
        let mut bv = BitVectorFilter::new(128);
        bv.insert(TermId(5));
        let mut f = CandidateFilter::none(2);
        f.extended_bits[1] = Some(bv);
        assert!(f.admits_extended(1, TermId(5)));
        // Most other ids miss (tolerate hash collisions by testing many).
        let misses = (100..200u64)
            .filter(|&i| !f.admits_extended(1, TermId(i)))
            .count();
        assert!(misses > 90);
    }
}
