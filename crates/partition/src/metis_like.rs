//! A from-scratch multilevel min-edge-cut partitioner standing in for
//! METIS (reference \[14\] of the paper).
//!
//! Classic multilevel scheme:
//!
//! 1. **Coarsening** — repeated heavy-edge matching collapses matched
//!    vertex pairs until the graph is small.
//! 2. **Initial partitioning** — greedy graph growing assigns the coarsest
//!    vertices to `k` parts, balancing vertex weight.
//! 3. **Uncoarsening + refinement** — projected back level by level with a
//!    boundary Kernighan–Lin/FM-style pass that moves vertices to reduce
//!    the cut while keeping vertex-weight balance.
//!
//! Like real METIS, this balances *vertex counts* per part; the paper's
//! cost model instead looks at *edge counts* `|E_i ∪ Ec_i|`, which is why
//! Section VIII-D finds METIS partitionings "much more imbalanced than the
//! hash partitioning" despite fewer crossing edges — a behaviour this
//! implementation reproduces on skewed-degree graphs.

use std::collections::HashMap;

use gstored_rdf::{RdfGraph, VertexId};

use crate::fragment::{FragmentId, PartitionAssignment};
use crate::hash::mix64;
use crate::Partitioner;

/// Multilevel heavy-edge-matching partitioner.
#[derive(Debug, Clone)]
pub struct MetisLikePartitioner {
    k: usize,
    /// Stop coarsening below this vertex count.
    coarsen_target: usize,
    /// Refinement passes per level.
    refine_passes: usize,
    /// Allowed vertex-weight imbalance factor (1.05 = 5%).
    balance_factor: f64,
    seed: u64,
}

impl MetisLikePartitioner {
    /// Partitioner over `k` fragments with library defaults.
    pub fn new(k: usize) -> Self {
        assert!(k > 0);
        MetisLikePartitioner {
            k,
            coarsen_target: 20 * k.max(8),
            refine_passes: 4,
            balance_factor: 1.05,
            seed: 0xc0a6_5e11,
        }
    }

    /// Override the coarsening stop threshold.
    pub fn with_coarsen_target(mut self, target: usize) -> Self {
        self.coarsen_target = target.max(self.k);
        self
    }

    /// Override the allowed imbalance factor.
    pub fn with_balance_factor(mut self, f: f64) -> Self {
        assert!(f >= 1.0);
        self.balance_factor = f;
        self
    }
}

/// Undirected weighted working graph for the multilevel scheme.
struct Level {
    /// Adjacency: vertex -> (neighbor, edge weight); parallel RDF edges
    /// and both directions are folded into the weight.
    adj: Vec<Vec<(usize, u64)>>,
    /// Vertex weights (number of original vertices collapsed).
    vwgt: Vec<u64>,
    /// Map of each vertex to its parent in the *next coarser* level.
    coarse_of: Vec<usize>,
}

impl Level {
    fn n(&self) -> usize {
        self.adj.len()
    }
}

impl Partitioner for MetisLikePartitioner {
    fn name(&self) -> &'static str {
        "metis-like"
    }

    fn num_fragments(&self) -> usize {
        self.k
    }

    fn assign(&self, graph: &RdfGraph) -> PartitionAssignment {
        // Build the level-0 working graph with dense local ids.
        let verts: Vec<VertexId> = {
            let mut v: Vec<VertexId> = graph.vertices().collect();
            v.sort_unstable();
            v
        };
        let local: HashMap<VertexId, usize> =
            verts.iter().enumerate().map(|(i, &v)| (v, i)).collect();
        let n = verts.len();
        if n == 0 {
            return PartitionAssignment {
                k: self.k,
                of_vertex: HashMap::new(),
            };
        }

        let mut weights: HashMap<(usize, usize), u64> = HashMap::new();
        for e in graph.edges() {
            let a = local[&e.from];
            let b = local[&e.to];
            if a == b {
                continue; // self-loops never cross; irrelevant to the cut
            }
            let key = (a.min(b), a.max(b));
            *weights.entry(key).or_insert(0) += 1;
        }
        let mut adj = vec![Vec::new(); n];
        for (&(a, b), &w) in &weights {
            adj[a].push((b, w));
            adj[b].push((a, w));
        }
        let mut levels = vec![Level {
            adj,
            vwgt: vec![1; n],
            coarse_of: Vec::new(),
        }];

        // --- Coarsening ---
        while levels.last().expect("non-empty").n() > self.coarsen_target {
            let depth = levels.len() as u64;
            let cur = levels.last_mut().expect("non-empty");
            let (coarse, shrunk) = coarsen(cur, self.seed ^ depth);
            if !shrunk {
                break; // matching made no progress (e.g. star graphs)
            }
            levels.push(coarse);
        }

        // --- Initial partitioning on the coarsest level ---
        let coarsest = levels.last().expect("non-empty");
        let mut part = initial_partition(coarsest, self.k, self.seed);

        // --- Uncoarsen + refine ---
        refine(
            coarsest,
            &mut part,
            self.k,
            self.refine_passes,
            self.balance_factor,
        );
        for li in (0..levels.len() - 1).rev() {
            let finer = &levels[li];
            let mut finer_part = vec![0usize; finer.n()];
            for v in 0..finer.n() {
                finer_part[v] = part[finer.coarse_of[v]];
            }
            part = finer_part;
            refine(
                finer,
                &mut part,
                self.k,
                self.refine_passes,
                self.balance_factor,
            );
        }

        let of_vertex = verts
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, part[i] as FragmentId))
            .collect();
        PartitionAssignment {
            k: self.k,
            of_vertex,
        }
    }
}

/// One round of heavy-edge matching. Returns the coarser level and whether
/// the graph actually shrank.
fn coarsen(cur: &mut Level, seed: u64) -> (Level, bool) {
    let n = cur.n();
    let mut matched = vec![usize::MAX; n];
    // Visit vertices in a pseudo-random order for matching quality.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&v| mix64(v as u64 ^ seed));

    for &v in &order {
        if matched[v] != usize::MAX {
            continue;
        }
        // Heaviest unmatched neighbor.
        let mut best: Option<(usize, u64)> = None;
        for &(u, w) in &cur.adj[v] {
            if matched[u] == usize::MAX && u != v {
                match best {
                    Some((_, bw)) if bw >= w => {}
                    _ => best = Some((u, w)),
                }
            }
        }
        match best {
            Some((u, _)) => {
                matched[v] = u;
                matched[u] = v;
            }
            None => matched[v] = v, // stays single
        }
    }

    // Assign coarse ids.
    let mut coarse_of = vec![usize::MAX; n];
    let mut next = 0usize;
    for v in 0..n {
        if coarse_of[v] != usize::MAX {
            continue;
        }
        coarse_of[v] = next;
        let m = matched[v];
        if m != v && m != usize::MAX {
            coarse_of[m] = next;
        }
        next += 1;
    }
    let shrunk = next < n;

    // Build the coarse graph.
    let mut vwgt = vec![0u64; next];
    for v in 0..n {
        vwgt[coarse_of[v]] += cur.vwgt[v];
    }
    let mut weights: HashMap<(usize, usize), u64> = HashMap::new();
    for v in 0..n {
        for &(u, w) in &cur.adj[v] {
            if u <= v {
                continue; // count each undirected edge once
            }
            let (a, b) = (coarse_of[v], coarse_of[u]);
            if a == b {
                continue;
            }
            let key = (a.min(b), a.max(b));
            *weights.entry(key).or_insert(0) += w;
        }
    }
    let mut adj = vec![Vec::new(); next];
    for (&(a, b), &w) in &weights {
        adj[a].push((b, w));
        adj[b].push((a, w));
    }
    cur.coarse_of = coarse_of;
    (
        Level {
            adj,
            vwgt,
            coarse_of: Vec::new(),
        },
        shrunk,
    )
}

/// Greedy graph growing: grow `k` regions from spread-out seeds by
/// repeatedly absorbing the frontier vertex with the strongest connection
/// to the lightest region.
#[allow(clippy::needless_range_loop)] // indexing two parallel arrays
fn initial_partition(level: &Level, k: usize, seed: u64) -> Vec<usize> {
    let n = level.n();
    let total: u64 = level.vwgt.iter().sum();
    let target = total.div_ceil(k as u64);
    let mut part = vec![usize::MAX; n];
    let mut loads = vec![0u64; k];

    // Order by hash for deterministic seed spreading.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&v| mix64(v as u64 ^ seed));

    let mut next_seed = order.into_iter();
    for p in 0..k {
        // Grow region p from the first unassigned seed.
        let mut frontier: Vec<usize> = Vec::new();
        for s in next_seed.by_ref() {
            if part[s] == usize::MAX {
                frontier.push(s);
                break;
            }
        }
        while let Some(v) = frontier.pop() {
            if part[v] != usize::MAX {
                continue;
            }
            part[v] = p;
            loads[p] += level.vwgt[v];
            if loads[p] >= target {
                break;
            }
            // Prefer heavy edges: push neighbors sorted by ascending weight
            // so the heaviest is popped first.
            let mut ns: Vec<(u64, usize)> = level.adj[v]
                .iter()
                .filter(|&&(u, _)| part[u] == usize::MAX)
                .map(|&(u, w)| (w, u))
                .collect();
            ns.sort_unstable();
            frontier.extend(ns.into_iter().map(|(_, u)| u));
        }
    }
    // Any stragglers go to the lightest part.
    for v in 0..n {
        if part[v] == usize::MAX {
            let p = (0..k).min_by_key(|&p| loads[p]).expect("k > 0");
            part[v] = p;
            loads[p] += level.vwgt[v];
        }
    }
    part
}

/// Boundary FM-style refinement: move vertices whose dominant neighbor
/// part differs, when the move improves the cut and keeps balance.
#[allow(clippy::needless_range_loop)] // indexing two parallel arrays
fn refine(level: &Level, part: &mut [usize], k: usize, passes: usize, balance: f64) {
    let n = level.n();
    let total: u64 = level.vwgt.iter().sum();
    let max_load = ((total as f64 / k as f64) * balance).ceil() as u64 + 1;
    let mut loads = vec![0u64; k];
    for v in 0..n {
        loads[part[v]] += level.vwgt[v];
    }

    for _ in 0..passes {
        let mut moved = 0usize;
        for v in 0..n {
            let cur = part[v];
            // Connection weight to each part among neighbors.
            let mut conn: HashMap<usize, u64> = HashMap::new();
            for &(u, w) in &level.adj[v] {
                *conn.entry(part[u]).or_insert(0) += w;
            }
            let here = conn.get(&cur).copied().unwrap_or(0);
            let best = conn
                .iter()
                .filter(|&(&p, _)| p != cur)
                .max_by_key(|&(_, &w)| w)
                .map(|(&p, &w)| (p, w));
            if let Some((p, w)) = best {
                let gain = w as i64 - here as i64;
                if gain > 0 && loads[p] + level.vwgt[v] <= max_load {
                    loads[cur] -= level.vwgt[v];
                    loads[p] += level.vwgt[v];
                    part[v] = p;
                    moved += 1;
                }
            }
        }
        if moved == 0 {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fragment::DistributedGraph;
    use crate::hash::HashPartitioner;
    use gstored_rdf::{Term, Triple};

    /// Two dense clusters joined by a single bridge edge.
    fn two_clusters(per: usize) -> RdfGraph {
        let mut triples = Vec::new();
        for c in 0..2 {
            for i in 0..per {
                for j in (i + 1)..(i + 4).min(per) {
                    triples.push(Triple::new(
                        Term::iri(format!("http://c{c}/v{i}")),
                        Term::iri("http://p"),
                        Term::iri(format!("http://c{c}/v{j}")),
                    ));
                }
            }
        }
        triples.push(Triple::new(
            Term::iri("http://c0/v0"),
            Term::iri("http://bridge"),
            Term::iri("http://c1/v0"),
        ));
        RdfGraph::from_triples(triples)
    }

    #[test]
    fn finds_the_obvious_two_way_cut() {
        let g = two_clusters(40);
        let dist = DistributedGraph::build(g, &MetisLikePartitioner::new(2));
        assert_eq!(dist.validate(), None);
        let cut = dist.crossing_edges().len();
        assert!(cut <= 8, "expected a near-minimal cut, got {cut}");
    }

    #[test]
    fn beats_hash_partitioning_on_clustered_data() {
        let g = two_clusters(40);
        let metis = DistributedGraph::build(g.clone(), &MetisLikePartitioner::new(2));
        let hash = DistributedGraph::build(g, &HashPartitioner::new(2));
        assert!(
            metis.crossing_edges().len() < hash.crossing_edges().len() / 2,
            "metis-like {} vs hash {}",
            metis.crossing_edges().len(),
            hash.crossing_edges().len()
        );
    }

    #[test]
    fn respects_vertex_balance() {
        let g = two_clusters(50);
        let a = MetisLikePartitioner::new(2).assign(&g);
        let sizes = a.sizes();
        let max = *sizes.iter().max().unwrap() as f64;
        let avg = sizes.iter().sum::<usize>() as f64 / sizes.len() as f64;
        assert!(max / avg < 1.3, "vertex imbalance too high: {sizes:?}");
    }

    #[test]
    fn assignment_is_total_and_deterministic() {
        let g = two_clusters(20);
        let p = MetisLikePartitioner::new(3);
        let a = p.assign(&g);
        let b = p.assign(&g);
        assert_eq!(a.of_vertex, b.of_vertex);
        assert_eq!(a.of_vertex.len(), g.vertex_count());
        assert!(a.of_vertex.values().all(|&f| f < 3));
    }

    #[test]
    fn handles_tiny_graphs() {
        let g = RdfGraph::from_triples(vec![Triple::new(
            Term::iri("http://a"),
            Term::iri("http://p"),
            Term::iri("http://b"),
        )]);
        let a = MetisLikePartitioner::new(4).assign(&g);
        assert_eq!(a.of_vertex.len(), 2);
    }

    #[test]
    fn handles_star_graphs_where_matching_stalls() {
        // One hub with many leaves: heavy-edge matching can only pair the
        // hub once per round, so coarsening progress is slow -> must not
        // loop forever.
        let mut triples = Vec::new();
        for i in 0..200 {
            triples.push(Triple::new(
                Term::iri("http://hub"),
                Term::iri("http://p"),
                Term::iri(format!("http://leaf/{i}")),
            ));
        }
        let g = RdfGraph::from_triples(triples);
        let a = MetisLikePartitioner::new(4).assign(&g);
        assert_eq!(a.of_vertex.len(), g.vertex_count());
    }

    #[test]
    fn k_equals_one_puts_everything_together() {
        let g = two_clusters(10);
        let dist = DistributedGraph::build(g, &MetisLikePartitioner::new(1));
        assert!(dist.crossing_edges().is_empty());
    }
}
