//! Fragments and distributed RDF graphs (Definition 1 of the paper).
//!
//! A distributed RDF graph is a vertex-disjoint partitioning of `V` into
//! `{V_1, ..., V_k}`. Fragment `F_i` stores:
//!
//! * its **internal vertices** `V_i`,
//! * its **extended vertices** `Ve_i` — endpoints (residing elsewhere) of
//!   crossing edges touching `F_i`,
//! * its **internal edges** `E_i ⊆ V_i × V_i`,
//! * its **crossing edges** `Ec_i` — every edge with exactly one endpoint
//!   in `V_i`; crossing edges are *replicated* in both touched fragments,
//!   which is what makes star queries evaluable locally and what lets
//!   LEC features join across fragments on shared crossing edges.

use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

use gstored_rdf::stats::{FragmentStats, PartitionStats, PredicateCard, SelectivityHistogram};
use gstored_rdf::{Dictionary, EdgeRef, RdfGraph, TermId, VertexId};

use crate::Partitioner;

/// Fragment identifier (index into `DistributedGraph::fragments`).
pub type FragmentId = usize;

/// The raw vertex → fragment assignment produced by a [`Partitioner`].
#[derive(Debug, Clone)]
pub struct PartitionAssignment {
    /// Number of fragments.
    pub k: usize,
    /// Fragment of each vertex.
    pub of_vertex: HashMap<VertexId, FragmentId>,
}

impl PartitionAssignment {
    /// Fragment of a vertex; panics on unassigned vertices (every vertex
    /// of the graph must be assigned — Definition 1 condition 1).
    pub fn fragment_of(&self, v: VertexId) -> FragmentId {
        *self
            .of_vertex
            .get(&v)
            .unwrap_or_else(|| panic!("vertex {v} missing from partition assignment"))
    }

    /// Number of vertices assigned to each fragment.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.k];
        for &f in self.of_vertex.values() {
            sizes[f] += 1;
        }
        sizes
    }
}

/// One fragment `F_i = (V_i ∪ Ve_i, E_i ∪ Ec_i, Σ_i)`.
#[derive(Debug, Clone, Default)]
pub struct Fragment {
    /// This fragment's id (`i`).
    pub id: FragmentId,
    /// Internal vertices `V_i`, sorted.
    pub internal: Vec<VertexId>,
    /// Extended vertices `Ve_i`, sorted.
    pub extended: Vec<VertexId>,
    /// Internal edges `E_i`.
    pub internal_edges: Vec<EdgeRef>,
    /// Crossing edges `Ec_i` (each has exactly one endpoint in `V_i`).
    pub crossing_edges: Vec<EdgeRef>,
    /// Outgoing adjacency over `E_i ∪ Ec_i`: vertex → sorted `(label, to)`.
    out: HashMap<VertexId, Vec<(TermId, VertexId)>>,
    /// Incoming adjacency over `E_i ∪ Ec_i`: vertex → sorted `(label, from)`.
    inc: HashMap<VertexId, Vec<(TermId, VertexId)>>,
    /// Classes of stored vertices (internal and extended), mirroring
    /// gStore's replicated vertex signatures.
    classes: HashMap<VertexId, Vec<TermId>>,
}

impl Fragment {
    /// Whether `v` is an internal vertex of this fragment.
    pub fn is_internal(&self, v: VertexId) -> bool {
        self.internal.binary_search(&v).is_ok()
    }

    /// Whether `v` is an extended vertex of this fragment.
    pub fn is_extended(&self, v: VertexId) -> bool {
        self.extended.binary_search(&v).is_ok()
    }

    /// Whether `v` is stored here at all (internal or extended).
    pub fn contains(&self, v: VertexId) -> bool {
        self.is_internal(v) || self.is_extended(v)
    }

    /// Classes of a stored vertex.
    pub fn classes_of(&self, v: VertexId) -> &[TermId] {
        self.classes.get(&v).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Whether `v` carries every class in `required`.
    pub fn has_classes(&self, v: VertexId, required: &[TermId]) -> bool {
        let cs = self.classes_of(v);
        required.iter().all(|c| cs.contains(c))
    }

    /// Whether the given edge is one of this fragment's crossing edges.
    pub fn is_crossing(&self, e: &EdgeRef) -> bool {
        // Exactly one endpoint internal. (Replicated data guarantees both
        // endpoints are stored.)
        self.is_internal(e.from) != self.is_internal(e.to)
    }

    /// Outgoing `(label, to)` pairs of `v` over `E_i ∪ Ec_i`.
    pub fn out_edges(&self, v: VertexId) -> &[(TermId, VertexId)] {
        self.out.get(&v).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Incoming `(label, from)` pairs of `v` over `E_i ∪ Ec_i`.
    pub fn in_edges(&self, v: VertexId) -> &[(TermId, VertexId)] {
        self.inc.get(&v).map(Vec::as_slice).unwrap_or(&[])
    }

    /// All edges stored in this fragment (`E_i` then `Ec_i`).
    pub fn edges(&self) -> impl Iterator<Item = &EdgeRef> {
        self.internal_edges.iter().chain(self.crossing_edges.iter())
    }

    /// `|E_i ∪ Ec_i|` — the edge size used by the cost model's balance term.
    pub fn edge_size(&self) -> usize {
        self.internal_edges.len() + self.crossing_edges.len()
    }

    /// Number of internal vertices.
    pub fn internal_count(&self) -> usize {
        self.internal.len()
    }

    /// Rebuild a fragment from its serializable parts (the inverse of
    /// reading the public fields plus [`Fragment::class_entries`]).
    /// Adjacency indexes are derived from the edge lists; used by the
    /// wire codec when shipping a fragment to a remote worker process.
    pub fn from_parts(
        id: FragmentId,
        internal: Vec<VertexId>,
        extended: Vec<VertexId>,
        internal_edges: Vec<EdgeRef>,
        crossing_edges: Vec<EdgeRef>,
        classes: Vec<(VertexId, Vec<TermId>)>,
    ) -> Self {
        let mut fragment = Fragment {
            id,
            internal,
            extended,
            classes: classes.into_iter().collect(),
            ..Fragment::default()
        };
        for e in internal_edges {
            fragment.add_edge(e, false);
        }
        for e in crossing_edges {
            fragment.add_edge(e, true);
        }
        fragment.finalize();
        fragment
    }

    /// The replicated class signatures of stored vertices, sorted by
    /// vertex id (deterministic order for serialization).
    pub fn class_entries(&self) -> Vec<(VertexId, &[TermId])> {
        let mut entries: Vec<(VertexId, &[TermId])> = self
            .classes
            .iter()
            .map(|(&v, cs)| (v, cs.as_slice()))
            .collect();
        entries.sort_unstable_by_key(|&(v, _)| v);
        entries
    }

    /// Compute this fragment's planner statistics: per-predicate
    /// internal/crossing cardinalities, per-class internal-vertex counts
    /// and the internal out-degree histogram. `O(|E_i ∪ Ec_i| + |V_i|)`.
    pub fn stats(&self) -> FragmentStats {
        let mut predicates: HashMap<TermId, PredicateCard> = HashMap::new();
        for e in &self.internal_edges {
            predicates.entry(e.label).or_default().internal += 1;
        }
        for e in &self.crossing_edges {
            predicates.entry(e.label).or_default().crossing += 1;
        }
        let mut predicate_cards: Vec<(TermId, PredicateCard)> = predicates.into_iter().collect();
        predicate_cards.sort_unstable_by_key(|&(p, _)| p);

        let mut classes: HashMap<TermId, usize> = HashMap::new();
        let mut selectivity = SelectivityHistogram::default();
        for &v in &self.internal {
            for &c in self.classes_of(v) {
                *classes.entry(c).or_default() += 1;
            }
            selectivity.record(self.out_edges(v).len());
        }
        let mut class_cards: Vec<(TermId, usize)> = classes.into_iter().collect();
        class_cards.sort_unstable_by_key(|&(c, _)| c);

        FragmentStats {
            site: self.id,
            internal_vertices: self.internal.len(),
            extended_vertices: self.extended.len(),
            internal_edges: self.internal_edges.len(),
            crossing_edges: self.crossing_edges.len(),
            predicate_cards,
            class_cards,
            selectivity,
        }
    }

    fn add_edge(&mut self, e: EdgeRef, crossing: bool) {
        self.out.entry(e.from).or_default().push((e.label, e.to));
        self.inc.entry(e.to).or_default().push((e.label, e.from));
        if crossing {
            self.crossing_edges.push(e);
        } else {
            self.internal_edges.push(e);
        }
    }

    fn finalize(&mut self) {
        self.internal.sort_unstable();
        self.internal.dedup();
        self.extended.sort_unstable();
        self.extended.dedup();
        for adj in self.out.values_mut() {
            adj.sort_unstable();
            adj.dedup();
        }
        for adj in self.inc.values_mut() {
            adj.sort_unstable();
            adj.dedup();
        }
        self.internal_edges.sort_unstable();
        self.internal_edges.dedup();
        self.crossing_edges.sort_unstable();
        self.crossing_edges.dedup();
    }
}

/// A fully-constructed distributed RDF graph: the fragments plus the shared
/// dictionary.
///
/// *Substitution note (DESIGN.md §3):* in a real deployment each site holds
/// a dictionary replica; sharing one here changes neither the algorithms
/// nor the shipment accounting of the evaluation stages, which exchange
/// encoded ids exactly as the paper's prototype does.
#[derive(Debug, Clone)]
pub struct DistributedGraph {
    dict: Dictionary,
    /// All fragments, index = fragment id.
    pub fragments: Vec<Fragment>,
    /// The assignment the fragments were built from.
    pub assignment: PartitionAssignment,
    /// Total number of edges in the underlying graph.
    pub total_edges: usize,
    /// Total number of vertices in the underlying graph.
    pub total_vertices: usize,
    /// Lazily computed planner statistics ([`DistributedGraph::stats`]).
    /// Behind `Arc` so clones of the graph share one cache — and so
    /// sessions running an explicit variant, which never consult the
    /// planner, never pay the computation at all.
    stats: Arc<OnceLock<PartitionStats>>,
}

impl DistributedGraph {
    /// Partition `graph` with the given strategy and build all fragments.
    pub fn build(graph: RdfGraph, partitioner: &dyn Partitioner) -> Self {
        let assignment = partitioner.assign(&graph);
        Self::build_with_assignment(graph, assignment)
    }

    /// Build fragments from an explicit assignment (must cover every vertex).
    pub fn build_with_assignment(graph: RdfGraph, assignment: PartitionAssignment) -> Self {
        let k = assignment.k;
        let mut fragments: Vec<Fragment> = (0..k)
            .map(|id| Fragment {
                id,
                ..Fragment::default()
            })
            .collect();

        for v in graph.vertices() {
            let f = assignment.fragment_of(v);
            fragments[f].internal.push(v);
        }

        for e in graph.edges() {
            let fs = assignment.fragment_of(e.from);
            let ft = assignment.fragment_of(e.to);
            if fs == ft {
                fragments[fs].add_edge(e, false);
            } else {
                // Crossing edge: replicated in both fragments; the remote
                // endpoint becomes an extended vertex on each side.
                fragments[fs].add_edge(e, true);
                fragments[fs].extended.push(e.to);
                fragments[ft].add_edge(e, true);
                fragments[ft].extended.push(e.from);
            }
        }

        // Replicate vertex classes (gStore-style signatures) for every
        // stored vertex, internal and extended alike.
        for f in &mut fragments {
            for v in f.internal.iter().chain(f.extended.iter()) {
                if let Some(cs) = graph.class_map().get(v) {
                    f.classes.insert(*v, cs.clone());
                }
            }
        }
        for f in &mut fragments {
            f.finalize();
        }

        let total_edges = graph.edge_count();
        let total_vertices = graph.vertex_count();
        DistributedGraph {
            dict: graph.dict().clone(),
            fragments,
            assignment,
            total_edges,
            total_vertices,
            stats: Arc::new(OnceLock::new()),
        }
    }

    /// The partitioning's planner statistics, computed on first call and
    /// cached for the graph's lifetime (clones share the cache).
    ///
    /// The laziness is load-bearing: only `Variant::Auto` sessions ever
    /// ask, so explicit-variant sessions pay nothing at partition *or*
    /// query time — [`DistributedGraph::stats_computed`] lets tests pin
    /// that down.
    pub fn stats(&self) -> &PartitionStats {
        self.stats.get_or_init(|| {
            let sites: Vec<FragmentStats> = self.fragments.iter().map(Fragment::stats).collect();
            let total_internal_edges = sites.iter().map(|s| s.internal_edges).sum();
            let total_crossing_incidences = sites.iter().map(|s| s.crossing_edges).sum();
            let total_vertices = sites.iter().map(|s| s.internal_vertices).sum();
            PartitionStats {
                sites,
                total_internal_edges,
                total_crossing_incidences,
                total_vertices,
            }
        })
    }

    /// Whether [`DistributedGraph::stats`] has been computed yet.
    pub fn stats_computed(&self) -> bool {
        self.stats.get().is_some()
    }

    /// The shared dictionary.
    pub fn dict(&self) -> &Dictionary {
        &self.dict
    }

    /// Number of fragments.
    pub fn fragment_count(&self) -> usize {
        self.fragments.len()
    }

    /// All distinct crossing edges of the partitioning (`Ec`), deduplicated
    /// across the per-fragment replicas.
    pub fn crossing_edges(&self) -> Vec<EdgeRef> {
        let mut all: Vec<EdgeRef> = self
            .fragments
            .iter()
            .flat_map(|f| f.crossing_edges.iter().copied())
            .collect();
        all.sort_unstable();
        all.dedup();
        all
    }

    /// Check every Definition 1 invariant; used by tests and debug builds.
    ///
    /// Returns a human-readable violation description, or `None` if valid.
    pub fn validate(&self) -> Option<String> {
        // 1. {V_1..V_k} is a partitioning of V.
        let mut seen: HashMap<VertexId, FragmentId> = HashMap::new();
        let mut total = 0usize;
        for f in &self.fragments {
            for &v in &f.internal {
                if let Some(prev) = seen.insert(v, f.id) {
                    return Some(format!(
                        "vertex {v} internal to fragments {prev} and {}",
                        f.id
                    ));
                }
                total += 1;
            }
        }
        if total != self.total_vertices {
            return Some(format!(
                "internal vertices cover {total} of {} vertices",
                self.total_vertices
            ));
        }
        for f in &self.fragments {
            // 2. E_i ⊆ V_i × V_i.
            for e in &f.internal_edges {
                if !f.is_internal(e.from) || !f.is_internal(e.to) {
                    return Some(format!(
                        "internal edge {:?} of fragment {} has external endpoint",
                        e, f.id
                    ));
                }
            }
            // 3. crossing edges have exactly one internal endpoint.
            for e in &f.crossing_edges {
                if f.is_internal(e.from) == f.is_internal(e.to) {
                    return Some(format!(
                        "crossing edge {:?} of fragment {} does not cross",
                        e, f.id
                    ));
                }
            }
            // 4/5. extended vertices are exactly the remote endpoints of
            // crossing edges and are internal elsewhere.
            let mut expected: Vec<VertexId> = f
                .crossing_edges
                .iter()
                .map(|e| if f.is_internal(e.from) { e.to } else { e.from })
                .collect();
            expected.sort_unstable();
            expected.dedup();
            if expected != f.extended {
                return Some(format!(
                    "fragment {} extended vertices do not match crossing edges",
                    f.id
                ));
            }
            for &v in &f.extended {
                let home = self.assignment.fragment_of(v);
                if home == f.id {
                    return Some(format!(
                        "extended vertex {v} of fragment {} is assigned to it",
                        f.id
                    ));
                }
                if !self.fragments[home].is_internal(v) {
                    return Some(format!("extended vertex {v} not internal anywhere"));
                }
            }
        }
        // Edge conservation: every edge appears as internal exactly once or
        // as crossing exactly twice.
        let internal_total: usize = self.fragments.iter().map(|f| f.internal_edges.len()).sum();
        let crossing_total: usize = self.fragments.iter().map(|f| f.crossing_edges.len()).sum();
        if internal_total + crossing_total / 2 != self.total_edges
            || !crossing_total.is_multiple_of(2)
        {
            return Some(format!(
                "edge conservation violated: {internal_total} internal + {crossing_total} crossing replicas vs {} edges",
                self.total_edges
            ));
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::{ExplicitPartitioner, HashPartitioner};
    use crate::metis_like::MetisLikePartitioner;
    use crate::semantic::SemanticHashPartitioner;
    use gstored_rdf::{Term, Triple};

    fn chain_graph(n: usize) -> RdfGraph {
        // v0 -p-> v1 -p-> v2 ... -p-> v(n-1)
        let mut triples = Vec::new();
        for i in 0..n - 1 {
            triples.push(Triple::new(
                Term::iri(format!("http://v/{i}")),
                Term::iri("http://p"),
                Term::iri(format!("http://v/{}", i + 1)),
            ));
        }
        RdfGraph::from_triples(triples)
    }

    #[test]
    fn build_validates_on_chain() {
        let g = chain_graph(10);
        let dist = DistributedGraph::build(g, &HashPartitioner::new(3));
        assert_eq!(dist.fragment_count(), 3);
        assert_eq!(dist.validate(), None);
    }

    #[test]
    fn crossing_edges_replicated_in_both_fragments() {
        let g = chain_graph(2); // single edge v0 -> v1
        let v0 = g.vertex_of(&Term::iri("http://v/0")).unwrap();
        let v1 = g.vertex_of(&Term::iri("http://v/1")).unwrap();
        let mut map = HashMap::new();
        map.insert(v0, 0);
        map.insert(v1, 1);
        let dist = DistributedGraph::build(g, &ExplicitPartitioner::new(2, map));
        assert_eq!(dist.validate(), None);
        assert_eq!(dist.fragments[0].crossing_edges.len(), 1);
        assert_eq!(dist.fragments[1].crossing_edges.len(), 1);
        assert_eq!(dist.fragments[0].extended, vec![v1]);
        assert_eq!(dist.fragments[1].extended, vec![v0]);
        assert_eq!(dist.crossing_edges().len(), 1, "deduplicated view");
    }

    #[test]
    fn internal_edges_stay_in_one_fragment() {
        let g = chain_graph(4);
        let ids: Vec<VertexId> = (0..4)
            .map(|i| g.vertex_of(&Term::iri(format!("http://v/{i}"))).unwrap())
            .collect();
        let mut map = HashMap::new();
        map.insert(ids[0], 0);
        map.insert(ids[1], 0);
        map.insert(ids[2], 1);
        map.insert(ids[3], 1);
        let dist = DistributedGraph::build(g, &ExplicitPartitioner::new(2, map));
        assert_eq!(dist.validate(), None);
        assert_eq!(dist.fragments[0].internal_edges.len(), 1);
        assert_eq!(dist.fragments[1].internal_edges.len(), 1);
        assert_eq!(dist.fragments[0].crossing_edges.len(), 1);
    }

    #[test]
    fn fragment_adjacency_covers_crossing_edges() {
        let g = chain_graph(3);
        let ids: Vec<VertexId> = (0..3)
            .map(|i| g.vertex_of(&Term::iri(format!("http://v/{i}"))).unwrap())
            .collect();
        let mut map = HashMap::new();
        map.insert(ids[0], 0);
        map.insert(ids[1], 1);
        map.insert(ids[2], 0);
        let dist = DistributedGraph::build(g, &ExplicitPartitioner::new(2, map));
        let f1 = &dist.fragments[1];
        // v1 is internal to F1 and has one in-edge and one out-edge, both
        // crossing, both visible in the local adjacency.
        assert_eq!(f1.out_edges(ids[1]).len(), 1);
        assert_eq!(f1.in_edges(ids[1]).len(), 1);
        assert!(f1.is_crossing(&EdgeRef {
            from: ids[0],
            label: f1.out_edges(ids[1])[0].0,
            to: ids[1]
        }));
    }

    #[test]
    fn self_loops_are_always_internal() {
        let mut g = RdfGraph::new();
        g.insert(&Triple::new(
            Term::iri("http://v/a"),
            Term::iri("http://p"),
            Term::iri("http://v/a"),
        ));
        let dist = DistributedGraph::build(g, &HashPartitioner::new(4));
        assert_eq!(dist.validate(), None);
        let total_crossing: usize = dist.fragments.iter().map(|f| f.crossing_edges.len()).sum();
        assert_eq!(total_crossing, 0);
    }

    #[test]
    fn validate_catches_broken_assignment() {
        let g = chain_graph(3);
        let ids: Vec<VertexId> = (0..3)
            .map(|i| g.vertex_of(&Term::iri(format!("http://v/{i}"))).unwrap())
            .collect();
        let mut map = HashMap::new();
        map.insert(ids[0], 0);
        map.insert(ids[1], 0);
        map.insert(ids[2], 1);
        let dist = DistributedGraph::build(g, &ExplicitPartitioner::new(2, map));
        assert_eq!(dist.validate(), None);
        // Corrupt: claim an extra internal vertex in fragment 1.
        let mut broken = dist.clone();
        broken.fragments[1].internal.push(ids[0]);
        broken.fragments[1].internal.sort_unstable();
        assert!(broken.validate().is_some());
    }

    #[test]
    fn single_fragment_has_no_crossing_edges() {
        let g = chain_graph(6);
        let dist = DistributedGraph::build(g, &HashPartitioner::new(1));
        assert_eq!(dist.validate(), None);
        assert!(dist.fragments[0].crossing_edges.is_empty());
        assert_eq!(dist.fragments[0].internal_edges.len(), 5);
    }

    /// A graph with several predicates, classes and hub vertices so the
    /// per-fragment statistics have something to reconcile.
    fn stats_graph() -> RdfGraph {
        let mut triples = Vec::new();
        for i in 0..24usize {
            let p = format!("http://p/{}", i % 3);
            triples.push(Triple::new(
                Term::iri(format!("http://v/{i}")),
                Term::iri(&p),
                Term::iri(format!("http://v/{}", (i * 7 + 1) % 24)),
            ));
            triples.push(Triple::new(
                Term::iri("http://hub"),
                Term::iri(&p),
                Term::iri(format!("http://v/{i}")),
            ));
            if i % 4 == 0 {
                triples.push(Triple::new(
                    Term::iri(format!("http://v/{i}")),
                    Term::iri(gstored_rdf::vocab::rdf::TYPE),
                    Term::iri(format!("http://Class/{}", i % 2)),
                ));
            }
        }
        let mut g = RdfGraph::from_triples(triples);
        g.finalize();
        g
    }

    /// Per-site statistics must reconcile with the whole-graph counts
    /// under every partitioner: internal vertices partition `V`, each
    /// crossing edge is counted from exactly two sides, and the
    /// per-predicate and per-class sums add back up to the graph's own.
    #[test]
    fn fragment_stats_reconcile_with_whole_graph_under_all_partitioners() {
        let g = stats_graph();
        let partitioners: [(&str, Box<dyn Partitioner>); 3] = [
            ("hash", Box::new(HashPartitioner::new(3))),
            ("semantic", Box::new(SemanticHashPartitioner::new(3))),
            ("metis", Box::new(MetisLikePartitioner::new(3))),
        ];
        for (name, p) in partitioners {
            let dist = DistributedGraph::build(g.clone(), p.as_ref());
            assert_eq!(dist.validate(), None, "{name}");
            let stats = dist.stats();
            assert_eq!(stats.sites.len(), dist.fragment_count(), "{name}");
            assert_eq!(stats.total_vertices, g.vertex_count(), "{name}: vertices");
            assert_eq!(
                stats.total_crossing_incidences % 2,
                0,
                "{name}: every crossing edge has two sides"
            );
            assert_eq!(
                stats.total_internal_edges + stats.total_crossing_incidences / 2,
                g.edge_count(),
                "{name}: edges"
            );
            assert_eq!(
                stats.total_crossing_incidences / 2,
                dist.crossing_edges().len(),
                "{name}: crossing dedup"
            );
            for p in g.predicates() {
                assert_eq!(
                    stats.internal_count(Some(p)) + stats.crossing_count(Some(p)) / 2,
                    g.edges_with_predicate(p).len(),
                    "{name}: predicate {p:?}"
                );
            }
            let mut classes: Vec<TermId> = g
                .class_map()
                .values()
                .flat_map(|cs| cs.iter().copied())
                .collect();
            classes.sort_unstable();
            classes.dedup();
            assert!(!classes.is_empty(), "fixture must exercise classes");
            for c in classes {
                let whole = g.class_map().values().filter(|cs| cs.contains(&c)).count();
                assert_eq!(stats.class_count(c), whole, "{name}: class {c:?}");
            }
            let histogram_total: usize = stats.sites.iter().map(|s| s.selectivity.total()).sum();
            assert_eq!(
                histogram_total,
                g.vertex_count(),
                "{name}: one histogram entry per internal vertex"
            );
        }
    }

    /// The statistics cache is lazy and shared across clones.
    #[test]
    fn stats_are_lazy_and_shared_by_clones() {
        let dist = DistributedGraph::build(stats_graph(), &HashPartitioner::new(2));
        assert!(!dist.stats_computed(), "nothing computed at build time");
        let clone = dist.clone();
        let _ = dist.stats();
        assert!(dist.stats_computed());
        assert!(
            clone.stats_computed(),
            "clones share the cache through the Arc"
        );
        assert_eq!(clone.stats(), dist.stats());
    }
}
