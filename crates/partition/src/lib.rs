//! # gstored-partition
//!
//! Vertex-disjoint partitioning of an RDF graph into fragments
//! (Definition 1 of the paper), the partitioning strategies evaluated in
//! Sections VII/VIII-D, and the partitioning cost model of Section VII.
//!
//! The paper's setting is *partitioning-tolerant*: the engine must answer
//! queries correctly under **any** vertex-disjoint partitioning, but
//! different partitionings give different performance. This crate provides:
//!
//! * [`fragment::DistributedGraph`] / [`fragment::Fragment`] — fragments
//!   with internal vertices `V_i`, extended vertices `Ve_i`, internal edges
//!   `E_i` and replicated crossing edges `Ec_i`, exactly per Definition 1.
//! * [`HashPartitioner`] — the paper's default (`H(v) mod N`).
//! * [`SemanticHashPartitioner`] — URI-hierarchy grouping (Lee & Liu);
//!   degenerates to plain hashing when the hierarchy is uniform, matching
//!   the paper's YAGO2 observation.
//! * [`MetisLikePartitioner`] — a from-scratch multilevel min-edge-cut
//!   partitioner (heavy-edge-matching coarsening + greedy refinement)
//!   standing in for METIS.
//! * [`ExplicitPartitioner`] — a fixed assignment, used for the paper's
//!   running example (Fig. 1) and the Fig. 8 cost worked example.
//! * [`cost`] — `Cost(F) = E_F(V) × max_i |E_i ∪ Ec_i|`.

pub mod cost;
pub mod fragment;
pub mod hash;
pub mod metis_like;
pub mod semantic;

pub use cost::{partitioning_cost, CostReport};
pub use fragment::{DistributedGraph, Fragment, FragmentId, PartitionAssignment};
pub use hash::{ExplicitPartitioner, HashPartitioner};
pub use metis_like::MetisLikePartitioner;
pub use semantic::SemanticHashPartitioner;

use gstored_rdf::RdfGraph;

/// A strategy that assigns every vertex of an RDF graph to one of `k`
/// fragments. Implementations must be deterministic for reproducibility.
pub trait Partitioner {
    /// Human-readable strategy name (used in experiment output).
    fn name(&self) -> &'static str;

    /// Number of fragments produced.
    fn num_fragments(&self) -> usize;

    /// Assign every vertex to a fragment.
    fn assign(&self, graph: &RdfGraph) -> PartitionAssignment;
}
