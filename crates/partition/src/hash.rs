//! Hash partitioning (the paper's default: `H(v) MOD N`) and an explicit
//! assignment used for worked examples and tests.

use std::collections::HashMap;

use gstored_rdf::{RdfGraph, VertexId};

use crate::fragment::{FragmentId, PartitionAssignment};
use crate::Partitioner;

/// The paper's default strategy: assign vertex `v` to fragment
/// `H(v) MOD N`. We hash the *term id*, which is stable for a given load
/// order; hashing the term string would work identically.
#[derive(Debug, Clone)]
pub struct HashPartitioner {
    k: usize,
    seed: u64,
}

impl HashPartitioner {
    /// Hash partitioner over `k` fragments.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "need at least one fragment");
        HashPartitioner {
            k,
            seed: 0x9e3779b97f4a7c15,
        }
    }

    /// Same, with an explicit seed (lets tests derive different layouts).
    pub fn with_seed(k: usize, seed: u64) -> Self {
        assert!(k > 0, "need at least one fragment");
        HashPartitioner { k, seed }
    }
}

/// A fast 64-bit mix (splitmix64 finalizer); deterministic across runs,
/// unlike `std`'s `DefaultHasher` which is allowed to change.
pub(crate) fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// Deterministic string hash (FNV-1a folded through mix64).
pub(crate) fn hash_str(s: &str, seed: u64) -> u64 {
    let mut h = 0xcbf29ce484222325u64 ^ seed;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100000001b3);
    }
    mix64(h)
}

impl Partitioner for HashPartitioner {
    fn name(&self) -> &'static str {
        "hash"
    }

    fn num_fragments(&self) -> usize {
        self.k
    }

    fn assign(&self, graph: &RdfGraph) -> PartitionAssignment {
        let mut of_vertex = HashMap::with_capacity(graph.vertex_count());
        for v in graph.vertices() {
            let f = (mix64(v.0 ^ self.seed) % self.k as u64) as FragmentId;
            of_vertex.insert(v, f);
        }
        PartitionAssignment {
            k: self.k,
            of_vertex,
        }
    }
}

/// A fixed vertex → fragment map. Used to reproduce the paper's Fig. 1
/// layout and the Fig. 8 cost examples exactly, and by property tests to
/// exercise arbitrary partitionings.
#[derive(Debug, Clone)]
pub struct ExplicitPartitioner {
    k: usize,
    map: HashMap<VertexId, FragmentId>,
    /// Fragment for vertices absent from `map`.
    default: FragmentId,
}

impl ExplicitPartitioner {
    /// Explicit assignment; unmapped vertices go to fragment 0.
    pub fn new(k: usize, map: HashMap<VertexId, FragmentId>) -> Self {
        assert!(k > 0);
        assert!(map.values().all(|&f| f < k), "fragment id out of range");
        ExplicitPartitioner { k, map, default: 0 }
    }

    /// Choose the fragment for unmapped vertices.
    pub fn with_default(mut self, default: FragmentId) -> Self {
        assert!(default < self.k);
        self.default = default;
        self
    }
}

impl Partitioner for ExplicitPartitioner {
    fn name(&self) -> &'static str {
        "explicit"
    }

    fn num_fragments(&self) -> usize {
        self.k
    }

    fn assign(&self, graph: &RdfGraph) -> PartitionAssignment {
        let mut of_vertex = HashMap::with_capacity(graph.vertex_count());
        for v in graph.vertices() {
            of_vertex.insert(v, *self.map.get(&v).unwrap_or(&self.default));
        }
        PartitionAssignment {
            k: self.k,
            of_vertex,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gstored_rdf::{Term, Triple};

    fn graph(n: usize) -> RdfGraph {
        let mut triples = Vec::new();
        for i in 0..n {
            triples.push(Triple::new(
                Term::iri(format!("http://v/{i}")),
                Term::iri("http://p"),
                Term::iri(format!("http://v/{}", (i + 1) % n)),
            ));
        }
        RdfGraph::from_triples(triples)
    }

    #[test]
    fn hash_assignment_is_deterministic_and_total() {
        let g = graph(100);
        let p = HashPartitioner::new(4);
        let a1 = p.assign(&g);
        let a2 = p.assign(&g);
        assert_eq!(a1.of_vertex, a2.of_vertex);
        assert_eq!(a1.of_vertex.len(), g.vertex_count());
        assert!(a1.of_vertex.values().all(|&f| f < 4));
    }

    #[test]
    fn hash_assignment_is_roughly_balanced() {
        let g = graph(1000);
        let a = HashPartitioner::new(4).assign(&g);
        let sizes = a.sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 1000);
        for s in sizes {
            // 1000/4 = 250; allow generous slack.
            assert!((150..=350).contains(&s), "unbalanced: {s}");
        }
    }

    #[test]
    fn different_seeds_give_different_layouts() {
        let g = graph(100);
        let a = HashPartitioner::with_seed(4, 1).assign(&g);
        let b = HashPartitioner::with_seed(4, 2).assign(&g);
        assert_ne!(a.of_vertex, b.of_vertex);
    }

    #[test]
    fn explicit_partitioner_respects_map_and_default() {
        let g = graph(3);
        let v0 = g.vertex_of(&Term::iri("http://v/0")).unwrap();
        let mut map = HashMap::new();
        map.insert(v0, 2);
        let p = ExplicitPartitioner::new(3, map).with_default(1);
        let a = p.assign(&g);
        assert_eq!(a.fragment_of(v0), 2);
        let v1 = g.vertex_of(&Term::iri("http://v/1")).unwrap();
        assert_eq!(a.fragment_of(v1), 1);
    }

    #[test]
    #[should_panic(expected = "fragment id out of range")]
    fn explicit_partitioner_rejects_out_of_range() {
        let mut map = HashMap::new();
        map.insert(gstored_rdf::TermId(0), 5);
        let _ = ExplicitPartitioner::new(3, map);
    }

    #[test]
    fn mix64_spreads_small_inputs() {
        let h: std::collections::HashSet<u64> = (0..64u64).map(|i| mix64(i) % 8).collect();
        assert!(h.len() >= 6, "mix should reach most buckets");
    }

    #[test]
    fn hash_str_is_stable() {
        assert_eq!(hash_str("abc", 0), hash_str("abc", 0));
        assert_ne!(hash_str("abc", 0), hash_str("abd", 0));
        assert_ne!(hash_str("abc", 0), hash_str("abc", 1));
    }
}
