//! Semantic hash partitioning (Lee & Liu, PVLDB 2013 — reference \[15\] of
//! the paper), reimplemented from scratch at the level of detail the
//! paper's experiments depend on.
//!
//! The idea: group vertices by their **URI hierarchy** (publisher domain /
//! path prefix) so that entities of one publisher land in one fragment.
//! For LUBM, per-university hosts make this partition almost perfectly by
//! data domain (the paper: "the semantic hash partitioning can partition
//! the entities totally based on their domains"); for YAGO2, every entity
//! shares one namespace and the strategy degenerates to plain hashing
//! (the paper: "the cost ... is approximately same as the hash
//! partitioning"). Our implementation reproduces both behaviours:
//!
//! 1. Extract a hierarchy key per IRI vertex (authority + leading path
//!    segments, see [`hierarchy_key`]).
//! 2. If the distinct keys provide enough spread (≥ `k`), hash the key.
//! 3. Otherwise fall back to hashing the full IRI (degenerate namespaces).
//! 4. Literal and blank vertices co-locate with the fragment that owns the
//!    majority of their IRI neighbors (subjects describing them), falling
//!    back to full-string hashing for isolated vertices.

use std::collections::HashMap;

use gstored_rdf::{RdfGraph, Term, VertexId};

use crate::fragment::{FragmentId, PartitionAssignment};
use crate::hash::hash_str;
use crate::Partitioner;

/// URI-hierarchy (publisher-domain) partitioner.
#[derive(Debug, Clone)]
pub struct SemanticHashPartitioner {
    k: usize,
    /// How many path segments beyond the authority participate in the key.
    path_depth: usize,
    seed: u64,
}

impl SemanticHashPartitioner {
    /// Semantic hash partitioner over `k` fragments. The default
    /// hierarchy key is the URI authority (publisher domain, depth 0):
    /// grouping at the publisher level is what Lee & Liu's hierarchy
    /// expansion converges to on LUBM, where each university is one
    /// authority; deeper keys would scatter a university's departments.
    pub fn new(k: usize) -> Self {
        assert!(k > 0);
        SemanticHashPartitioner {
            k,
            path_depth: 0,
            seed: 0x5ee_d5eed,
        }
    }

    /// Override the number of path segments included in the hierarchy key.
    pub fn with_path_depth(mut self, depth: usize) -> Self {
        self.path_depth = depth;
        self
    }
}

/// Extract the hierarchy key of an IRI: scheme authority plus up to
/// `depth` leading path segments.
///
/// `http://www.University0.edu/Department3/Prof4` with depth 1 gives
/// `www.university0.edu/Department3`; `http://yago.org/resource/X` gives
/// `yago.org/resource` for every entity (a degenerate hierarchy).
pub fn hierarchy_key(iri: &str, depth: usize) -> String {
    let rest = iri.split_once("://").map(|(_, r)| r).unwrap_or(iri);
    let mut parts = rest.split('/');
    let authority = parts.next().unwrap_or(rest).to_ascii_lowercase();
    let mut key = authority;
    for seg in parts.take(depth) {
        // Fragment-only tails (e.g. `ontology#Thing`) stay part of the
        // previous segment; stop at empty segments.
        if seg.is_empty() {
            break;
        }
        key.push('/');
        key.push_str(seg.split('#').next().unwrap_or(seg));
    }
    key
}

impl Partitioner for SemanticHashPartitioner {
    fn name(&self) -> &'static str {
        "semantic-hash"
    }

    fn num_fragments(&self) -> usize {
        self.k
    }

    fn assign(&self, graph: &RdfGraph) -> PartitionAssignment {
        let mut of_vertex: HashMap<VertexId, FragmentId> =
            HashMap::with_capacity(graph.vertex_count());

        // Pass 1: IRI vertices by hierarchy key (with degeneracy fallback).
        let mut keys: HashMap<VertexId, String> = HashMap::new();
        let mut key_population: HashMap<String, usize> = HashMap::new();
        let mut iri_count = 0usize;
        for v in graph.vertices() {
            if let Term::Iri(iri) = graph.term(v) {
                let key = hierarchy_key(iri, self.path_depth);
                *key_population.entry(key.clone()).or_insert(0) += 1;
                keys.insert(v, key);
                iri_count += 1;
            }
        }
        // A hierarchy is degenerate when one key dominates: grouping by it
        // would overload a single fragment. Threshold: the largest key
        // covers more than 2/k of the IRI vertices (i.e. twice a balanced
        // fragment's share).
        let max_pop = key_population.values().copied().max().unwrap_or(0);
        let degenerate = self.k > 1 && iri_count > 0 && max_pop * self.k > 2 * iri_count;

        for (v, key) in &keys {
            let f = if degenerate {
                let Term::Iri(iri) = graph.term(*v) else {
                    unreachable!()
                };
                (hash_str(iri, self.seed) % self.k as u64) as FragmentId
            } else {
                (hash_str(key, self.seed) % self.k as u64) as FragmentId
            };
            of_vertex.insert(*v, f);
        }

        // Pass 2: literals and blank nodes co-locate with the plurality of
        // their already-assigned neighbors.
        for v in graph.vertices() {
            if of_vertex.contains_key(&v) {
                continue;
            }
            let mut votes = vec![0usize; self.k];
            let mut any = false;
            for &(_, n) in graph.in_edges(v).iter().chain(graph.out_edges(v)) {
                if let Some(&f) = of_vertex.get(&n) {
                    votes[f] += 1;
                    any = true;
                }
            }
            let f = if any {
                votes
                    .iter()
                    .enumerate()
                    .max_by_key(|&(_, c)| *c)
                    .map(|(i, _)| i)
                    .expect("k > 0")
            } else {
                let s = graph.term(v).to_string();
                (hash_str(&s, self.seed) % self.k as u64) as usize
            };
            of_vertex.insert(v, f);
        }

        PartitionAssignment {
            k: self.k,
            of_vertex,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gstored_rdf::Triple;

    #[test]
    fn hierarchy_key_extraction() {
        assert_eq!(
            hierarchy_key("http://www.University0.edu/Department3/Prof4", 1),
            "www.university0.edu/Department3"
        );
        assert_eq!(
            hierarchy_key("http://www.University0.edu/Department3/Prof4", 0),
            "www.university0.edu"
        );
        assert_eq!(
            hierarchy_key("http://yago.org/resource/Albert_Einstein", 1),
            "yago.org/resource"
        );
        assert_eq!(hierarchy_key("no-scheme-string", 1), "no-scheme-string");
        assert_eq!(hierarchy_key("http://ex.org/onto#Thing", 1), "ex.org/onto");
    }

    fn university_graph(unis: usize, per_uni: usize) -> RdfGraph {
        // Entities within a university are densely linked; a few links cross.
        let mut triples = Vec::new();
        for u in 0..unis {
            for i in 0..per_uni {
                triples.push(Triple::new(
                    Term::iri(format!("http://www.Univ{u}.edu/e{i}")),
                    Term::iri("http://p/links"),
                    Term::iri(format!("http://www.Univ{u}.edu/e{}", (i + 1) % per_uni)),
                ));
            }
            triples.push(Triple::new(
                Term::iri(format!("http://www.Univ{u}.edu/e0")),
                Term::iri("http://p/peer"),
                Term::iri(format!("http://www.Univ{}.edu/e0", (u + 1) % unis)),
            ));
        }
        RdfGraph::from_triples(triples)
    }

    #[test]
    fn groups_universities_together() {
        let g = university_graph(8, 20);
        let p = SemanticHashPartitioner::new(4).with_path_depth(0);
        let a = p.assign(&g);
        // All entities of one university share a fragment.
        for u in 0..8 {
            let f0 = a.fragment_of(
                g.vertex_of(&Term::iri(format!("http://www.Univ{u}.edu/e0")))
                    .unwrap(),
            );
            for i in 1..20 {
                let fi = a.fragment_of(
                    g.vertex_of(&Term::iri(format!("http://www.Univ{u}.edu/e{i}")))
                        .unwrap(),
                );
                assert_eq!(f0, fi, "university {u} split across fragments");
            }
        }
    }

    #[test]
    fn fewer_crossing_edges_than_hash_on_domain_data() {
        use crate::fragment::DistributedGraph;
        use crate::hash::HashPartitioner;
        let crossing = |dist: &DistributedGraph| dist.crossing_edges().len();
        let g = university_graph(12, 30);
        let semantic = DistributedGraph::build(
            g.clone(),
            &SemanticHashPartitioner::new(4).with_path_depth(0),
        );
        let hash = DistributedGraph::build(g, &HashPartitioner::new(4));
        assert_eq!(semantic.validate(), None);
        assert!(
            crossing(&semantic) < crossing(&hash) / 4,
            "semantic {} vs hash {}",
            crossing(&semantic),
            crossing(&hash)
        );
    }

    #[test]
    fn degenerate_namespace_falls_back_to_hashing() {
        // Every entity in one namespace: the YAGO2 case.
        let mut triples = Vec::new();
        for i in 0..200 {
            triples.push(Triple::new(
                Term::iri(format!("http://yago.org/resource/e{i}")),
                Term::iri("http://p"),
                Term::iri(format!("http://yago.org/resource/e{}", (i + 1) % 200)),
            ));
        }
        let g = RdfGraph::from_triples(triples);
        let a = SemanticHashPartitioner::new(4).assign(&g);
        let sizes = a.sizes();
        // Degenerate fallback must spread, not collapse to one fragment.
        for s in &sizes {
            assert!(*s > 10, "fragment starved: {sizes:?}");
        }
    }

    #[test]
    fn literals_colocate_with_their_subject() {
        let mut triples = Vec::new();
        for u in 0..4 {
            for i in 0..10 {
                triples.push(Triple::new(
                    Term::iri(format!("http://www.Univ{u}.edu/e{i}")),
                    Term::iri("http://p/name"),
                    Term::lit(format!("entity {u}/{i}")),
                ));
                triples.push(Triple::new(
                    Term::iri(format!("http://www.Univ{u}.edu/e{i}")),
                    Term::iri("http://p/links"),
                    Term::iri(format!("http://www.Univ{u}.edu/e{}", (i + 1) % 10)),
                ));
            }
        }
        let g = RdfGraph::from_triples(triples);
        let a = SemanticHashPartitioner::new(4)
            .with_path_depth(0)
            .assign(&g);
        for u in 0..4 {
            for i in 0..10 {
                let subj = g
                    .vertex_of(&Term::iri(format!("http://www.Univ{u}.edu/e{i}")))
                    .unwrap();
                let lit = g.vertex_of(&Term::lit(format!("entity {u}/{i}"))).unwrap();
                assert_eq!(a.fragment_of(subj), a.fragment_of(lit));
            }
        }
    }

    #[test]
    fn assignment_is_total() {
        let g = university_graph(3, 5);
        let a = SemanticHashPartitioner::new(2).assign(&g);
        assert_eq!(a.of_vertex.len(), g.vertex_count());
    }
}
