//! The partitioning cost model of Section VII.
//!
//! Intuition: the number of LEC features a fragment can produce is driven
//! by how many crossing edges share a boundary vertex (Fig. 8 of the
//! paper: a 4-edge hub yields 10 LEC features for a 2-edge star query,
//! while 3+2 scattered edges yield 9). A good partitioning therefore
//! *scatters* crossing edges across boundary vertices and keeps fragment
//! edge sizes balanced:
//!
//! ```text
//! p_F(v)    = |N(v) ∩ Ec| / (2 |Ec|)            (crossing-edge distribution)
//! E_F(v)    = |N(v) ∩ Ec| × p_F(v)
//! E_F(V)    = Σ_v E_F(v) = Σ_v |N(v) ∩ Ec|² / (2 |Ec|)
//! Cost(F)   = E_F(V) × max_i |E_i ∪ Ec_i|
//! ```
//!
//! Verified against the paper's worked example: the hub partitioning of
//! Fig. 8(a) costs 27.5, the scattered one of Fig. 8(b) costs 23.4.

use std::collections::HashMap;

use gstored_rdf::VertexId;

use crate::fragment::DistributedGraph;

/// Full cost breakdown for one partitioning.
#[derive(Debug, Clone, PartialEq)]
pub struct CostReport {
    /// `E_F(V)` — expected crossing edges per boundary vertex.
    pub expectation: f64,
    /// `max_i |E_i ∪ Ec_i|` — edge size of the largest fragment.
    pub max_fragment_edges: usize,
    /// `Cost(F)` — the product.
    pub cost: f64,
    /// `|Ec|` — number of distinct crossing edges.
    pub crossing_edges: usize,
    /// Per-fragment `|E_i ∪ Ec_i|`.
    pub fragment_edge_sizes: Vec<usize>,
}

impl CostReport {
    /// Edge-size imbalance: max fragment size over the average.
    pub fn imbalance(&self) -> f64 {
        if self.fragment_edge_sizes.is_empty() {
            return 1.0;
        }
        let avg = self.fragment_edge_sizes.iter().sum::<usize>() as f64
            / self.fragment_edge_sizes.len() as f64;
        if avg == 0.0 {
            1.0
        } else {
            self.max_fragment_edges as f64 / avg
        }
    }
}

/// Compute `Cost(F)` and its components for a distributed graph.
pub fn partitioning_cost(dist: &DistributedGraph) -> CostReport {
    let crossing = dist.crossing_edges();
    let ec = crossing.len();

    // |N(v) ∩ Ec| per vertex: how many crossing edges touch v.
    let mut incident: HashMap<VertexId, usize> = HashMap::new();
    for e in &crossing {
        *incident.entry(e.from).or_insert(0) += 1;
        *incident.entry(e.to).or_insert(0) += 1;
    }

    let expectation = if ec == 0 {
        0.0
    } else {
        incident.values().map(|&c| (c * c) as f64).sum::<f64>() / (2.0 * ec as f64)
    };

    let fragment_edge_sizes: Vec<usize> = dist.fragments.iter().map(|f| f.edge_size()).collect();
    let max_fragment_edges = fragment_edge_sizes.iter().copied().max().unwrap_or(0);

    CostReport {
        expectation,
        max_fragment_edges,
        cost: expectation * max_fragment_edges as f64,
        crossing_edges: ec,
        fragment_edge_sizes,
    }
}

/// Pick the partitioning with the smallest cost among candidates
/// (the paper: "we only select the partitioning with the smallest cost
/// from the existing partitioning strategies").
pub fn select_best(
    candidates: &[(String, DistributedGraph)],
) -> Option<(&str, &DistributedGraph, CostReport)> {
    candidates
        .iter()
        .map(|(name, dist)| (name.as_str(), dist, partitioning_cost(dist)))
        .min_by(|a, b| a.2.cost.total_cmp(&b.2.cost))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fragment::DistributedGraph;
    use crate::hash::ExplicitPartitioner;
    use crate::Partitioner;
    use gstored_rdf::{RdfGraph, Term, Triple};
    use std::collections::HashMap as Map;

    fn t(s: &str, o: &str) -> Triple {
        Triple::new(Term::iri(s), Term::iri("http://p"), Term::iri(o))
    }

    /// Fig. 8(a): all 4 crossing edges share one hub vertex; the largest
    /// fragment holds 11 edges. Expected cost 27.5.
    fn fig8a() -> DistributedGraph {
        let mut triples = Vec::new();
        // Fragment 0: hub + 7 internal edges among a0..a7.
        for i in 0..7 {
            triples.push(t(&format!("http://a{i}"), &format!("http://a{}", i + 1)));
        }
        // hub = a0; 4 crossing edges hub -> b0..b3 (fragment 1).
        for i in 0..4 {
            triples.push(t("http://a0", &format!("http://b{i}")));
        }
        // Fragment 1 internal edges: 2 (fewer than fragment 0's 7+4=11).
        triples.push(t("http://b0", "http://b1"));
        triples.push(t("http://b2", "http://b3"));
        let g = RdfGraph::from_triples(triples);
        let mut map = Map::new();
        for i in 0..8 {
            map.insert(g.vertex_of(&Term::iri(format!("http://a{i}"))).unwrap(), 0);
        }
        for i in 0..4 {
            map.insert(g.vertex_of(&Term::iri(format!("http://b{i}"))).unwrap(), 1);
        }
        DistributedGraph::build(g, &ExplicitPartitioner::new(2, map))
    }

    /// Fig. 8(b): 5 crossing edges scattered over two boundary vertices
    /// (3 + 2); the largest fragment holds 13 edges. Expected cost 23.4.
    fn fig8b() -> DistributedGraph {
        let mut triples = Vec::new();
        // Fragment 0: 8 internal edges.
        for i in 0..8 {
            triples.push(t(&format!("http://a{i}"), &format!("http://a{}", i + 1)));
        }
        // Crossing: a0 -> b0,b1,b2 and a1 -> b3,b4 (5 edges; distinct far
        // endpoints so each far endpoint has exactly 1 incident crossing
        // edge, matching the paper's arithmetic 3² + 2² + 5·1² = 18).
        for i in 0..3 {
            triples.push(t("http://a0", &format!("http://b{i}")));
        }
        for i in 3..5 {
            triples.push(t("http://a1", &format!("http://b{i}")));
        }
        // Fragment 1 internal edges: none needed; fragment 0 has 8+5=13.
        let g = RdfGraph::from_triples(triples);
        let mut map = Map::new();
        for i in 0..9 {
            map.insert(g.vertex_of(&Term::iri(format!("http://a{i}"))).unwrap(), 0);
        }
        for i in 0..5 {
            map.insert(g.vertex_of(&Term::iri(format!("http://b{i}"))).unwrap(), 1);
        }
        DistributedGraph::build(g, &ExplicitPartitioner::new(2, map))
    }

    #[test]
    fn paper_fig8a_cost_is_27_5() {
        let dist = fig8a();
        assert_eq!(dist.validate(), None);
        let r = partitioning_cost(&dist);
        assert_eq!(r.crossing_edges, 4);
        assert!(
            (r.expectation - 2.5).abs() < 1e-9,
            "E_F(V) = {}",
            r.expectation
        );
        assert_eq!(r.max_fragment_edges, 11);
        assert!((r.cost - 27.5).abs() < 1e-9, "cost = {}", r.cost);
    }

    #[test]
    fn paper_fig8b_cost_is_23_4() {
        let dist = fig8b();
        assert_eq!(dist.validate(), None);
        let r = partitioning_cost(&dist);
        assert_eq!(r.crossing_edges, 5);
        assert!(
            (r.expectation - 1.8).abs() < 1e-9,
            "E_F(V) = {}",
            r.expectation
        );
        assert_eq!(r.max_fragment_edges, 13);
        assert!((r.cost - 23.4).abs() < 1e-9, "cost = {}", r.cost);
    }

    #[test]
    fn scattered_beats_hub_despite_more_crossing_edges() {
        // The paper's headline observation about Fig. 8.
        let hub = partitioning_cost(&fig8a());
        let scattered = partitioning_cost(&fig8b());
        assert!(scattered.crossing_edges > hub.crossing_edges);
        assert!(scattered.cost < hub.cost);
    }

    #[test]
    fn select_best_prefers_smaller_cost() {
        let candidates = vec![
            ("hub".to_string(), fig8a()),
            ("scattered".to_string(), fig8b()),
        ];
        let (name, _, report) = select_best(&candidates).unwrap();
        assert_eq!(name, "scattered");
        assert!((report.cost - 23.4).abs() < 1e-9);
    }

    #[test]
    fn zero_crossing_edges_means_zero_cost() {
        let g = RdfGraph::from_triples(vec![t("http://a", "http://b")]);
        let all = g.vertices().map(|v| (v, 0)).collect();
        let dist = DistributedGraph::build(g, &ExplicitPartitioner::new(1, all));
        let r = partitioning_cost(&dist);
        assert_eq!(r.cost, 0.0);
        assert_eq!(r.crossing_edges, 0);
    }

    #[test]
    fn imbalance_reported() {
        let r = partitioning_cost(&fig8a());
        // fragment sizes: 11 and 6 (2 internal + 4 crossing replicas).
        assert_eq!(r.fragment_edge_sizes.len(), 2);
        assert!(r.imbalance() > 1.0);
    }

    #[test]
    fn explicit_partitioner_used_by_fixtures_is_valid() {
        // Guard: fixtures rely on every vertex being mapped.
        let dist = fig8b();
        let p = ExplicitPartitioner::new(2, Map::new());
        assert_eq!(p.num_fragments(), 2);
        assert_eq!(dist.fragment_count(), 2);
    }
}
