//! Generic worker serve loops: frames in, frames out.
//!
//! A worker is a handler function `FnMut(Bytes) -> Option<Bytes>`: it
//! receives one request frame and returns `Some(reply)` to answer and
//! keep serving, or `None` to stop (e.g. after a shutdown request). The
//! loops here drive such a handler over either transport backend; the
//! gStoreD-specific handler lives in `gstored_core::worker`, keeping this
//! crate free of engine types.

use std::io::{self, Read, Write};

use bytes::Bytes;

use crate::transport::{is_timeout, read_frame, write_frame, InProcessEndpoint, MAX_FRAME_LEN};

/// Why a serve loop ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeOutcome {
    /// The coordinator hung up (channel dropped / socket EOF). A
    /// persistent worker process goes back to accepting connections.
    Disconnected,
    /// The handler returned `None` (shutdown was requested).
    Stopped,
}

/// Serve frames over a byte stream (e.g. a `TcpStream`) until the peer
/// disconnects or the handler stops.
pub fn serve_stream<S, H>(stream: &mut S, mut handler: H) -> io::Result<ServeOutcome>
where
    S: Read + Write,
    H: FnMut(Bytes) -> Option<Bytes>,
{
    loop {
        let Some(frame) = read_frame(stream)? else {
            return Ok(ServeOutcome::Disconnected);
        };
        match handler(frame) {
            Some(reply) => write_frame(stream, &reply)?,
            None => return Ok(ServeOutcome::Stopped),
        }
    }
}

/// [`serve_stream`] with an **idle tick**: whenever a full tick passes
/// without a new frame starting, `on_idle` runs (housekeeping — e.g. the
/// site worker's stale-query TTL sweep) and the loop keeps waiting. A
/// worker whose coordinator died mid-conversation stops receiving frames
/// entirely, so housekeeping must not depend on traffic.
///
/// The caller must arm a socket read timeout (`set_read_timeout`) for
/// ticks to fire; timeouts are retried at *any* stream position — a tick
/// elapsing mid-frame just means the coordinator is slow writing, not
/// that the stream is torn, because this side never gives up on the
/// frame. Without a socket timeout the loop degenerates to
/// [`serve_stream`] and `on_idle` never runs.
pub fn serve_stream_idle<S, H, I>(
    stream: &mut S,
    mut handler: H,
    mut on_idle: I,
) -> io::Result<ServeOutcome>
where
    S: Read + Write,
    H: FnMut(Bytes) -> Option<Bytes>,
    I: FnMut(),
{
    // One read that rides out timeouts (ticking) and interrupts; `Ok(0)`
    // is EOF, surfaced to the framing loops below.
    fn read_ticking<S: Read>(
        stream: &mut S,
        buf: &mut [u8],
        on_idle: &mut impl FnMut(),
    ) -> io::Result<usize> {
        loop {
            match stream.read(buf) {
                Ok(n) => return Ok(n),
                Err(e) if is_timeout(&e) => on_idle(),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }
    loop {
        let mut len_buf = [0u8; 4];
        let mut filled = 0;
        while filled < 4 {
            match read_ticking(stream, &mut len_buf[filled..], &mut on_idle)? {
                0 if filled == 0 => return Ok(ServeOutcome::Disconnected),
                0 => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "stream ended inside a frame header",
                    ))
                }
                n => filled += n,
            }
        }
        let len = u32::from_le_bytes(len_buf) as usize;
        if len > MAX_FRAME_LEN {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "frame length exceeds MAX_FRAME_LEN",
            ));
        }
        let mut payload = vec![0u8; len];
        let mut filled = 0;
        while filled < len {
            match read_ticking(stream, &mut payload[filled..], &mut on_idle)? {
                0 => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "stream ended inside a frame payload",
                    ))
                }
                n => filled += n,
            }
        }
        match handler(Bytes::from(payload)) {
            Some(reply) => write_frame(stream, &reply)?,
            None => return Ok(ServeOutcome::Stopped),
        }
    }
}

/// Serve frames over an in-process endpoint until the coordinator drops
/// the transport or the handler stops.
pub fn serve_endpoint<H>(endpoint: InProcessEndpoint, mut handler: H) -> ServeOutcome
where
    H: FnMut(Bytes) -> Option<Bytes>,
{
    while let Some(frame) = endpoint.recv() {
        match handler(frame) {
            Some(reply) => {
                if !endpoint.send(reply) {
                    return ServeOutcome::Disconnected;
                }
            }
            None => return ServeOutcome::Stopped,
        }
    }
    ServeOutcome::Disconnected
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::{InProcessTransport, Transport};

    #[test]
    fn endpoint_loop_replies_until_disconnect() {
        let (transport, mut endpoints) = InProcessTransport::pair(1);
        let ep = endpoints.pop().unwrap();
        let worker = std::thread::spawn(move || serve_endpoint(ep, Some));
        transport.send(0, Bytes::from_static(b"a")).unwrap();
        assert_eq!(transport.recv(0).unwrap().as_ref(), b"a");
        drop(transport);
        assert_eq!(worker.join().unwrap(), ServeOutcome::Disconnected);
    }

    #[test]
    fn endpoint_loop_stops_when_handler_says_so() {
        let (transport, mut endpoints) = InProcessTransport::pair(1);
        let ep = endpoints.pop().unwrap();
        let worker = std::thread::spawn(move || {
            serve_endpoint(
                ep,
                |frame| if frame.is_empty() { None } else { Some(frame) },
            )
        });
        transport.send(0, Bytes::from_static(b"x")).unwrap();
        assert_eq!(transport.recv(0).unwrap().as_ref(), b"x");
        transport.send(0, Bytes::new()).unwrap();
        assert_eq!(worker.join().unwrap(), ServeOutcome::Stopped);
    }

    #[test]
    fn idle_loop_ticks_while_quiet_and_still_serves() {
        use std::net::{TcpListener, TcpStream};
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        use std::time::Duration;
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let ticks = Arc::new(AtomicUsize::new(0));
        let server_ticks = Arc::clone(&ticks);
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            stream
                .set_read_timeout(Some(Duration::from_millis(5)))
                .unwrap();
            serve_stream_idle(&mut stream, Some, || {
                server_ticks.fetch_add(1, Ordering::SeqCst);
            })
        });
        let mut client = TcpStream::connect(addr).unwrap();
        std::thread::sleep(Duration::from_millis(50));
        write_frame(&mut client, b"ping").unwrap();
        assert_eq!(read_frame(&mut client).unwrap().unwrap().as_ref(), b"ping");
        assert!(
            ticks.load(Ordering::SeqCst) >= 1,
            "idle ticks fire while the connection is quiet"
        );
        drop(client);
        assert_eq!(server.join().unwrap().unwrap(), ServeOutcome::Disconnected);
    }

    #[test]
    fn stream_loop_serves_frames() {
        let mut requests = Vec::new();
        write_frame(&mut requests, b"one").unwrap();
        write_frame(&mut requests, b"two").unwrap();
        struct Duplex {
            input: io::Cursor<Vec<u8>>,
            output: Vec<u8>,
        }
        impl Read for Duplex {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                self.input.read(buf)
            }
        }
        impl Write for Duplex {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                self.output.write(buf)
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut duplex = Duplex {
            input: io::Cursor::new(requests),
            output: Vec::new(),
        };
        let outcome = serve_stream(&mut duplex, Some).unwrap();
        assert_eq!(outcome, ServeOutcome::Disconnected);
        let mut replies = io::Cursor::new(duplex.output);
        assert_eq!(read_frame(&mut replies).unwrap().unwrap().as_ref(), b"one");
        assert_eq!(read_frame(&mut replies).unwrap().unwrap().as_ref(), b"two");
    }
}
