//! Generic worker serve loops: frames in, frames out.
//!
//! A worker is a handler function `FnMut(Bytes) -> Option<Bytes>`: it
//! receives one request frame and returns `Some(reply)` to answer and
//! keep serving, or `None` to stop (e.g. after a shutdown request). The
//! loops here drive such a handler over either transport backend; the
//! gStoreD-specific handler lives in `gstored_core::worker`, keeping this
//! crate free of engine types.

use std::io::{self, Read, Write};

use bytes::Bytes;

use crate::transport::{read_frame, write_frame, InProcessEndpoint};

/// Why a serve loop ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeOutcome {
    /// The coordinator hung up (channel dropped / socket EOF). A
    /// persistent worker process goes back to accepting connections.
    Disconnected,
    /// The handler returned `None` (shutdown was requested).
    Stopped,
}

/// Serve frames over a byte stream (e.g. a `TcpStream`) until the peer
/// disconnects or the handler stops.
pub fn serve_stream<S, H>(stream: &mut S, mut handler: H) -> io::Result<ServeOutcome>
where
    S: Read + Write,
    H: FnMut(Bytes) -> Option<Bytes>,
{
    loop {
        let Some(frame) = read_frame(stream)? else {
            return Ok(ServeOutcome::Disconnected);
        };
        match handler(frame) {
            Some(reply) => write_frame(stream, &reply)?,
            None => return Ok(ServeOutcome::Stopped),
        }
    }
}

/// Serve frames over an in-process endpoint until the coordinator drops
/// the transport or the handler stops.
pub fn serve_endpoint<H>(endpoint: InProcessEndpoint, mut handler: H) -> ServeOutcome
where
    H: FnMut(Bytes) -> Option<Bytes>,
{
    while let Some(frame) = endpoint.recv() {
        match handler(frame) {
            Some(reply) => {
                if !endpoint.send(reply) {
                    return ServeOutcome::Disconnected;
                }
            }
            None => return ServeOutcome::Stopped,
        }
    }
    ServeOutcome::Disconnected
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::{InProcessTransport, Transport};

    #[test]
    fn endpoint_loop_replies_until_disconnect() {
        let (transport, mut endpoints) = InProcessTransport::pair(1);
        let ep = endpoints.pop().unwrap();
        let worker = std::thread::spawn(move || serve_endpoint(ep, Some));
        transport.send(0, Bytes::from_static(b"a")).unwrap();
        assert_eq!(transport.recv(0).unwrap().as_ref(), b"a");
        drop(transport);
        assert_eq!(worker.join().unwrap(), ServeOutcome::Disconnected);
    }

    #[test]
    fn endpoint_loop_stops_when_handler_says_so() {
        let (transport, mut endpoints) = InProcessTransport::pair(1);
        let ep = endpoints.pop().unwrap();
        let worker = std::thread::spawn(move || {
            serve_endpoint(
                ep,
                |frame| if frame.is_empty() { None } else { Some(frame) },
            )
        });
        transport.send(0, Bytes::from_static(b"x")).unwrap();
        assert_eq!(transport.recv(0).unwrap().as_ref(), b"x");
        transport.send(0, Bytes::new()).unwrap();
        assert_eq!(worker.join().unwrap(), ServeOutcome::Stopped);
    }

    #[test]
    fn stream_loop_serves_frames() {
        let mut requests = Vec::new();
        write_frame(&mut requests, b"one").unwrap();
        write_frame(&mut requests, b"two").unwrap();
        struct Duplex {
            input: io::Cursor<Vec<u8>>,
            output: Vec<u8>,
        }
        impl Read for Duplex {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                self.input.read(buf)
            }
        }
        impl Write for Duplex {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                self.output.write(buf)
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut duplex = Duplex {
            input: io::Cursor::new(requests),
            output: Vec::new(),
        };
        let outcome = serve_stream(&mut duplex, Some).unwrap();
        assert_eq!(outcome, ServeOutcome::Disconnected);
        let mut replies = io::Cursor::new(duplex.output);
        assert_eq!(read_frame(&mut replies).unwrap().unwrap().as_ref(), b"one");
        assert_eq!(read_frame(&mut replies).unwrap().unwrap().as_ref(), b"two");
    }
}
