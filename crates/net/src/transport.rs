//! Pluggable message transports between the coordinator and site workers.
//!
//! The engine speaks to its sites through the [`Transport`] trait: an
//! ordered, reliable, length-delimited frame channel per site. Two
//! backends are provided:
//!
//! * [`InProcessTransport`] — worker threads connected by channels. The
//!   default backend: deterministic, no sockets, but every frame is still
//!   a real serialized byte buffer, so shipment accounting is identical
//!   to a networked deployment.
//! * [`TcpTransport`] — length-prefixed frames over TCP sockets, one
//!   connection per site, as used by the `gstored-worker` binary.
//!
//! What a frame *means* is defined one layer up (`gstored_core::protocol`
//! encodes typed request/response envelopes); this module only moves
//! opaque bytes and counts them.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use bytes::Bytes;

/// Upper bound on a single frame's payload length (1 GiB). A length
/// prefix above this is treated as a corrupt stream rather than an
/// allocation request.
pub const MAX_FRAME_LEN: usize = 1 << 30;

/// A transport failure: the peer went away or the stream is corrupt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// The worker side of the channel/socket is closed.
    Closed {
        /// Site whose channel closed.
        site: usize,
    },
    /// The site index is outside `0..sites()`.
    UnknownSite {
        /// The offending site index.
        site: usize,
    },
    /// No frame arrived from the site before the caller's deadline.
    /// [`Transport::recv_deadline`] only returns this at a clean frame
    /// boundary (a deadline that expires mid-frame is a connection
    /// failure instead); a socket-level timeout from a plain `recv`
    /// makes no such promise, so the coordinator treats a timed-out
    /// site as needing repair either way.
    TimedOut {
        /// Site that failed to answer in time.
        site: usize,
    },
    /// Dialing a site's worker address failed (connection refused,
    /// unresolvable address). Carries the site index so the caller can
    /// attribute the failure — a refused dial means *that worker* is
    /// unreachable, which the session surfaces as site-unavailable
    /// degradation rather than an anonymous transport fault.
    Connect {
        /// Site whose address could not be dialed.
        site: usize,
        /// The underlying dial failure.
        detail: String,
    },
    /// An I/O error from the underlying socket.
    Io(String),
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Closed { site } => {
                write!(f, "transport to site {site} is closed")
            }
            TransportError::UnknownSite { site } => write!(f, "no such site: {site}"),
            TransportError::TimedOut { site } => {
                write!(f, "site {site} did not answer before the deadline")
            }
            TransportError::Connect { site, detail } => {
                write!(f, "cannot connect to site {site}: {detail}")
            }
            TransportError::Io(msg) => write!(f, "transport I/O error: {msg}"),
        }
    }
}

impl std::error::Error for TransportError {}

impl From<io::Error> for TransportError {
    fn from(e: io::Error) -> Self {
        TransportError::Io(e.to_string())
    }
}

/// Coordinator-side view of `k` site workers: an ordered, reliable frame
/// channel per site.
///
/// The engine's contract is FIFO pipelining per site: it may have
/// several request frames in flight to one site at a time (the
/// overlapped stage driver sends a site its next stage as soon as the
/// previous reply arrives, and may queue a short chain up front), and
/// the site answers every request in arrival order. Implementations
/// must therefore preserve per-site frame order in both directions but
/// need no reordering or windowing — `recv(site)` always yields the
/// reply to the oldest unanswered request. Sends to *different* sites
/// happen back to back, which is what gives the scatter stages their
/// parallelism; the `ReplyRouter` one layer up handles interleaving
/// *across* queries.
///
/// ```
/// use bytes::Bytes;
/// use gstored_net::transport::{InProcessTransport, Transport};
///
/// // One echo worker behind the in-process backend.
/// let (transport, endpoints) = InProcessTransport::pair(1);
/// std::thread::scope(|scope| {
///     for ep in endpoints {
///         scope.spawn(move || {
///             gstored_net::worker::serve_endpoint(ep, |frame| Some(frame))
///         });
///     }
///     transport.send(0, Bytes::from_static(b"ping")).unwrap();
///     assert_eq!(transport.recv(0).unwrap().as_ref(), b"ping");
///     drop(transport); // closes the channels; the worker loop ends
/// });
/// ```
pub trait Transport: Send + Sync {
    /// Number of sites behind this transport.
    fn sites(&self) -> usize;

    /// Ship one frame to `site`.
    fn send(&self, site: usize, frame: Bytes) -> Result<(), TransportError>;

    /// Block until `site`'s next frame arrives.
    fn recv(&self, site: usize) -> Result<Bytes, TransportError>;

    /// Block until `site`'s next frame arrives or `deadline` passes,
    /// returning [`TransportError::TimedOut`] in the latter case.
    ///
    /// A timeout must leave the connection at a clean frame boundary
    /// (no partial frame consumed) so the caller can either retry the
    /// receive or declare the site dead — the provided backends all
    /// guarantee this, failing the connection instead if a frame was
    /// torn mid-read. The default implementation ignores the deadline
    /// and blocks; every production backend overrides it.
    fn recv_deadline(&self, site: usize, deadline: Instant) -> Result<Bytes, TransportError> {
        let _ = deadline;
        self.recv(site)
    }

    /// Tear down and re-establish the connection to `site`, clearing
    /// any sticky failure state. Used by the coordinator's repair path
    /// after a site is marked dead. Backends that cannot re-dial (the
    /// in-process channels have no address to call back) return an
    /// error, which the caller treats as "rebuild the fleet instead".
    fn reconnect(&self, site: usize) -> Result<(), TransportError> {
        Err(TransportError::Io(format!(
            "transport cannot reconnect site {site}: backend does not support re-dialing"
        )))
    }

    /// Whether [`Transport::reconnect`] can ever succeed on this
    /// backend. Lets the coordinator pick a repair strategy up front:
    /// re-dial and re-install one site, or tear the fleet down and
    /// rebuild it wholesale (the only option for in-process channels,
    /// whose worker threads die with the channel).
    fn can_reconnect(&self) -> bool {
        false
    }
}

/// Running totals of frames and bytes moved through a transport, in both
/// directions. Used by tests to assert that the engine's shipment metrics
/// equal what actually crossed the transport.
#[derive(Debug, Default)]
pub struct TransferCounters {
    frames: AtomicU64,
    bytes: AtomicU64,
}

impl TransferCounters {
    /// Total frames sent plus received.
    pub fn frames(&self) -> u64 {
        self.frames.load(Ordering::Relaxed)
    }

    /// Total payload bytes sent plus received (excluding the transport's
    /// own length prefixes — the quantity charged as data shipment).
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    pub(crate) fn record(&self, len: usize) {
        self.frames.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(len as u64, Ordering::Relaxed);
    }
}

/// The worker-side half of one in-process channel: frames from the
/// coordinator arrive via [`InProcessEndpoint::recv`], replies go back
/// via [`InProcessEndpoint::send`].
#[derive(Debug)]
pub struct InProcessEndpoint {
    rx: Receiver<Bytes>,
    tx: Sender<Bytes>,
}

impl InProcessEndpoint {
    /// Block for the next frame; `None` once the coordinator hung up.
    pub fn recv(&self) -> Option<Bytes> {
        self.rx.recv().ok()
    }

    /// Send a reply frame; `false` once the coordinator hung up.
    pub fn send(&self, frame: Bytes) -> bool {
        self.tx.send(frame).is_ok()
    }
}

/// Channel-backed transport: `k` worker endpoints, typically served by
/// scoped threads for the duration of one query. Dropping the transport
/// closes every channel, which ends the worker loops.
#[derive(Debug)]
pub struct InProcessTransport {
    to_workers: Vec<Sender<Bytes>>,
    from_workers: Vec<Mutex<Receiver<Bytes>>>,
    counters: TransferCounters,
}

impl InProcessTransport {
    /// Create the coordinator side plus one endpoint per site. Spawn a
    /// worker loop (see `gstored_net::worker::serve_endpoint`) on each
    /// endpoint before exercising the transport.
    pub fn pair(sites: usize) -> (InProcessTransport, Vec<InProcessEndpoint>) {
        assert!(sites > 0, "need at least one site");
        let mut to_workers = Vec::with_capacity(sites);
        let mut from_workers = Vec::with_capacity(sites);
        let mut endpoints = Vec::with_capacity(sites);
        for _ in 0..sites {
            let (req_tx, req_rx) = channel();
            let (resp_tx, resp_rx) = channel();
            to_workers.push(req_tx);
            from_workers.push(Mutex::new(resp_rx));
            endpoints.push(InProcessEndpoint {
                rx: req_rx,
                tx: resp_tx,
            });
        }
        (
            InProcessTransport {
                to_workers,
                from_workers,
                counters: TransferCounters::default(),
            },
            endpoints,
        )
    }

    /// Frame/byte totals moved through this transport so far.
    pub fn counters(&self) -> &TransferCounters {
        &self.counters
    }
}

impl Transport for InProcessTransport {
    fn sites(&self) -> usize {
        self.to_workers.len()
    }

    fn send(&self, site: usize, frame: Bytes) -> Result<(), TransportError> {
        let tx = self
            .to_workers
            .get(site)
            .ok_or(TransportError::UnknownSite { site })?;
        self.counters.record(frame.len());
        tx.send(frame).map_err(|_| TransportError::Closed { site })
    }

    fn recv(&self, site: usize) -> Result<Bytes, TransportError> {
        let rx = self
            .from_workers
            .get(site)
            .ok_or(TransportError::UnknownSite { site })?;
        let frame = rx
            .lock()
            .expect("transport receiver poisoned")
            .recv()
            .map_err(|_| TransportError::Closed { site })?;
        self.counters.record(frame.len());
        Ok(frame)
    }

    fn recv_deadline(&self, site: usize, deadline: Instant) -> Result<Bytes, TransportError> {
        let rx = self
            .from_workers
            .get(site)
            .ok_or(TransportError::UnknownSite { site })?;
        let guard = rx.lock().expect("transport receiver poisoned");
        let timeout = deadline.saturating_duration_since(Instant::now());
        let frame = guard.recv_timeout(timeout).map_err(|e| match e {
            RecvTimeoutError::Timeout => TransportError::TimedOut { site },
            RecvTimeoutError::Disconnected => TransportError::Closed { site },
        })?;
        self.counters.record(frame.len());
        Ok(frame)
    }
}

/// TCP-backed transport: one socket per site, frames delimited by a
/// little-endian `u32` length prefix (see [`write_frame`]/[`read_frame`]).
///
/// The resolved address of every site is retained, so a dead connection
/// can be re-dialed in place with [`Transport::reconnect`] — the repair
/// path the session uses after a worker restart. Optional socket
/// timeouts ([`TcpTransport::set_io_timeouts`]) bound how long a plain
/// `send`/`recv` can block even without a caller-supplied deadline.
#[derive(Debug)]
pub struct TcpTransport {
    streams: Vec<Mutex<TcpStream>>,
    /// Resolved worker addresses, in site order, for `reconnect`.
    addrs: Vec<SocketAddr>,
    /// `(read, write)` socket timeouts applied to every stream,
    /// including freshly reconnected ones.
    io_timeouts: Mutex<(Option<Duration>, Option<Duration>)>,
    counters: TransferCounters,
}

impl TcpTransport {
    /// Connect to one worker address per site, in site order.
    pub fn connect<A: ToSocketAddrs>(workers: &[A]) -> Result<TcpTransport, TransportError> {
        assert!(!workers.is_empty(), "need at least one site");
        let mut streams = Vec::with_capacity(workers.len());
        let mut addrs = Vec::with_capacity(workers.len());
        for (site, addr) in workers.iter().enumerate() {
            let dial = |e: String| TransportError::Connect { site, detail: e };
            let resolved = addr
                .to_socket_addrs()
                .map_err(|e| dial(e.to_string()))?
                .next()
                .ok_or_else(|| dial("address resolved to nothing".into()))?;
            let stream = TcpStream::connect(resolved).map_err(|e| dial(e.to_string()))?;
            stream.set_nodelay(true)?;
            streams.push(Mutex::new(stream));
            addrs.push(resolved);
        }
        Ok(TcpTransport {
            streams,
            addrs,
            io_timeouts: Mutex::new((None, None)),
            counters: TransferCounters::default(),
        })
    }

    /// Apply socket-level read/write timeouts to every site connection
    /// (and remember them for reconnected sockets). `None` disables a
    /// timeout. These are the backstop that keeps a blocking `send` or
    /// deadline-less `recv` from wedging forever on a dead peer; a read
    /// that trips the socket timeout surfaces as
    /// [`TransportError::TimedOut`] if it hit at a frame boundary and
    /// as a connection failure otherwise.
    pub fn set_io_timeouts(
        &self,
        read: Option<Duration>,
        write: Option<Duration>,
    ) -> Result<(), TransportError> {
        *self.io_timeouts.lock().expect("timeout config poisoned") = (read, write);
        for stream in &self.streams {
            let stream = stream.lock().expect("transport stream poisoned");
            stream.set_read_timeout(read)?;
            stream.set_write_timeout(write)?;
        }
        Ok(())
    }

    /// Frame/byte totals moved through this transport so far.
    pub fn counters(&self) -> &TransferCounters {
        &self.counters
    }
}

/// Whether an I/O error is a socket-timeout expiry (reported as
/// `WouldBlock` or `TimedOut` depending on platform).
pub(crate) fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Read one frame with a hard deadline, using per-call socket read
/// timeouts. A deadline expiry *before any byte of the frame arrived*
/// is a clean [`TransportError::TimedOut`]; an expiry mid-frame means
/// the stream position is torn and surfaces as a connection-fatal
/// `Io` error instead.
fn read_frame_deadline(
    stream: &mut TcpStream,
    site: usize,
    deadline: Instant,
) -> Result<Option<Bytes>, TransportError> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return Err(timeout_or_torn(site, filled == 0));
        }
        stream.set_read_timeout(Some(remaining))?;
        match stream.read(&mut len_buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(TransportError::Io(
                    "stream ended inside a frame header".into(),
                ))
            }
            Ok(n) => filled += n,
            Err(e) if is_timeout(&e) => return Err(timeout_or_torn(site, filled == 0)),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME_LEN {
        return Err(TransportError::Io(
            "frame length exceeds MAX_FRAME_LEN".into(),
        ));
    }
    let mut payload = vec![0u8; len];
    let mut got = 0;
    while got < len {
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return Err(timeout_or_torn(site, false));
        }
        stream.set_read_timeout(Some(remaining))?;
        match stream.read(&mut payload[got..]) {
            Ok(0) => {
                return Err(TransportError::Io(
                    "stream ended inside a frame payload".into(),
                ))
            }
            Ok(n) => got += n,
            Err(e) if is_timeout(&e) => return Err(timeout_or_torn(site, false)),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    Ok(Some(Bytes::from(payload)))
}

/// Timeout classification for `read_frame_deadline`: clean frame
/// boundary → retryable `TimedOut`; mid-frame → torn stream.
fn timeout_or_torn(site: usize, at_boundary: bool) -> TransportError {
    if at_boundary {
        TransportError::TimedOut { site }
    } else {
        TransportError::Io("read deadline expired mid-frame; stream position lost".into())
    }
}

impl Transport for TcpTransport {
    fn sites(&self) -> usize {
        self.streams.len()
    }

    fn send(&self, site: usize, frame: Bytes) -> Result<(), TransportError> {
        let stream = self
            .streams
            .get(site)
            .ok_or(TransportError::UnknownSite { site })?;
        self.counters.record(frame.len());
        let mut stream = stream.lock().expect("transport stream poisoned");
        write_frame(&mut *stream, &frame)?;
        Ok(())
    }

    fn recv(&self, site: usize) -> Result<Bytes, TransportError> {
        let stream = self
            .streams
            .get(site)
            .ok_or(TransportError::UnknownSite { site })?;
        let mut stream = stream.lock().expect("transport stream poisoned");
        match read_frame(&mut *stream) {
            Ok(Some(frame)) => {
                self.counters.record(frame.len());
                Ok(frame)
            }
            Ok(None) => Err(TransportError::Closed { site }),
            // A socket-timeout expiry (set via `set_io_timeouts`).
            // read_frame cannot report whether it was mid-frame, so the
            // caller must treat the connection as suspect — the router
            // marks a timed-out site failed rather than reading on.
            Err(e) if is_timeout(&e) => Err(TransportError::TimedOut { site }),
            Err(e) => Err(e.into()),
        }
    }

    fn recv_deadline(&self, site: usize, deadline: Instant) -> Result<Bytes, TransportError> {
        let stream = self
            .streams
            .get(site)
            .ok_or(TransportError::UnknownSite { site })?;
        let mut guard = stream.lock().expect("transport stream poisoned");
        let result = read_frame_deadline(&mut guard, site, deadline);
        // Restore the configured steady-state read timeout regardless of
        // outcome, so later plain `recv` calls see their usual config.
        let (read, _) = *self.io_timeouts.lock().expect("timeout config poisoned");
        let _ = guard.set_read_timeout(read);
        match result {
            Ok(Some(frame)) => {
                self.counters.record(frame.len());
                Ok(frame)
            }
            Ok(None) => Err(TransportError::Closed { site }),
            Err(e) => Err(e),
        }
    }

    fn reconnect(&self, site: usize) -> Result<(), TransportError> {
        let slot = self
            .streams
            .get(site)
            .ok_or(TransportError::UnknownSite { site })?;
        let addr = self.addrs[site];
        let fresh = TcpStream::connect(addr).map_err(|e| TransportError::Connect {
            site,
            detail: e.to_string(),
        })?;
        fresh.set_nodelay(true)?;
        let (read, write) = *self.io_timeouts.lock().expect("timeout config poisoned");
        fresh.set_read_timeout(read)?;
        fresh.set_write_timeout(write)?;
        // Swap under the lock; the old socket closes on drop.
        *slot.lock().expect("transport stream poisoned") = fresh;
        Ok(())
    }

    fn can_reconnect(&self) -> bool {
        true
    }
}

/// Write one length-prefixed frame (`u32` little-endian length, then the
/// payload) and flush.
pub fn write_frame<W: Write>(w: &mut W, frame: &[u8]) -> io::Result<()> {
    assert!(frame.len() <= MAX_FRAME_LEN, "frame exceeds MAX_FRAME_LEN");
    w.write_all(&(frame.len() as u32).to_le_bytes())?;
    w.write_all(frame)?;
    w.flush()
}

/// Read one length-prefixed frame. Returns `None` on a clean end of
/// stream (the peer closed between frames); errors on a truncated frame
/// or an oversized length prefix.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<Bytes>> {
    let mut len_buf = [0u8; 4];
    // A clean EOF before any length byte means the peer hung up politely.
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut len_buf[filled..])? {
            0 if filled == 0 => return Ok(None),
            0 => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "stream ended inside a frame header",
                ))
            }
            n => filled += n,
        }
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame length exceeds MAX_FRAME_LEN",
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(Bytes::from(payload)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_process_roundtrip_and_counters() {
        let (transport, endpoints) = InProcessTransport::pair(2);
        std::thread::scope(|scope| {
            for ep in endpoints {
                scope.spawn(move || {
                    while let Some(frame) = ep.recv() {
                        let mut reply = frame.to_vec();
                        reply.reverse();
                        if !ep.send(Bytes::from(reply)) {
                            break;
                        }
                    }
                });
            }
            transport.send(0, Bytes::from_static(b"abc")).unwrap();
            transport.send(1, Bytes::from_static(b"xy")).unwrap();
            assert_eq!(transport.recv(0).unwrap().as_ref(), b"cba");
            assert_eq!(transport.recv(1).unwrap().as_ref(), b"yx");
            assert_eq!(transport.counters().frames(), 4);
            assert_eq!(transport.counters().bytes(), 10);
            drop(transport);
        });
    }

    #[test]
    fn in_process_unknown_site_rejected() {
        let (transport, _endpoints) = InProcessTransport::pair(1);
        assert_eq!(
            transport.send(3, Bytes::new()),
            Err(TransportError::UnknownSite { site: 3 })
        );
    }

    #[test]
    fn in_process_closed_worker_detected() {
        let (transport, endpoints) = InProcessTransport::pair(1);
        drop(endpoints);
        assert_eq!(
            transport.send(0, Bytes::new()),
            Err(TransportError::Closed { site: 0 })
        );
        assert_eq!(transport.recv(0), Err(TransportError::Closed { site: 0 }));
    }

    #[test]
    fn frame_codec_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut cursor = io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap().as_ref(), b"hello");
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap().as_ref(), b"");
        assert!(read_frame(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn truncated_frame_errors() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        buf.truncate(buf.len() - 2);
        let mut cursor = io::Cursor::new(buf);
        assert!(read_frame(&mut cursor).is_err());
        // A torn header is also an error, not a clean EOF.
        let mut cursor = io::Cursor::new(vec![1u8, 0]);
        assert!(read_frame(&mut cursor).is_err());
    }

    #[test]
    fn oversized_length_prefix_rejected() {
        let mut buf = Vec::from(u32::MAX.to_le_bytes());
        buf.extend_from_slice(b"x");
        let mut cursor = io::Cursor::new(buf);
        assert!(read_frame(&mut cursor).is_err());
    }

    #[test]
    fn in_process_recv_deadline_times_out_cleanly() {
        let (transport, endpoints) = InProcessTransport::pair(1);
        // No worker is serving, so nothing ever arrives.
        let deadline = Instant::now() + Duration::from_millis(20);
        assert_eq!(
            transport.recv_deadline(0, deadline),
            Err(TransportError::TimedOut { site: 0 })
        );
        // The channel is untouched: a frame sent later is received fine.
        assert!(endpoints[0].send(Bytes::from_static(b"late")));
        assert_eq!(transport.recv(0).unwrap().as_ref(), b"late");
    }

    #[test]
    fn tcp_recv_deadline_times_out_then_recovers() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            // Stay silent past the first deadline, then answer.
            std::thread::sleep(Duration::from_millis(60));
            write_frame(&mut stream, b"eventually").unwrap();
            let _ = read_frame(&mut stream); // wait for coordinator close
        });
        let transport = TcpTransport::connect(&[addr]).unwrap();
        let deadline = Instant::now() + Duration::from_millis(10);
        assert_eq!(
            transport.recv_deadline(0, deadline),
            Err(TransportError::TimedOut { site: 0 })
        );
        // Timeout hit at a frame boundary, so a patient retry succeeds.
        let deadline = Instant::now() + Duration::from_secs(5);
        assert_eq!(
            transport.recv_deadline(0, deadline).unwrap().as_ref(),
            b"eventually"
        );
        drop(transport);
        server.join().unwrap();
    }

    #[test]
    fn tcp_reconnect_replaces_a_dead_connection() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            // First connection: accept and hang up immediately.
            let (stream, _) = listener.accept().unwrap();
            drop(stream);
            // Second connection: behave like an echo worker.
            let (mut stream, _) = listener.accept().unwrap();
            while let Some(frame) = read_frame(&mut stream).unwrap() {
                write_frame(&mut stream, &frame).unwrap();
            }
        });
        let transport = TcpTransport::connect(&[addr]).unwrap();
        assert_eq!(transport.recv(0), Err(TransportError::Closed { site: 0 }));
        transport.reconnect(0).unwrap();
        transport.send(0, Bytes::from_static(b"again")).unwrap();
        assert_eq!(transport.recv(0).unwrap().as_ref(), b"again");
        drop(transport);
        server.join().unwrap();
    }

    #[test]
    fn tcp_socket_read_timeout_surfaces_as_timed_out() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let _ = read_frame(&mut stream); // hold open, never reply
        });
        let transport = TcpTransport::connect(&[addr]).unwrap();
        transport
            .set_io_timeouts(
                Some(Duration::from_millis(20)),
                Some(Duration::from_secs(5)),
            )
            .unwrap();
        assert_eq!(transport.recv(0), Err(TransportError::TimedOut { site: 0 }));
        drop(transport);
        server.join().unwrap();
    }

    #[test]
    fn tcp_transport_roundtrip() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            while let Some(frame) = read_frame(&mut stream).unwrap() {
                let mut reply = frame.to_vec();
                reply.reverse();
                write_frame(&mut stream, &reply).unwrap();
            }
        });
        let transport = TcpTransport::connect(&[addr]).unwrap();
        transport.send(0, Bytes::from_static(b"ping")).unwrap();
        assert_eq!(transport.recv(0).unwrap().as_ref(), b"gnip");
        assert_eq!(transport.counters().bytes(), 8);
        drop(transport);
        server.join().unwrap();
    }
}
