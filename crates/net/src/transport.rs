//! Pluggable message transports between the coordinator and site workers.
//!
//! The engine speaks to its sites through the [`Transport`] trait: an
//! ordered, reliable, length-delimited frame channel per site. Two
//! backends are provided:
//!
//! * [`InProcessTransport`] — worker threads connected by channels. The
//!   default backend: deterministic, no sockets, but every frame is still
//!   a real serialized byte buffer, so shipment accounting is identical
//!   to a networked deployment.
//! * [`TcpTransport`] — length-prefixed frames over TCP sockets, one
//!   connection per site, as used by the `gstored-worker` binary.
//!
//! What a frame *means* is defined one layer up (`gstored_core::protocol`
//! encodes typed request/response envelopes); this module only moves
//! opaque bytes and counts them.

use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Mutex;

use bytes::Bytes;

/// Upper bound on a single frame's payload length (1 GiB). A length
/// prefix above this is treated as a corrupt stream rather than an
/// allocation request.
pub const MAX_FRAME_LEN: usize = 1 << 30;

/// A transport failure: the peer went away or the stream is corrupt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// The worker side of the channel/socket is closed.
    Closed {
        /// Site whose channel closed.
        site: usize,
    },
    /// The site index is outside `0..sites()`.
    UnknownSite {
        /// The offending site index.
        site: usize,
    },
    /// An I/O error from the underlying socket.
    Io(String),
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Closed { site } => {
                write!(f, "transport to site {site} is closed")
            }
            TransportError::UnknownSite { site } => write!(f, "no such site: {site}"),
            TransportError::Io(msg) => write!(f, "transport I/O error: {msg}"),
        }
    }
}

impl std::error::Error for TransportError {}

impl From<io::Error> for TransportError {
    fn from(e: io::Error) -> Self {
        TransportError::Io(e.to_string())
    }
}

/// Coordinator-side view of `k` site workers: an ordered, reliable frame
/// channel per site.
///
/// The engine's contract is FIFO pipelining per site: it may have
/// several request frames in flight to one site at a time (the
/// overlapped stage driver sends a site its next stage as soon as the
/// previous reply arrives, and may queue a short chain up front), and
/// the site answers every request in arrival order. Implementations
/// must therefore preserve per-site frame order in both directions but
/// need no reordering or windowing — `recv(site)` always yields the
/// reply to the oldest unanswered request. Sends to *different* sites
/// happen back to back, which is what gives the scatter stages their
/// parallelism; the `ReplyRouter` one layer up handles interleaving
/// *across* queries.
///
/// ```
/// use bytes::Bytes;
/// use gstored_net::transport::{InProcessTransport, Transport};
///
/// // One echo worker behind the in-process backend.
/// let (transport, endpoints) = InProcessTransport::pair(1);
/// std::thread::scope(|scope| {
///     for ep in endpoints {
///         scope.spawn(move || {
///             gstored_net::worker::serve_endpoint(ep, |frame| Some(frame))
///         });
///     }
///     transport.send(0, Bytes::from_static(b"ping")).unwrap();
///     assert_eq!(transport.recv(0).unwrap().as_ref(), b"ping");
///     drop(transport); // closes the channels; the worker loop ends
/// });
/// ```
pub trait Transport: Send + Sync {
    /// Number of sites behind this transport.
    fn sites(&self) -> usize;

    /// Ship one frame to `site`.
    fn send(&self, site: usize, frame: Bytes) -> Result<(), TransportError>;

    /// Block until `site`'s next frame arrives.
    fn recv(&self, site: usize) -> Result<Bytes, TransportError>;
}

/// Running totals of frames and bytes moved through a transport, in both
/// directions. Used by tests to assert that the engine's shipment metrics
/// equal what actually crossed the transport.
#[derive(Debug, Default)]
pub struct TransferCounters {
    frames: AtomicU64,
    bytes: AtomicU64,
}

impl TransferCounters {
    /// Total frames sent plus received.
    pub fn frames(&self) -> u64 {
        self.frames.load(Ordering::Relaxed)
    }

    /// Total payload bytes sent plus received (excluding the transport's
    /// own length prefixes — the quantity charged as data shipment).
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    pub(crate) fn record(&self, len: usize) {
        self.frames.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(len as u64, Ordering::Relaxed);
    }
}

/// The worker-side half of one in-process channel: frames from the
/// coordinator arrive via [`InProcessEndpoint::recv`], replies go back
/// via [`InProcessEndpoint::send`].
#[derive(Debug)]
pub struct InProcessEndpoint {
    rx: Receiver<Bytes>,
    tx: Sender<Bytes>,
}

impl InProcessEndpoint {
    /// Block for the next frame; `None` once the coordinator hung up.
    pub fn recv(&self) -> Option<Bytes> {
        self.rx.recv().ok()
    }

    /// Send a reply frame; `false` once the coordinator hung up.
    pub fn send(&self, frame: Bytes) -> bool {
        self.tx.send(frame).is_ok()
    }
}

/// Channel-backed transport: `k` worker endpoints, typically served by
/// scoped threads for the duration of one query. Dropping the transport
/// closes every channel, which ends the worker loops.
#[derive(Debug)]
pub struct InProcessTransport {
    to_workers: Vec<Sender<Bytes>>,
    from_workers: Vec<Mutex<Receiver<Bytes>>>,
    counters: TransferCounters,
}

impl InProcessTransport {
    /// Create the coordinator side plus one endpoint per site. Spawn a
    /// worker loop (see `gstored_net::worker::serve_endpoint`) on each
    /// endpoint before exercising the transport.
    pub fn pair(sites: usize) -> (InProcessTransport, Vec<InProcessEndpoint>) {
        assert!(sites > 0, "need at least one site");
        let mut to_workers = Vec::with_capacity(sites);
        let mut from_workers = Vec::with_capacity(sites);
        let mut endpoints = Vec::with_capacity(sites);
        for _ in 0..sites {
            let (req_tx, req_rx) = channel();
            let (resp_tx, resp_rx) = channel();
            to_workers.push(req_tx);
            from_workers.push(Mutex::new(resp_rx));
            endpoints.push(InProcessEndpoint {
                rx: req_rx,
                tx: resp_tx,
            });
        }
        (
            InProcessTransport {
                to_workers,
                from_workers,
                counters: TransferCounters::default(),
            },
            endpoints,
        )
    }

    /// Frame/byte totals moved through this transport so far.
    pub fn counters(&self) -> &TransferCounters {
        &self.counters
    }
}

impl Transport for InProcessTransport {
    fn sites(&self) -> usize {
        self.to_workers.len()
    }

    fn send(&self, site: usize, frame: Bytes) -> Result<(), TransportError> {
        let tx = self
            .to_workers
            .get(site)
            .ok_or(TransportError::UnknownSite { site })?;
        self.counters.record(frame.len());
        tx.send(frame).map_err(|_| TransportError::Closed { site })
    }

    fn recv(&self, site: usize) -> Result<Bytes, TransportError> {
        let rx = self
            .from_workers
            .get(site)
            .ok_or(TransportError::UnknownSite { site })?;
        let frame = rx
            .lock()
            .expect("transport receiver poisoned")
            .recv()
            .map_err(|_| TransportError::Closed { site })?;
        self.counters.record(frame.len());
        Ok(frame)
    }
}

/// TCP-backed transport: one socket per site, frames delimited by a
/// little-endian `u32` length prefix (see [`write_frame`]/[`read_frame`]).
#[derive(Debug)]
pub struct TcpTransport {
    streams: Vec<Mutex<TcpStream>>,
    counters: TransferCounters,
}

impl TcpTransport {
    /// Connect to one worker address per site, in site order.
    pub fn connect<A: ToSocketAddrs>(workers: &[A]) -> Result<TcpTransport, TransportError> {
        assert!(!workers.is_empty(), "need at least one site");
        let mut streams = Vec::with_capacity(workers.len());
        for addr in workers {
            let stream = TcpStream::connect(addr)?;
            stream.set_nodelay(true)?;
            streams.push(Mutex::new(stream));
        }
        Ok(TcpTransport {
            streams,
            counters: TransferCounters::default(),
        })
    }

    /// Frame/byte totals moved through this transport so far.
    pub fn counters(&self) -> &TransferCounters {
        &self.counters
    }
}

impl Transport for TcpTransport {
    fn sites(&self) -> usize {
        self.streams.len()
    }

    fn send(&self, site: usize, frame: Bytes) -> Result<(), TransportError> {
        let stream = self
            .streams
            .get(site)
            .ok_or(TransportError::UnknownSite { site })?;
        self.counters.record(frame.len());
        let mut stream = stream.lock().expect("transport stream poisoned");
        write_frame(&mut *stream, &frame)?;
        Ok(())
    }

    fn recv(&self, site: usize) -> Result<Bytes, TransportError> {
        let stream = self
            .streams
            .get(site)
            .ok_or(TransportError::UnknownSite { site })?;
        let mut stream = stream.lock().expect("transport stream poisoned");
        match read_frame(&mut *stream)? {
            Some(frame) => {
                self.counters.record(frame.len());
                Ok(frame)
            }
            None => Err(TransportError::Closed { site }),
        }
    }
}

/// Write one length-prefixed frame (`u32` little-endian length, then the
/// payload) and flush.
pub fn write_frame<W: Write>(w: &mut W, frame: &[u8]) -> io::Result<()> {
    assert!(frame.len() <= MAX_FRAME_LEN, "frame exceeds MAX_FRAME_LEN");
    w.write_all(&(frame.len() as u32).to_le_bytes())?;
    w.write_all(frame)?;
    w.flush()
}

/// Read one length-prefixed frame. Returns `None` on a clean end of
/// stream (the peer closed between frames); errors on a truncated frame
/// or an oversized length prefix.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<Bytes>> {
    let mut len_buf = [0u8; 4];
    // A clean EOF before any length byte means the peer hung up politely.
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut len_buf[filled..])? {
            0 if filled == 0 => return Ok(None),
            0 => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "stream ended inside a frame header",
                ))
            }
            n => filled += n,
        }
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame length exceeds MAX_FRAME_LEN",
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(Bytes::from(payload)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_process_roundtrip_and_counters() {
        let (transport, endpoints) = InProcessTransport::pair(2);
        std::thread::scope(|scope| {
            for ep in endpoints {
                scope.spawn(move || {
                    while let Some(frame) = ep.recv() {
                        let mut reply = frame.to_vec();
                        reply.reverse();
                        if !ep.send(Bytes::from(reply)) {
                            break;
                        }
                    }
                });
            }
            transport.send(0, Bytes::from_static(b"abc")).unwrap();
            transport.send(1, Bytes::from_static(b"xy")).unwrap();
            assert_eq!(transport.recv(0).unwrap().as_ref(), b"cba");
            assert_eq!(transport.recv(1).unwrap().as_ref(), b"yx");
            assert_eq!(transport.counters().frames(), 4);
            assert_eq!(transport.counters().bytes(), 10);
            drop(transport);
        });
    }

    #[test]
    fn in_process_unknown_site_rejected() {
        let (transport, _endpoints) = InProcessTransport::pair(1);
        assert_eq!(
            transport.send(3, Bytes::new()),
            Err(TransportError::UnknownSite { site: 3 })
        );
    }

    #[test]
    fn in_process_closed_worker_detected() {
        let (transport, endpoints) = InProcessTransport::pair(1);
        drop(endpoints);
        assert_eq!(
            transport.send(0, Bytes::new()),
            Err(TransportError::Closed { site: 0 })
        );
        assert_eq!(transport.recv(0), Err(TransportError::Closed { site: 0 }));
    }

    #[test]
    fn frame_codec_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut cursor = io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap().as_ref(), b"hello");
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap().as_ref(), b"");
        assert!(read_frame(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn truncated_frame_errors() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        buf.truncate(buf.len() - 2);
        let mut cursor = io::Cursor::new(buf);
        assert!(read_frame(&mut cursor).is_err());
        // A torn header is also an error, not a clean EOF.
        let mut cursor = io::Cursor::new(vec![1u8, 0]);
        assert!(read_frame(&mut cursor).is_err());
    }

    #[test]
    fn oversized_length_prefix_rejected() {
        let mut buf = Vec::from(u32::MAX.to_le_bytes());
        buf.extend_from_slice(b"x");
        let mut cursor = io::Cursor::new(buf);
        assert!(read_frame(&mut cursor).is_err());
    }

    #[test]
    fn tcp_transport_roundtrip() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            while let Some(frame) = read_frame(&mut stream).unwrap() {
                let mut reply = frame.to_vec();
                reply.reverse();
                write_frame(&mut stream, &reply).unwrap();
            }
        });
        let transport = TcpTransport::connect(&[addr]).unwrap();
        transport.send(0, Bytes::from_static(b"ping")).unwrap();
        assert_eq!(transport.recv(0).unwrap().as_ref(), b"gnip");
        assert_eq!(transport.counters().bytes(), 8);
        drop(transport);
        server.join().unwrap();
    }
}
