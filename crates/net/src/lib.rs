#![deny(missing_docs)]
//! # gstored-net
//!
//! The distributed runtime substrate. The paper runs on a 12-machine
//! MPICH cluster; this crate provides the message-passing layer the
//! engine drives its sites through, with **byte-accurate data-shipment
//! accounting** and an explicit network cost model, preserving exactly
//! what the experiments measure: per-stage response time (max over
//! parallel sites) and per-stage data shipment (bytes on the wire).
//!
//! * [`wire`] — a compact varint-based binary codec; every message the
//!   engine ships is encoded through it, so shipment numbers are real
//!   serialized sizes, not estimates.
//! * [`transport`] — the [`Transport`] trait plus its two blocking
//!   backends: [`InProcessTransport`] (threads + channels,
//!   deterministic) and [`TcpTransport`] (length-prefixed frames over
//!   sockets).
//! * [`reactor`] — [`ReactorTransport`], the epoll-multiplexed TCP
//!   backend: one coordinator I/O thread services every site socket
//!   through per-connection partial-frame state machines.
//! * [`paced`] — [`PacedTransport`], a link emulator that delays frames
//!   per a [`NetworkModel`] with honest pipelining (benchmarks only).
//! * [`chaos`] — [`ChaosTransport`], a fault injector that perturbs any
//!   backend with a deterministic seed-driven schedule of delays,
//!   drops, truncations, corruptions, disconnects, and hangs
//!   (robustness tests and benchmarks).
//! * [`worker`] — generic serve loops that drive a frame handler over
//!   either backend; the engine-specific handler lives in
//!   `gstored_core::worker`.
//! * [`metrics`] — stage timers and shipment meters.
//! * [`cluster`] — the [`NetworkModel`] cost model and the legacy
//!   scatter/gather executor still used by the baseline engines.

pub mod chaos;
pub mod cluster;
pub mod metrics;
pub mod paced;
pub mod reactor;
pub mod transport;
pub mod wire;
pub mod worker;

pub use chaos::{ChaosConfig, ChaosStats, ChaosTransport};
pub use cluster::{Cluster, NetworkModel};
pub use metrics::{QueryMetrics, StageMetrics};
pub use paced::PacedTransport;
pub use reactor::ReactorTransport;
pub use transport::{InProcessTransport, TcpTransport, Transport, TransportError};
pub use wire::{WireReader, WireWriter};
