//! # gstored-net
//!
//! The simulated distributed environment. The paper runs on a 12-machine
//! MPICH cluster; this crate substitutes threads + channels with **byte-
//! accurate data-shipment accounting** and an explicit network cost model,
//! preserving exactly what the experiments measure: per-stage response
//! time (max over parallel sites) and per-stage data shipment (bytes on
//! the wire). See DESIGN.md §3 for the substitution rationale.
//!
//! * [`wire`] — a compact varint-based binary codec; every message the
//!   engine ships is encoded through it, so shipment numbers are real
//!   serialized sizes, not estimates.
//! * [`metrics`] — stage timers and shipment meters.
//! * [`cluster`] — a scatter/gather executor: site work runs on real
//!   threads (parallel, like the paper's partial evaluation stage); the
//!   coordinator runs on the calling thread.

pub mod cluster;
pub mod metrics;
pub mod wire;

pub use cluster::{Cluster, NetworkModel};
pub use metrics::{QueryMetrics, StageMetrics};
pub use wire::{WireReader, WireWriter};
