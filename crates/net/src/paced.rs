//! Link emulation for benchmarks: a [`Transport`] wrapper that delays
//! frames according to a [`NetworkModel`], honestly pipelined.
//!
//! The engine's paced mode (`EngineConfig::pace_network`) sleeps on the
//! *caller's* thread per frame, which serializes sends and would mask
//! exactly the overlap the PR8 straggler benchmark needs to measure.
//! [`PacedTransport`] instead runs two relay threads per site — one per
//! direction — that stamp each frame with a due time and hold it until
//! then:
//!
//! ```text
//! due = max(link_busy_until, now) + len / bandwidth_for(site)
//!       + latency_for(site)
//! ```
//!
//! `link_busy_until` models the serialization of a shared link (frames
//! queue behind each other's transfer time), while the latency term
//! pipelines: two frames sent back to back each pay the link latency
//! *concurrently*, exactly like real sockets. A barriered stage driver
//! therefore pays ~2·latency per collection point, while an overlapped
//! driver pays ~2·latency per *phase* — the effect the straggler cell
//! quantifies.
//!
//! Teardown: dropping the transport stops the uplink relays and joins
//! them. The downlink relays block inside `inner.recv` and exit when the
//! inner transport errors — send workers a `Shutdown` frame (or drop
//! the inner endpoints) before expecting the process to wind down;
//! otherwise those threads are detached, which the benchmarks accept.
//!
//! This is benchmark/test instrumentation, not a production transport:
//! error handling favours simplicity (a failed relay surfaces as
//! `Closed`).

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use bytes::Bytes;

use crate::cluster::NetworkModel;
use crate::transport::{Transport, TransportError};

/// One direction of one site's link: frames stamped with due times.
#[derive(Debug, Default)]
struct Lane {
    queue: VecDeque<(Instant, Bytes)>,
    closed: bool,
}

#[derive(Debug)]
struct Link {
    lane: Mutex<Lane>,
    ready: Condvar,
    /// When the link's serialized capacity frees up next.
    busy_until: Mutex<Instant>,
}

impl Link {
    fn new() -> Link {
        Link {
            lane: Mutex::new(Lane::default()),
            ready: Condvar::new(),
            busy_until: Mutex::new(Instant::now()),
        }
    }

    /// Stamp `frame` with its delivery time on this link and enqueue it.
    fn push(&self, model: &NetworkModel, site: usize, frame: Bytes) {
        let transfer = transfer_only(model, site, frame.len());
        let latency = model.latency_for(site);
        let due = {
            let mut busy = self.busy_until.lock().expect("paced link poisoned");
            let start = (*busy).max(Instant::now());
            *busy = start + transfer;
            start + transfer + latency
        };
        let mut lane = self.lane.lock().expect("paced lane poisoned");
        lane.queue.push_back((due, frame));
        self.ready.notify_all();
    }

    fn close(&self) {
        let mut lane = self.lane.lock().expect("paced lane poisoned");
        lane.closed = true;
        self.ready.notify_all();
    }

    /// Block until the oldest frame is due (frames are FIFO per lane;
    /// due times are monotone because the busy-window only moves
    /// forward). `None` once closed and drained.
    fn pop_due(&self) -> Option<Bytes> {
        let mut lane = self.lane.lock().expect("paced lane poisoned");
        loop {
            if let Some((due, _)) = lane.queue.front() {
                let now = Instant::now();
                if *due <= now {
                    return lane.queue.pop_front().map(|(_, f)| f);
                }
                let wait = *due - now;
                let (next, _timeout) = self
                    .ready
                    .wait_timeout(lane, wait)
                    .expect("paced lane poisoned");
                lane = next;
            } else if lane.closed {
                return None;
            } else {
                lane = self.ready.wait(lane).expect("paced lane poisoned");
            }
        }
    }
}

/// Per-site transfer time excluding latency (the serialized component).
fn transfer_only(model: &NetworkModel, site: usize, len: usize) -> Duration {
    let bw = model.bandwidth_for(site);
    if bw == 0 || bw == u64::MAX {
        Duration::ZERO
    } else {
        Duration::from_secs_f64(len as f64 / bw as f64)
    }
}

/// [`Transport`] decorator that delays every frame per a
/// [`NetworkModel`], with per-site relay threads so latencies pipeline
/// instead of serializing on the caller. See the module docs.
pub struct PacedTransport {
    inner: Arc<dyn Transport>,
    model: Arc<NetworkModel>,
    /// Uplink staging lanes: `send` stamps into these, relays forward.
    up: Vec<Arc<Link>>,
    /// Downlink delivery lanes: relays stamp arrivals into these.
    down: Vec<Arc<Link>>,
    uplink_threads: Vec<std::thread::JoinHandle<()>>,
}

impl PacedTransport {
    /// Wrap `inner`, delaying frames per `model`. Spawns two relay
    /// threads per site.
    pub fn new(inner: impl Transport + 'static, model: NetworkModel) -> PacedTransport {
        let inner: Arc<dyn Transport> = Arc::new(inner);
        let sites = inner.sites();
        let model = Arc::new(model);
        let mut up = Vec::with_capacity(sites);
        let mut down = Vec::with_capacity(sites);
        let mut uplink_threads = Vec::with_capacity(sites);
        for site in 0..sites {
            let up_link = Arc::new(Link::new());
            let down_link = Arc::new(Link::new());
            // Uplink relay: waits out each frame's due time, then does
            // the real (instant) send.
            {
                let link = Arc::clone(&up_link);
                let inner = Arc::clone(&inner);
                uplink_threads.push(std::thread::spawn(move || {
                    while let Some(frame) = link.pop_due() {
                        if inner.send(site, frame).is_err() {
                            break;
                        }
                    }
                }));
            }
            // Downlink relay: pulls replies as they really arrive and
            // stamps their delivery time; exits (detached) when the
            // inner transport closes.
            {
                let link = Arc::clone(&down_link);
                let inner = Arc::clone(&inner);
                let model = Arc::clone(&model);
                std::thread::spawn(move || loop {
                    match inner.recv(site) {
                        Ok(frame) => link.push(&model, site, frame),
                        Err(_) => {
                            link.close();
                            break;
                        }
                    }
                });
            }
            up.push(up_link);
            down.push(down_link);
        }
        PacedTransport {
            inner,
            model,
            up,
            down,
            uplink_threads,
        }
    }

    /// The wrapped transport (e.g. to reach its counters).
    pub fn inner(&self) -> &dyn Transport {
        &*self.inner
    }
}

impl Transport for PacedTransport {
    fn sites(&self) -> usize {
        self.inner.sites()
    }

    fn send(&self, site: usize, frame: Bytes) -> Result<(), TransportError> {
        // Stamp at send time so the link-busy window reflects the order
        // frames were issued, then let the relay pace the real send.
        let link = self
            .up
            .get(site)
            .ok_or(TransportError::UnknownSite { site })?;
        link.push(&self.model, site, frame);
        Ok(())
    }

    fn recv(&self, site: usize) -> Result<Bytes, TransportError> {
        let link = self
            .down
            .get(site)
            .ok_or(TransportError::UnknownSite { site })?;
        link.pop_due().ok_or(TransportError::Closed { site })
    }
}

impl Drop for PacedTransport {
    fn drop(&mut self) {
        for link in &self.up {
            link.close();
        }
        for handle in self.uplink_threads.drain(..) {
            let _ = handle.join();
        }
        // Downlink relays exit when `inner` errors (worker shutdown /
        // socket close); they hold their own Arcs and are detached.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::InProcessTransport;
    use crate::worker::serve_endpoint;

    /// Echo fleet behind a paced link. Workers stop on an empty frame —
    /// the downlink relays keep the inner transport alive, so tests must
    /// tell the workers to exit (see the module docs on teardown) with
    /// [`stop_workers`] before joining them.
    fn paced_echo(
        sites: usize,
        model: NetworkModel,
    ) -> (PacedTransport, Vec<std::thread::JoinHandle<()>>) {
        let (inner, endpoints) = InProcessTransport::pair(sites);
        let workers = endpoints
            .into_iter()
            .map(|ep| {
                std::thread::spawn(move || {
                    serve_endpoint(ep, |f: Bytes| if f.is_empty() { None } else { Some(f) });
                })
            })
            .collect();
        (PacedTransport::new(inner, model), workers)
    }

    /// Send every worker its stop frame and join it.
    fn stop_workers(transport: PacedTransport, workers: Vec<std::thread::JoinHandle<()>>) {
        for site in 0..transport.sites() {
            transport.send(site, Bytes::new()).unwrap();
        }
        drop(transport); // joins the uplink relays, flushing the stops
        for w in workers {
            w.join().unwrap();
        }
    }

    #[test]
    fn roundtrip_through_paced_link() {
        let (transport, workers) = paced_echo(2, NetworkModel::instant());
        transport.send(0, Bytes::from_static(b"a")).unwrap();
        transport.send(1, Bytes::from_static(b"b")).unwrap();
        assert_eq!(transport.recv(0).unwrap().as_ref(), b"a");
        assert_eq!(transport.recv(1).unwrap().as_ref(), b"b");
        stop_workers(transport, workers);
    }

    #[test]
    fn latency_pipelines_across_back_to_back_frames() {
        // 30ms one-way latency, effectively infinite bandwidth. Two
        // frames sent back to back should complete the round trip in
        // ~60ms + epsilon (latencies overlap), not ~120ms (serialized).
        let model = NetworkModel::new(Duration::from_millis(30), u64::MAX);
        let (transport, workers) = paced_echo(1, model);
        let start = Instant::now();
        transport.send(0, Bytes::from_static(b"one")).unwrap();
        transport.send(0, Bytes::from_static(b"two")).unwrap();
        assert_eq!(transport.recv(0).unwrap().as_ref(), b"one");
        assert_eq!(transport.recv(0).unwrap().as_ref(), b"two");
        let elapsed = start.elapsed();
        assert!(
            elapsed >= Duration::from_millis(60),
            "too fast: {elapsed:?}"
        );
        assert!(
            elapsed < Duration::from_millis(110),
            "serialized: {elapsed:?}"
        );
        stop_workers(transport, workers);
    }

    #[test]
    fn per_site_skew_delays_only_the_straggler() {
        let model = NetworkModel::instant().with_site_latency(0, Duration::from_millis(50));
        let (transport, workers) = paced_echo(2, model);
        let start = Instant::now();
        transport.send(1, Bytes::from_static(b"fast")).unwrap();
        assert_eq!(transport.recv(1).unwrap().as_ref(), b"fast");
        let fast = start.elapsed();
        assert!(
            fast < Duration::from_millis(40),
            "fast site delayed: {fast:?}"
        );
        let start = Instant::now();
        transport.send(0, Bytes::from_static(b"slow")).unwrap();
        assert_eq!(transport.recv(0).unwrap().as_ref(), b"slow");
        let slow = start.elapsed();
        assert!(
            slow >= Duration::from_millis(100),
            "straggler not delayed: {slow:?}"
        );
        stop_workers(transport, workers);
    }
}
