//! Compact binary wire codec.
//!
//! Every inter-site message is serialized through this codec before its
//! size is charged to the data-shipment meters, so the shipment numbers
//! reported by the experiments are genuine serialized byte counts — the
//! quantity the paper's communication-cost analysis (Section IV-D) bounds.
//!
//! Format: LEB128-style varints for integers, length-prefixed byte slices,
//! no framing (framing is the transport's job).

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Append-only encoder.
#[derive(Debug, Default)]
pub struct WireWriter {
    buf: BytesMut,
}

impl WireWriter {
    /// A fresh, empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// A writer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        WireWriter {
            buf: BytesMut::with_capacity(cap),
        }
    }

    /// Write an unsigned varint (LEB128).
    pub fn u64(&mut self, mut v: u64) -> &mut Self {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.put_u8(byte);
                return self;
            }
            self.buf.put_u8(byte | 0x80);
        }
    }

    /// Write a usize as a varint.
    pub fn usize(&mut self, v: usize) -> &mut Self {
        self.u64(v as u64)
    }

    /// Write a bool as one byte.
    pub fn bool(&mut self, v: bool) -> &mut Self {
        self.buf.put_u8(v as u8);
        self
    }

    /// Write a fixed-width u64 (used for bit-vector words, where varint
    /// encoding would leak density information into the size).
    pub fn u64_fixed(&mut self, v: u64) -> &mut Self {
        self.buf.put_u64_le(v);
        self
    }

    /// Write a fixed-width little-endian u32 (used for query ids, where
    /// varint encoding would make frame lengths — and therefore the
    /// shipment metrics — depend on how many queries a session has run).
    pub fn u32_fixed(&mut self, v: u32) -> &mut Self {
        for b in v.to_le_bytes() {
            self.buf.put_u8(b);
        }
        self
    }

    /// Write an optional u64 (presence byte + varint).
    pub fn opt_u64(&mut self, v: Option<u64>) -> &mut Self {
        match v {
            Some(x) => {
                self.bool(true);
                self.u64(x)
            }
            None => self.bool(false),
        }
    }

    /// Write a length-prefixed byte slice.
    pub fn bytes(&mut self, b: &[u8]) -> &mut Self {
        self.usize(b.len());
        self.buf.put_slice(b);
        self
    }

    /// Write a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) -> &mut Self {
        self.bytes(s.as_bytes())
    }

    /// Current encoded size in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Finish and take the encoded bytes.
    pub fn finish(self) -> Bytes {
        self.buf.freeze()
    }
}

/// Decoder over an encoded buffer.
#[derive(Debug)]
pub struct WireReader {
    buf: Bytes,
}

/// Decoding error: ran out of bytes or hit a malformed value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError(pub &'static str);

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wire decode error: {}", self.0)
    }
}

impl std::error::Error for WireError {}

impl WireReader {
    /// Wrap encoded bytes.
    pub fn new(buf: Bytes) -> Self {
        WireReader { buf }
    }

    /// Read an unsigned varint.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            if !self.buf.has_remaining() {
                return Err(WireError("truncated varint"));
            }
            let byte = self.buf.get_u8();
            if shift >= 64 {
                return Err(WireError("varint overflow"));
            }
            v |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    /// Read a usize varint.
    pub fn usize(&mut self) -> Result<usize, WireError> {
        Ok(self.u64()? as usize)
    }

    /// Read a bool byte.
    pub fn bool(&mut self) -> Result<bool, WireError> {
        if !self.buf.has_remaining() {
            return Err(WireError("truncated bool"));
        }
        match self.buf.get_u8() {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError("invalid bool")),
        }
    }

    /// Read a fixed-width u64.
    pub fn u64_fixed(&mut self) -> Result<u64, WireError> {
        if self.buf.remaining() < 8 {
            return Err(WireError("truncated fixed u64"));
        }
        Ok(self.buf.get_u64_le())
    }

    /// Read a fixed-width little-endian u32.
    pub fn u32_fixed(&mut self) -> Result<u32, WireError> {
        if self.buf.remaining() < 4 {
            return Err(WireError("truncated fixed u32"));
        }
        let mut le = [0u8; 4];
        for b in &mut le {
            *b = self.buf.get_u8();
        }
        Ok(u32::from_le_bytes(le))
    }

    /// Read an optional u64.
    pub fn opt_u64(&mut self) -> Result<Option<u64>, WireError> {
        if self.bool()? {
            Ok(Some(self.u64()?))
        } else {
            Ok(None)
        }
    }

    /// Read a length-prefixed byte slice.
    pub fn bytes(&mut self) -> Result<Bytes, WireError> {
        let len = self.usize()?;
        if self.buf.remaining() < len {
            return Err(WireError("truncated bytes"));
        }
        Ok(self.buf.copy_to_bytes(len))
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, WireError> {
        let b = self.bytes()?;
        String::from_utf8(b.to_vec()).map_err(|_| WireError("invalid utf-8"))
    }

    /// Remaining unread bytes.
    pub fn remaining(&self) -> usize {
        self.buf.remaining()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrip_boundaries() {
        let values = [0u64, 1, 127, 128, 16383, 16384, u32::MAX as u64, u64::MAX];
        let mut w = WireWriter::new();
        for &v in &values {
            w.u64(v);
        }
        let mut r = WireReader::new(w.finish());
        for &v in &values {
            assert_eq!(r.u64().unwrap(), v);
        }
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn varint_sizes_are_minimal() {
        let size = |v: u64| {
            let mut w = WireWriter::new();
            w.u64(v);
            w.len()
        };
        assert_eq!(size(0), 1);
        assert_eq!(size(127), 1);
        assert_eq!(size(128), 2);
        assert_eq!(size(u64::MAX), 10);
    }

    #[test]
    fn mixed_payload_roundtrip() {
        let mut w = WireWriter::new();
        w.u64(42)
            .bool(true)
            .str("hello")
            .opt_u64(None)
            .opt_u64(Some(7))
            .u64_fixed(0xdead_beef);
        w.bytes(&[1, 2, 3]);
        let mut r = WireReader::new(w.finish());
        assert_eq!(r.u64().unwrap(), 42);
        assert!(r.bool().unwrap());
        assert_eq!(r.str().unwrap(), "hello");
        assert_eq!(r.opt_u64().unwrap(), None);
        assert_eq!(r.opt_u64().unwrap(), Some(7));
        assert_eq!(r.u64_fixed().unwrap(), 0xdead_beef);
        assert_eq!(r.bytes().unwrap().as_ref(), &[1, 2, 3]);
    }

    #[test]
    fn truncated_input_errors_cleanly() {
        let mut w = WireWriter::new();
        w.u64(300);
        let bytes = w.finish();
        let mut r = WireReader::new(bytes.slice(0..1));
        assert!(r.u64().is_err());

        let mut r2 = WireReader::new(Bytes::new());
        assert!(r2.bool().is_err());
        assert!(WireReader::new(Bytes::new()).u64_fixed().is_err());
    }

    #[test]
    fn invalid_bool_rejected() {
        let mut r = WireReader::new(Bytes::from_static(&[7]));
        assert!(r.bool().is_err());
    }

    #[test]
    fn overlong_varint_rejected() {
        // 11 continuation bytes exceed 64 bits.
        let raw = vec![0xffu8; 11];
        let mut r = WireReader::new(Bytes::from(raw));
        assert!(r.u64().is_err());
    }

    #[test]
    fn truncated_bytes_payload() {
        let mut w = WireWriter::new();
        w.usize(100); // claims 100 bytes, provides none
        let mut r = WireReader::new(w.finish());
        assert!(r.bytes().is_err());
    }

    #[test]
    fn string_utf8_validation() {
        let mut w = WireWriter::new();
        w.bytes(&[0xff, 0xfe]);
        let mut r = WireReader::new(w.finish());
        assert!(r.str().is_err());
    }
}
