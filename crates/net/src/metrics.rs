//! Per-stage timing and data-shipment accounting.
//!
//! The paper's Tables I–III report, per query: candidate-assembly time and
//! shipment, local-partial-match time, LEC-optimization time and shipment,
//! assembly time, totals, and intermediate/final counts. [`QueryMetrics`]
//! carries exactly those columns; [`StageMetrics`] is one row's cell group.

use std::time::{Duration, Instant};

/// Metrics of one named execution stage.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StageMetrics {
    /// Elapsed wall time attributed to the stage. For scatter stages this
    /// is the **maximum across sites** (they run in parallel), matching
    /// how a cluster's response time behaves.
    pub wall: Duration,
    /// Simulated network transfer time for the stage's shipments.
    pub network: Duration,
    /// Bytes shipped between sites and coordinator during the stage.
    pub bytes_shipped: u64,
    /// Number of messages exchanged.
    pub messages: u64,
}

impl StageMetrics {
    /// Merge another stage's numbers into this one (sequential stages add
    /// their times; shipments accumulate).
    pub fn absorb(&mut self, other: &StageMetrics) {
        self.wall += other.wall;
        self.network += other.network;
        self.bytes_shipped += other.bytes_shipped;
        self.messages += other.messages;
    }

    /// Stage response time: computation plus simulated transfer.
    pub fn response_time(&self) -> Duration {
        self.wall + self.network
    }

    /// Time a coordinator-side computation into this stage's wall clock.
    pub fn time<T>(&mut self, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.wall += start.elapsed();
        out
    }

    /// Shipment in KiB (the unit of the paper's tables).
    pub fn shipped_kib(&self) -> f64 {
        self.bytes_shipped as f64 / 1024.0
    }
}

/// Full per-query metrics: one row of the paper's Tables I–III.
#[derive(Debug, Clone, Default)]
pub struct QueryMetrics {
    /// Section VI: assembling variables' internal candidates.
    pub candidates: StageMetrics,
    /// Computing local partial matches at the sites.
    pub partial_evaluation: StageMetrics,
    /// LEC feature computation + shipment + coordinator-side pruning join.
    pub lec_optimization: StageMetrics,
    /// LEC feature-based assembly of surviving local partial matches
    /// (includes shipping the surviving LPMs to the coordinator).
    pub assembly: StageMetrics,
    /// Number of local partial matches produced across all sites.
    pub local_partial_matches: u64,
    /// Number of local partial matches surviving LEC pruning.
    pub surviving_partial_matches: u64,
    /// Number of LEC features across all sites.
    pub lec_features: u64,
    /// Number of crossing (inter-fragment) matches.
    pub crossing_matches: u64,
    /// Number of intra-fragment matches.
    pub local_matches: u64,
}

impl QueryMetrics {
    /// Total response time across all stages.
    pub fn total_time(&self) -> Duration {
        self.candidates.response_time()
            + self.partial_evaluation.response_time()
            + self.lec_optimization.response_time()
            + self.assembly.response_time()
    }

    /// Total simulated network time across all stages (deterministic,
    /// unlike the wall component of [`QueryMetrics::total_time`]).
    pub fn total_network(&self) -> Duration {
        self.candidates.network
            + self.partial_evaluation.network
            + self.lec_optimization.network
            + self.assembly.network
    }

    /// Total bytes shipped across all stages.
    pub fn total_shipped(&self) -> u64 {
        self.candidates.bytes_shipped
            + self.partial_evaluation.bytes_shipped
            + self.lec_optimization.bytes_shipped
            + self.assembly.bytes_shipped
    }

    /// Total number of final matches.
    pub fn total_matches(&self) -> u64 {
        self.crossing_matches + self.local_matches
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_accumulates() {
        let mut a = StageMetrics {
            wall: Duration::from_millis(5),
            network: Duration::from_millis(1),
            bytes_shipped: 100,
            messages: 2,
        };
        let b = StageMetrics {
            wall: Duration::from_millis(3),
            network: Duration::from_millis(2),
            bytes_shipped: 50,
            messages: 1,
        };
        a.absorb(&b);
        assert_eq!(a.wall, Duration::from_millis(8));
        assert_eq!(a.network, Duration::from_millis(3));
        assert_eq!(a.bytes_shipped, 150);
        assert_eq!(a.messages, 3);
    }

    #[test]
    fn response_time_includes_network() {
        let s = StageMetrics {
            wall: Duration::from_millis(5),
            network: Duration::from_millis(2),
            ..Default::default()
        };
        assert_eq!(s.response_time(), Duration::from_millis(7));
    }

    #[test]
    fn kib_conversion() {
        let s = StageMetrics {
            bytes_shipped: 2048,
            ..Default::default()
        };
        assert!((s.shipped_kib() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn query_totals_sum_stages() {
        let mut m = QueryMetrics::default();
        m.candidates.bytes_shipped = 10;
        m.assembly.bytes_shipped = 20;
        m.candidates.wall = Duration::from_millis(1);
        m.assembly.wall = Duration::from_millis(2);
        m.local_matches = 3;
        m.crossing_matches = 4;
        assert_eq!(m.total_shipped(), 30);
        assert_eq!(m.total_time(), Duration::from_millis(3));
        assert_eq!(m.total_matches(), 7);
    }
}
