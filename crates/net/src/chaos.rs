//! Fault injection for robustness tests: a [`Transport`] wrapper that
//! perturbs traffic according to a deterministic, seed-driven schedule.
//!
//! [`ChaosTransport`] composes over any backend and injects the failure
//! modes the coordinator's recovery layer must survive:
//!
//! * **Delay** — a frame is held for a bounded duration before moving,
//!   modelling a slow link or a GC-paused worker.
//! * **Drop** — an outgoing request frame silently vanishes; the reply
//!   that will never come surfaces as a receive timeout upstream.
//! * **Truncate / corrupt** — an incoming reply frame is cut short or
//!   has its envelope tag flipped, so the coordinator's decoder fails
//!   with a typed protocol error. Corruption targets the tag byte
//!   because the wire format carries no checksum: *detectable*
//!   corruption is the contract under test, silent payload damage is
//!   out of scope.
//! * **Disconnect** — the site becomes sticky-closed mid-stage: every
//!   later send and receive fails with `Closed`, exactly like a worker
//!   process dying.
//! * **Hang** — the site goes silent without closing: sends are
//!   swallowed, receives block until their deadline. This is the
//!   failure mode that motivates deadlines everywhere — without them
//!   a hung site wedges the coordinator forever.
//!
//! Whether frame *n* to/from site *s* draws a fault is a pure function
//! of `(seed, site, direction, n)` — no clock, no global RNG — so a
//! fault script is reproducible across runs and thread interleavings
//! as long as each site sees the same frame sequence. Faults are drawn
//! only while the transport is [enabled](ChaosTransport::set_enabled);
//! disabling it mid-test turns the wrapper into a pass-through, which
//! is how recovery tests verify a repaired fleet and how benchmarks
//! measure the happy-path overhead of the robustness layer.
//!
//! Simulated disconnects and hangs are repaired by
//! [`Transport::reconnect`], which clears the wrapper's own down-state
//! and — only if the inner connection itself failed — re-dials through
//! the inner transport. The [`ChaosStats`] counters record every
//! injected fault so tests can assert a schedule actually fired.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use bytes::Bytes;

use crate::transport::{Transport, TransportError};

/// Probabilities (in permille, 0..=1000) and parameters of the fault
/// schedule. All-zero probabilities (the default) inject nothing.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Seed for the deterministic per-frame fault draw.
    pub seed: u64,
    /// ‰ of frames (both directions) held for up to `max_delay`.
    pub delay_per_mille: u32,
    /// ‰ of outgoing frames silently dropped.
    pub drop_per_mille: u32,
    /// ‰ of incoming frames truncated to half their length.
    pub truncate_per_mille: u32,
    /// ‰ of incoming frames with the envelope tag byte flipped.
    pub corrupt_per_mille: u32,
    /// ‰ of outgoing frames that kill the connection (sticky).
    pub disconnect_per_mille: u32,
    /// ‰ of outgoing frames that wedge the site silently (sticky).
    pub hang_per_mille: u32,
    /// Upper bound on an injected delay.
    pub max_delay: Duration,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 0,
            delay_per_mille: 0,
            drop_per_mille: 0,
            truncate_per_mille: 0,
            corrupt_per_mille: 0,
            disconnect_per_mille: 0,
            hang_per_mille: 0,
            max_delay: Duration::from_millis(20),
        }
    }
}

impl ChaosConfig {
    /// A schedule with every fault class enabled at `per_mille` each,
    /// drawn from `seed` — the workhorse for proptest fault scripts.
    pub fn uniform(seed: u64, per_mille: u32) -> ChaosConfig {
        ChaosConfig {
            seed,
            delay_per_mille: per_mille,
            drop_per_mille: per_mille,
            truncate_per_mille: per_mille,
            corrupt_per_mille: per_mille,
            disconnect_per_mille: per_mille,
            hang_per_mille: per_mille,
            ..ChaosConfig::default()
        }
    }
}

/// Counts of faults actually injected, by class. Monotone; read with
/// [`ChaosTransport::stats`].
#[derive(Debug, Default)]
pub struct ChaosStats {
    delays: AtomicU64,
    drops: AtomicU64,
    truncates: AtomicU64,
    corrupts: AtomicU64,
    disconnects: AtomicU64,
    hangs: AtomicU64,
}

impl ChaosStats {
    /// Injected delays so far.
    pub fn delays(&self) -> u64 {
        self.delays.load(Ordering::Relaxed)
    }

    /// Dropped outgoing frames so far.
    pub fn drops(&self) -> u64 {
        self.drops.load(Ordering::Relaxed)
    }

    /// Truncated incoming frames so far.
    pub fn truncates(&self) -> u64 {
        self.truncates.load(Ordering::Relaxed)
    }

    /// Corrupted incoming frames so far.
    pub fn corrupts(&self) -> u64 {
        self.corrupts.load(Ordering::Relaxed)
    }

    /// Injected disconnects so far.
    pub fn disconnects(&self) -> u64 {
        self.disconnects.load(Ordering::Relaxed)
    }

    /// Injected hangs so far.
    pub fn hangs(&self) -> u64 {
        self.hangs.load(Ordering::Relaxed)
    }

    /// Total faults of every class.
    pub fn total(&self) -> u64 {
        self.delays()
            + self.drops()
            + self.truncates()
            + self.corrupts()
            + self.disconnects()
            + self.hangs()
    }
}

/// Sticky per-site condition injected by the schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Down {
    /// Healthy: traffic flows (modulo per-frame faults).
    Up,
    /// Connection killed: sends and receives fail with `Closed`.
    Disconnected,
    /// Silent wedge: sends are swallowed, receives block.
    Hung,
}

/// Per-site chaos state: frame sequence numbers (the deterministic
/// draw's input) plus the sticky down condition.
#[derive(Debug)]
struct SiteChaos {
    send_seq: AtomicU64,
    recv_seq: AtomicU64,
    down: Mutex<Down>,
    /// Signalled when `down` changes, so hung receivers can re-check.
    revived: Condvar,
}

/// The fault classes a single frame can draw.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Fault {
    None,
    Delay,
    Drop,
    Truncate,
    Corrupt,
    Disconnect,
    Hang,
}

/// SplitMix64 finalizer: the deterministic per-frame hash.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// [`Transport`] decorator injecting seed-deterministic faults; see the
/// module docs for the fault model.
pub struct ChaosTransport {
    inner: Arc<dyn Transport>,
    config: ChaosConfig,
    enabled: AtomicBool,
    sites: Vec<SiteChaos>,
    stats: ChaosStats,
}

impl ChaosTransport {
    /// Wrap `inner` with the fault schedule in `config` (enabled).
    pub fn new(inner: impl Transport + 'static, config: ChaosConfig) -> ChaosTransport {
        let inner: Arc<dyn Transport> = Arc::new(inner);
        Self::over(inner, config)
    }

    /// Wrap an already-shared transport.
    pub fn over(inner: Arc<dyn Transport>, config: ChaosConfig) -> ChaosTransport {
        let sites = (0..inner.sites())
            .map(|_| SiteChaos {
                send_seq: AtomicU64::new(0),
                recv_seq: AtomicU64::new(0),
                down: Mutex::new(Down::Up),
                revived: Condvar::new(),
            })
            .collect();
        ChaosTransport {
            inner,
            config,
            enabled: AtomicBool::new(true),
            sites,
            stats: ChaosStats::default(),
        }
    }

    /// Turn fault injection on or off. Off means pure pass-through for
    /// *new* faults; sticky conditions already injected persist until
    /// [`Transport::reconnect`] repairs the site.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::SeqCst);
    }

    /// Whether faults are currently being injected.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::SeqCst)
    }

    /// Counters of faults injected so far.
    pub fn stats(&self) -> &ChaosStats {
        &self.stats
    }

    /// The wrapped transport.
    pub fn inner(&self) -> &dyn Transport {
        &*self.inner
    }

    /// Deterministic fault draw for frame `seq` in direction `dir`
    /// (0 = send, 1 = recv) to/from `site`.
    fn draw(&self, site: usize, dir: u64, seq: u64) -> Fault {
        if !self.is_enabled() {
            return Fault::None;
        }
        let h = mix(self.config.seed ^ mix(((site as u64) << 1) | dir) ^ mix(seq));
        let roll = (h % 1000) as u32;
        let c = &self.config;
        // Only send-side classes on sends, recv-side classes on recvs;
        // delay applies to both. Thresholds stack in a fixed order.
        let mut acc = 0;
        if dir == 0 {
            for (p, fault) in [
                (c.drop_per_mille, Fault::Drop),
                (c.disconnect_per_mille, Fault::Disconnect),
                (c.hang_per_mille, Fault::Hang),
                (c.delay_per_mille, Fault::Delay),
            ] {
                acc += p;
                if roll < acc {
                    return fault;
                }
            }
        } else {
            for (p, fault) in [
                (c.truncate_per_mille, Fault::Truncate),
                (c.corrupt_per_mille, Fault::Corrupt),
                (c.delay_per_mille, Fault::Delay),
            ] {
                acc += p;
                if roll < acc {
                    return fault;
                }
            }
        }
        Fault::None
    }

    /// A deterministic sub-`max_delay` duration for frame `seq`.
    fn delay_for(&self, site: usize, seq: u64) -> Duration {
        let h = mix(self.config.seed ^ mix(site as u64) ^ seq);
        let micros = self.config.max_delay.as_micros().max(1) as u64;
        Duration::from_micros(h % micros)
    }
}

impl std::fmt::Debug for ChaosTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChaosTransport")
            .field("config", &self.config)
            .field("enabled", &self.is_enabled())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl Transport for ChaosTransport {
    fn sites(&self) -> usize {
        self.inner.sites()
    }

    fn send(&self, site: usize, frame: Bytes) -> Result<(), TransportError> {
        let chaos = self
            .sites
            .get(site)
            .ok_or(TransportError::UnknownSite { site })?;
        match *chaos.down.lock().expect("chaos state poisoned") {
            Down::Disconnected => return Err(TransportError::Closed { site }),
            // A hung site swallows traffic without erroring — the
            // caller only learns from the reply that never arrives.
            Down::Hung => return Ok(()),
            Down::Up => {}
        }
        let seq = chaos.send_seq.fetch_add(1, Ordering::Relaxed);
        match self.draw(site, 0, seq) {
            Fault::Drop => {
                self.stats.drops.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Fault::Disconnect => {
                self.stats.disconnects.fetch_add(1, Ordering::Relaxed);
                *chaos.down.lock().expect("chaos state poisoned") = Down::Disconnected;
                chaos.revived.notify_all();
                Err(TransportError::Closed { site })
            }
            Fault::Hang => {
                self.stats.hangs.fetch_add(1, Ordering::Relaxed);
                *chaos.down.lock().expect("chaos state poisoned") = Down::Hung;
                chaos.revived.notify_all();
                Ok(())
            }
            Fault::Delay => {
                self.stats.delays.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(self.delay_for(site, seq));
                self.inner.send(site, frame)
            }
            _ => self.inner.send(site, frame),
        }
    }

    fn recv(&self, site: usize) -> Result<Bytes, TransportError> {
        // Far-future deadline: identical logic, effectively no timeout.
        self.recv_deadline(site, Instant::now() + Duration::from_secs(86_400))
    }

    fn recv_deadline(&self, site: usize, deadline: Instant) -> Result<Bytes, TransportError> {
        let chaos = self
            .sites
            .get(site)
            .ok_or(TransportError::UnknownSite { site })?;
        loop {
            {
                let mut down = chaos.down.lock().expect("chaos state poisoned");
                loop {
                    match *down {
                        Down::Disconnected => return Err(TransportError::Closed { site }),
                        Down::Up => break,
                        Down::Hung => {
                            let remaining = deadline.saturating_duration_since(Instant::now());
                            if remaining.is_zero() {
                                return Err(TransportError::TimedOut { site });
                            }
                            let (next, _) = chaos
                                .revived
                                .wait_timeout(down, remaining)
                                .expect("chaos state poisoned");
                            down = next;
                        }
                    }
                }
            }
            let frame = self.inner.recv_deadline(site, deadline)?;
            let seq = chaos.recv_seq.fetch_add(1, Ordering::Relaxed);
            match self.draw(site, 1, seq) {
                Fault::Truncate => {
                    self.stats.truncates.fetch_add(1, Ordering::Relaxed);
                    return Ok(frame.slice(0..frame.len() / 2));
                }
                Fault::Corrupt => {
                    self.stats.corrupts.fetch_add(1, Ordering::Relaxed);
                    let mut bytes = frame.to_vec();
                    match bytes.first_mut() {
                        // Flip high bits of the envelope tag: decodes
                        // to an unknown tag, never silently to other
                        // valid data.
                        Some(b) => *b ^= 0xE0,
                        None => continue, // empty frame: nothing to flip
                    }
                    return Ok(Bytes::from(bytes));
                }
                Fault::Delay => {
                    self.stats.delays.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(self.delay_for(site, seq));
                    return Ok(frame);
                }
                _ => return Ok(frame),
            }
        }
    }

    fn reconnect(&self, site: usize) -> Result<(), TransportError> {
        let chaos = self
            .sites
            .get(site)
            .ok_or(TransportError::UnknownSite { site })?;
        let was = {
            let mut down = chaos.down.lock().expect("chaos state poisoned");
            let was = *down;
            *down = Down::Up;
            was
        };
        chaos.revived.notify_all();
        // A simulated condition lives entirely in this wrapper — the
        // inner link never failed, so don't re-dial it. Only a genuine
        // inner failure (e.g. the real worker process died) needs the
        // backend's reconnect — and only when the backend supports one
        // (the in-process transport cannot fail and cannot re-dial, so
        // clearing the wrapper state is the whole repair).
        if was != Down::Up || !self.inner.can_reconnect() {
            return Ok(());
        }
        self.inner.reconnect(site)
    }

    fn can_reconnect(&self) -> bool {
        // Simulated faults are always clearable, whatever the backend.
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::InProcessTransport;
    use crate::worker::serve_endpoint;

    /// Echo fleet behind a chaos wrapper; workers stop on empty frames.
    fn chaos_echo(
        sites: usize,
        config: ChaosConfig,
    ) -> (ChaosTransport, Vec<std::thread::JoinHandle<()>>) {
        let (inner, endpoints) = InProcessTransport::pair(sites);
        let workers = endpoints
            .into_iter()
            .map(|ep| {
                std::thread::spawn(move || {
                    serve_endpoint(ep, |f: Bytes| if f.is_empty() { None } else { Some(f) });
                })
            })
            .collect();
        (ChaosTransport::new(inner, config), workers)
    }

    fn stop_workers(transport: ChaosTransport, workers: Vec<std::thread::JoinHandle<()>>) {
        transport.set_enabled(false);
        for site in 0..transport.sites() {
            // Repair any sticky condition so the stop frame gets through.
            let _ = transport.reconnect(site);
            transport.send(site, Bytes::new()).unwrap();
        }
        drop(transport);
        for w in workers {
            w.join().unwrap();
        }
    }

    #[test]
    fn no_faults_is_a_pass_through() {
        let (transport, workers) = chaos_echo(2, ChaosConfig::default());
        transport.send(0, Bytes::from_static(b"a")).unwrap();
        transport.send(1, Bytes::from_static(b"b")).unwrap();
        assert_eq!(transport.recv(0).unwrap().as_ref(), b"a");
        assert_eq!(transport.recv(1).unwrap().as_ref(), b"b");
        assert_eq!(transport.stats().total(), 0);
        stop_workers(transport, workers);
    }

    #[test]
    fn schedules_are_deterministic_in_the_seed() {
        // Same seed → identical fault sequence; different seed → (for
        // this config) a different one.
        let outcomes = |seed: u64| -> Vec<bool> {
            let (transport, workers) = chaos_echo(1, ChaosConfig::uniform(seed, 120));
            let mut got = Vec::new();
            for i in 0..40u32 {
                let sent = transport.send(0, Bytes::from(i.to_le_bytes().to_vec()));
                if sent.is_err() {
                    // Disconnected: repair and carry on scripting.
                    transport.reconnect(0).unwrap();
                }
                got.push(sent.is_ok());
            }
            stop_workers(transport, workers);
            got
        };
        assert_eq!(outcomes(7), outcomes(7));
        assert_ne!(outcomes(7), outcomes(8));
    }

    #[test]
    fn hang_blocks_until_deadline_and_reconnect_revives() {
        let config = ChaosConfig {
            seed: 1,
            hang_per_mille: 1000, // first send hangs the site
            ..ChaosConfig::default()
        };
        let (transport, workers) = chaos_echo(1, config);
        transport.send(0, Bytes::from_static(b"x")).unwrap();
        assert_eq!(transport.stats().hangs(), 1);
        let start = Instant::now();
        let deadline = start + Duration::from_millis(30);
        assert_eq!(
            transport.recv_deadline(0, deadline),
            Err(TransportError::TimedOut { site: 0 })
        );
        assert!(start.elapsed() >= Duration::from_millis(30));
        // Repair: the site answers again (the hung frame was swallowed).
        transport.reconnect(0).unwrap();
        transport.set_enabled(false);
        transport.send(0, Bytes::from_static(b"y")).unwrap();
        assert_eq!(transport.recv(0).unwrap().as_ref(), b"y");
        stop_workers(transport, workers);
    }

    #[test]
    fn disconnect_is_sticky_until_reconnect() {
        let config = ChaosConfig {
            seed: 1,
            disconnect_per_mille: 1000,
            ..ChaosConfig::default()
        };
        let (transport, workers) = chaos_echo(1, config);
        assert_eq!(
            transport.send(0, Bytes::from_static(b"x")),
            Err(TransportError::Closed { site: 0 })
        );
        assert_eq!(transport.recv(0), Err(TransportError::Closed { site: 0 }));
        transport.set_enabled(false);
        transport.reconnect(0).unwrap();
        transport.send(0, Bytes::from_static(b"y")).unwrap();
        assert_eq!(transport.recv(0).unwrap().as_ref(), b"y");
        stop_workers(transport, workers);
    }

    #[test]
    fn truncate_and_corrupt_mangle_replies_detectably() {
        let config = ChaosConfig {
            seed: 3,
            truncate_per_mille: 500,
            corrupt_per_mille: 500, // every reply is mangled one way
            ..ChaosConfig::default()
        };
        let (transport, workers) = chaos_echo(1, config);
        for i in 0..20u32 {
            let payload = Bytes::from(vec![0x01; 8 + i as usize]);
            transport.send(0, payload.clone()).unwrap();
            let got = transport.recv(0).unwrap();
            assert_ne!(got, payload, "frame {i} should have been mangled");
        }
        assert_eq!(
            transport.stats().truncates() + transport.stats().corrupts(),
            20
        );
        stop_workers(transport, workers);
    }

    #[test]
    fn dropped_sends_surface_as_recv_timeouts() {
        let config = ChaosConfig {
            seed: 5,
            drop_per_mille: 1000,
            ..ChaosConfig::default()
        };
        let (transport, workers) = chaos_echo(1, config);
        transport.send(0, Bytes::from_static(b"gone")).unwrap();
        assert_eq!(transport.stats().drops(), 1);
        assert_eq!(
            transport.recv_deadline(0, Instant::now() + Duration::from_millis(20)),
            Err(TransportError::TimedOut { site: 0 })
        );
        stop_workers(transport, workers);
    }
}
