//! Readiness-driven TCP transport: one I/O thread for the whole fleet.
//!
//! [`TcpTransport`](crate::transport::TcpTransport) performs blocking
//! reads and writes under a per-site mutex, so a coordinator that wants
//! to overlap work across `k` sites needs `k` threads parked in
//! `read()`. [`ReactorTransport`] replaces that with a single event
//! loop: every site socket is non-blocking and registered with an
//! epoll-backed [`polling::Poller`]; one I/O thread multiplexes all
//! reads and writes, maintaining a per-connection partial-frame state
//! machine in each direction. Coordinator threads interact only with
//! in-memory queues:
//!
//! * [`ReactorTransport::send`] appends the frame to the site's outbox
//!   and wakes the poller; the I/O thread drains the outbox whenever the
//!   socket is writable, registering write interest only while bytes
//!   remain queued.
//! * [`ReactorTransport::recv`] blocks on a condvar until the I/O thread
//!   has reassembled the site's next complete frame (or the site
//!   failed).
//!
//! The wire format is identical to `TcpTransport` — little-endian `u32`
//! length prefix, payload, [`MAX_FRAME_LEN`] cap — so `gstored-worker`
//! processes cannot tell which coordinator transport they are talking
//! to. A length prefix above the cap fails the connection *before* any
//! allocation, so a hostile peer cannot trigger an unbounded buffer.
//!
//! Thread-count contract: exactly one I/O thread regardless of fleet
//! size ([`ReactorTransport::io_threads`] returns the constant; the PR8
//! benchmark asserts it stays flat as sites sweep 4→32).
//!
//! Lock discipline: a site's outbox (`tx`) and inbox (`rx`) mutexes are
//! never held together, and where the stream mutex nests with either it
//! is always taken first (the I/O loop holds the stream while filling a
//! queue). Failure propagation (`fail_site`) and reconnection take each
//! lock strictly one at a time.
//!
//! Failed sites are repairable: [`Transport::reconnect`] re-dials the
//! stored worker address, registers the fresh socket with the poller,
//! and clears the sticky failure, after which sends and receives flow
//! again — the coordinator re-installs the site's fragment before
//! reusing it.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use bytes::Bytes;
use polling::{Event, Events, Poller};

use crate::transport::{TransferCounters, Transport, TransportError, MAX_FRAME_LEN};

/// Outbound side of one site connection: frames queued by `send`, plus
/// the write cursor of the frame currently on the wire.
#[derive(Debug, Default)]
struct Outbox {
    /// Frames not yet fully written, oldest first. The front frame may
    /// be partially written (see `header`/`pos`).
    queue: VecDeque<Bytes>,
    /// Length prefix of the front frame, filled when it becomes front.
    header: [u8; 4],
    /// Bytes of header+payload already written for the front frame
    /// (0..4 = inside the header, 4.. = inside the payload).
    pos: usize,
    /// Whether the front frame's header has been staged into `header`.
    staged: bool,
    /// Whether write interest is currently registered with the poller.
    want_write: bool,
}

/// Inbound side of one site connection: the read-side frame state
/// machine plus completed frames awaiting `recv`.
#[derive(Debug, Default)]
struct Inbox {
    /// Fully reassembled frames, oldest first.
    frames: VecDeque<Bytes>,
    /// Set once the connection failed; every pending and future `recv`
    /// returns a clone of this error.
    failed: Option<TransportError>,
    /// Partial length prefix.
    header: [u8; 4],
    /// Bytes of the length prefix received so far.
    header_filled: usize,
    /// Payload buffer, allocated once the (validated) prefix completes.
    payload: Vec<u8>,
    /// Bytes of the payload received so far.
    payload_filled: usize,
    /// Whether we are mid-payload (false = reading the prefix).
    in_payload: bool,
}

/// One site connection: the socket plus its two directional queues.
///
/// The stream sits behind its own mutex so [`Transport::reconnect`]
/// can swap in a fresh socket. Lock order where locks nest: `stream`
/// before `tx` or `rx` (the I/O loop holds `stream` while it fills a
/// queue); no path takes `tx` and `rx` together.
#[derive(Debug)]
struct SiteState {
    stream: Mutex<TcpStream>,
    /// The worker's address, kept for re-dialing on repair.
    addr: SocketAddr,
    tx: Mutex<Outbox>,
    rx: Mutex<Inbox>,
    /// Signalled when `rx.frames` grows or `rx.failed` is set.
    rx_ready: Condvar,
}

#[derive(Debug)]
struct Shared {
    poller: Poller,
    sites: Vec<SiteState>,
    counters: TransferCounters,
    shutdown: AtomicBool,
}

/// Epoll-multiplexed TCP transport: all site sockets serviced by one
/// I/O thread; see the module docs for the design.
#[derive(Debug)]
pub struct ReactorTransport {
    shared: Arc<Shared>,
    io_thread: Option<std::thread::JoinHandle<()>>,
}

impl ReactorTransport {
    /// Connect to one worker address per site, in site order, and start
    /// the I/O thread. Every socket gets `TCP_NODELAY` (stage requests
    /// are small; Nagle would add delays per frame) and is switched to
    /// non-blocking mode.
    pub fn connect<A: ToSocketAddrs>(workers: &[A]) -> Result<ReactorTransport, TransportError> {
        assert!(!workers.is_empty(), "need at least one site");
        let poller = Poller::new()?;
        let mut sites = Vec::with_capacity(workers.len());
        for (site, addr) in workers.iter().enumerate() {
            let dial = |e: String| TransportError::Connect { site, detail: e };
            let resolved = addr
                .to_socket_addrs()
                .map_err(|e| dial(e.to_string()))?
                .next()
                .ok_or_else(|| dial("address resolved to nothing".into()))?;
            let stream = TcpStream::connect(resolved).map_err(|e| dial(e.to_string()))?;
            stream.set_nodelay(true)?;
            stream.set_nonblocking(true)?;
            poller.add(&stream, Event::readable(site))?;
            sites.push(SiteState {
                stream: Mutex::new(stream),
                addr: resolved,
                tx: Mutex::new(Outbox::default()),
                rx: Mutex::new(Inbox::default()),
                rx_ready: Condvar::new(),
            });
        }
        let shared = Arc::new(Shared {
            poller,
            sites,
            counters: TransferCounters::default(),
            shutdown: AtomicBool::new(false),
        });
        let loop_shared = Arc::clone(&shared);
        let io_thread = std::thread::Builder::new()
            .name("gstored-reactor".into())
            .spawn(move || io_loop(&loop_shared))
            .map_err(|e| TransportError::Io(e.to_string()))?;
        Ok(ReactorTransport {
            shared,
            io_thread: Some(io_thread),
        })
    }

    /// Frame/byte totals moved through this transport so far.
    pub fn counters(&self) -> &TransferCounters {
        &self.shared.counters
    }

    /// Number of coordinator I/O threads this transport runs: always 1,
    /// independent of fleet size. Exists so benchmarks can assert the
    /// O(1)-threads property without groping `/proc`.
    pub fn io_threads(&self) -> usize {
        1
    }
}

impl Transport for ReactorTransport {
    fn sites(&self) -> usize {
        self.shared.sites.len()
    }

    fn send(&self, site: usize, frame: Bytes) -> Result<(), TransportError> {
        let state = self
            .shared
            .sites
            .get(site)
            .ok_or(TransportError::UnknownSite { site })?;
        // A failed connection rejects sends immediately rather than
        // queueing frames that can never leave.
        {
            let rx = state.rx.lock().expect("reactor inbox poisoned");
            if let Some(err) = &rx.failed {
                return Err(err.clone());
            }
        }
        assert!(frame.len() <= MAX_FRAME_LEN, "frame exceeds MAX_FRAME_LEN");
        self.shared.counters.record(frame.len());
        {
            let mut tx = state.tx.lock().expect("reactor outbox poisoned");
            tx.queue.push_back(frame);
        }
        // Wake the I/O thread so it attempts the write now instead of
        // at the next readiness event.
        self.shared.poller.notify()?;
        Ok(())
    }

    fn recv(&self, site: usize) -> Result<Bytes, TransportError> {
        let state = self
            .shared
            .sites
            .get(site)
            .ok_or(TransportError::UnknownSite { site })?;
        let mut rx = state.rx.lock().expect("reactor inbox poisoned");
        loop {
            if let Some(frame) = rx.frames.pop_front() {
                self.shared.counters.record(frame.len());
                return Ok(frame);
            }
            if let Some(err) = &rx.failed {
                return Err(err.clone());
            }
            rx = state.rx_ready.wait(rx).expect("reactor inbox poisoned");
        }
    }

    fn recv_deadline(&self, site: usize, deadline: Instant) -> Result<Bytes, TransportError> {
        let state = self
            .shared
            .sites
            .get(site)
            .ok_or(TransportError::UnknownSite { site })?;
        let mut rx = state.rx.lock().expect("reactor inbox poisoned");
        loop {
            if let Some(frame) = rx.frames.pop_front() {
                self.shared.counters.record(frame.len());
                return Ok(frame);
            }
            if let Some(err) = &rx.failed {
                return Err(err.clone());
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                // Giving up on the wait consumes nothing: the I/O thread
                // keeps reassembling in the background, so this timeout
                // is always at a clean boundary for the caller.
                return Err(TransportError::TimedOut { site });
            }
            let (next, _timed_out) = state
                .rx_ready
                .wait_timeout(rx, remaining)
                .expect("reactor inbox poisoned");
            rx = next;
        }
    }

    fn reconnect(&self, site: usize) -> Result<(), TransportError> {
        let state = self
            .shared
            .sites
            .get(site)
            .ok_or(TransportError::UnknownSite { site })?;
        // Dial first; if the worker is still down the old (failed) state
        // is left untouched. Locks are taken strictly one at a time.
        let fresh = TcpStream::connect(state.addr).map_err(|e| TransportError::Connect {
            site,
            detail: e.to_string(),
        })?;
        fresh.set_nodelay(true)?;
        fresh.set_nonblocking(true)?;
        {
            let mut stream = state.stream.lock().expect("reactor stream poisoned");
            // The old socket may or may not still be registered
            // (fail_site deletes it); either way is fine.
            let _ = self.shared.poller.delete(&*stream);
            self.shared.poller.add(&fresh, Event::readable(site))?;
            *stream = fresh;
        }
        {
            let mut tx = state.tx.lock().expect("reactor outbox poisoned");
            tx.queue.clear();
            tx.staged = false;
            tx.pos = 0;
            tx.want_write = false;
        }
        {
            let mut rx = state.rx.lock().expect("reactor inbox poisoned");
            rx.frames.clear();
            rx.failed = None;
            rx.header_filled = 0;
            rx.payload = Vec::new();
            rx.payload_filled = 0;
            rx.in_payload = false;
        }
        // Kick the poller so the I/O thread notices the new registration.
        self.shared.poller.notify()?;
        Ok(())
    }

    fn can_reconnect(&self) -> bool {
        true
    }
}

impl Drop for ReactorTransport {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        let _ = self.shared.poller.notify();
        if let Some(handle) = self.io_thread.take() {
            let _ = handle.join();
        }
        // Sockets close when `shared.sites` drops with the last Arc.
    }
}

/// The event loop: wait for readiness, service reads, then retry every
/// queued write. Runs until `shutdown` is set and joined by `Drop`.
fn io_loop(shared: &Shared) {
    let mut events = Events::new();
    loop {
        // A modest timeout bounds how stale a missed wakeup can get;
        // notify() makes the common path immediate.
        if shared
            .poller
            .wait(&mut events, Some(Duration::from_millis(100)))
            .is_err()
        {
            // Poller broken: fail every live site and bail out.
            for site in 0..shared.sites.len() {
                fail_site(shared, site, TransportError::Io("poller failed".into()));
            }
            return;
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        for event in events.iter() {
            let site = event.key;
            if site >= shared.sites.len() {
                continue;
            }
            if event.readable {
                if let Err(e) = drain_read(shared, site) {
                    fail_site(shared, site, e);
                }
            }
        }
        // Writes are retried for every site with a non-empty outbox, not
        // just those with a writability event: a fresh `send` wakes us
        // via notify() with no event at all. O(sites) per wake is cheap
        // at the fleet sizes this coordinator drives.
        for site in 0..shared.sites.len() {
            if let Err(e) = drain_write(shared, site) {
                fail_site(shared, site, e);
            }
        }
    }
}

/// Read everything currently available on `site`'s socket, advancing the
/// header/payload state machine. Completed frames go straight into the
/// inbox under the lock, so an error return (which triggers `fail_site`
/// and its wakeup) never loses frames reassembled earlier in the pass.
fn drain_read(shared: &Shared, site: usize) -> Result<(), TransportError> {
    let state = &shared.sites[site];
    let stream_guard = state.stream.lock().expect("reactor stream poisoned");
    let mut stream = &*stream_guard;
    let mut rx = state.rx.lock().expect("reactor inbox poisoned");
    if rx.failed.is_some() {
        return Ok(());
    }
    let mut delivered = false;
    let result = loop {
        if !rx.in_payload {
            // Reading the 4-byte length prefix, possibly 1 byte at a
            // time.
            let filled = rx.header_filled;
            let n = match stream.read(&mut rx.header[filled..]) {
                Ok(0) => {
                    break if rx.header_filled == 0 {
                        // Clean close between frames: the polite hangup.
                        Err(TransportError::Closed { site })
                    } else {
                        Err(TransportError::Io(
                            "stream ended inside a frame header".into(),
                        ))
                    };
                }
                Ok(n) => n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break Ok(()),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => break Err(e.into()),
            };
            rx.header_filled += n;
            if rx.header_filled == 4 {
                let len = u32::from_le_bytes(rx.header) as usize;
                // Validate before allocating: a hostile prefix must not
                // size a buffer.
                if len > MAX_FRAME_LEN {
                    break Err(TransportError::Io(
                        "frame length exceeds MAX_FRAME_LEN".into(),
                    ));
                }
                rx.payload = vec![0u8; len];
                rx.payload_filled = 0;
                rx.in_payload = true;
            }
        } else {
            let filled = rx.payload_filled;
            if filled == rx.payload.len() {
                // Zero-length frame or payload complete.
                let frame = Bytes::from(std::mem::take(&mut rx.payload));
                rx.frames.push_back(frame);
                delivered = true;
                rx.payload_filled = 0;
                rx.header_filled = 0;
                rx.in_payload = false;
                continue;
            }
            let n = match stream.read(&mut rx.payload[filled..]) {
                Ok(0) => {
                    break Err(TransportError::Io(
                        "stream ended inside a frame payload".into(),
                    ))
                }
                Ok(n) => n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break Ok(()),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => break Err(e.into()),
            };
            rx.payload_filled += n;
        }
    };
    if delivered {
        state.rx_ready.notify_all();
    }
    result
}

/// Write as much of `site`'s outbox as the socket accepts, arming or
/// disarming write interest to match whether bytes remain queued.
fn drain_write(shared: &Shared, site: usize) -> Result<(), TransportError> {
    let state = &shared.sites[site];
    let stream_guard = state.stream.lock().expect("reactor stream poisoned");
    let mut stream = &*stream_guard;
    let mut tx = state.tx.lock().expect("reactor outbox poisoned");
    loop {
        // Cheap refcount clone releases the queue borrow so the cursor
        // fields can be updated while the frame is being written.
        let Some(front) = tx.queue.front().cloned() else {
            if tx.want_write {
                tx.want_write = false;
                shared
                    .poller
                    .modify(&*stream_guard, Event::readable(site))?;
            }
            return Ok(());
        };
        if !tx.staged {
            tx.header = (front.len() as u32).to_le_bytes();
            tx.pos = 0;
            tx.staged = true;
        }
        let wrote = if tx.pos < 4 {
            let pos = tx.pos;
            stream.write(&tx.header[pos..])
        } else {
            let off = tx.pos - 4;
            stream.write(&front[off..])
        };
        match wrote {
            Ok(0) => return Err(TransportError::Io("socket write returned 0".into())),
            Ok(n) => {
                tx.pos += n;
                if tx.pos == 4 + front.len() {
                    tx.queue.pop_front();
                    tx.staged = false;
                    tx.pos = 0;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if !tx.want_write {
                    tx.want_write = true;
                    shared.poller.modify(&*stream_guard, Event::all(site))?;
                }
                return Ok(());
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
}

/// Mark `site` failed: stop polling the socket, drop undeliverable
/// outbox frames, record the error in the inbox (keeping any frames
/// already reassembled deliverable), and wake all `recv` waiters.
/// Called by the I/O loop with no locks held; takes `tx` then `rx`
/// sequentially, never together.
fn fail_site(shared: &Shared, site: usize, error: TransportError) {
    let state = &shared.sites[site];
    {
        let stream = state.stream.lock().expect("reactor stream poisoned");
        let _ = shared.poller.delete(&*stream);
    }
    {
        let mut tx = state.tx.lock().expect("reactor outbox poisoned");
        tx.queue.clear();
        tx.staged = false;
        tx.pos = 0;
        tx.want_write = false;
    }
    let mut rx = state.rx.lock().expect("reactor inbox poisoned");
    if rx.failed.is_none() {
        rx.failed = Some(error);
    }
    state.rx_ready.notify_all();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::{read_frame, write_frame};
    use std::net::TcpListener;

    /// An echo worker that replies to each frame with its reverse.
    fn reverse_echo_worker(listener: TcpListener) -> std::thread::JoinHandle<()> {
        std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            while let Some(frame) = read_frame(&mut stream).unwrap_or(None) {
                let mut reply = frame.to_vec();
                reply.reverse();
                if write_frame(&mut stream, &reply).is_err() {
                    break;
                }
            }
        })
    }

    #[test]
    fn roundtrip_and_counters_match_tcp_transport() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let worker = reverse_echo_worker(listener);
        let transport = ReactorTransport::connect(&[addr]).unwrap();
        assert_eq!(transport.io_threads(), 1);
        transport.send(0, Bytes::from_static(b"ping")).unwrap();
        assert_eq!(transport.recv(0).unwrap().as_ref(), b"gnip");
        // Same payload-byte accounting as TcpTransport: 4 out + 4 in.
        assert_eq!(transport.counters().bytes(), 8);
        assert_eq!(transport.counters().frames(), 2);
        drop(transport);
        worker.join().unwrap();
    }

    #[test]
    fn pipelined_sends_preserve_fifo_order() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let worker = reverse_echo_worker(listener);
        let transport = ReactorTransport::connect(&[addr]).unwrap();
        // Queue many requests before reading a single reply.
        for i in 0..100u32 {
            transport
                .send(0, Bytes::from(i.to_le_bytes().to_vec()))
                .unwrap();
        }
        for i in 0..100u32 {
            let mut expect = i.to_le_bytes().to_vec();
            expect.reverse();
            assert_eq!(transport.recv(0).unwrap().as_ref(), &expect[..]);
        }
        drop(transport);
        worker.join().unwrap();
    }

    #[test]
    fn one_byte_writes_reassemble() {
        // A peer trickling a frame 1 byte at a time (worst-case partial
        // delivery) must still produce one intact frame.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let worker = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            stream.set_nodelay(true).unwrap();
            let payload = b"slow but intact";
            let mut wire = Vec::new();
            wire.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            wire.extend_from_slice(payload);
            for byte in wire {
                use std::io::Write as _;
                stream.write_all(&[byte]).unwrap();
                stream.flush().unwrap();
                std::thread::sleep(Duration::from_micros(200));
            }
            // Hold the socket open until the coordinator has read the
            // frame, then close.
            let _ = read_frame(&mut stream);
        });
        let transport = ReactorTransport::connect(&[addr]).unwrap();
        assert_eq!(transport.recv(0).unwrap().as_ref(), b"slow but intact");
        drop(transport);
        worker.join().unwrap();
    }

    #[test]
    fn disconnect_surfaces_closed_error() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let worker = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            drop(stream); // immediate hangup
        });
        let transport = ReactorTransport::connect(&[addr]).unwrap();
        assert_eq!(transport.recv(0), Err(TransportError::Closed { site: 0 }));
        // Failure is sticky: sends are rejected too.
        assert_eq!(
            transport.send(0, Bytes::from_static(b"x")),
            Err(TransportError::Closed { site: 0 })
        );
        worker.join().unwrap();
    }

    #[test]
    fn hostile_oversized_prefix_rejected_without_allocation() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let worker = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            use std::io::Write as _;
            // Claims a 4 GiB frame; the reactor must fail the site
            // instead of allocating.
            stream.write_all(&u32::MAX.to_le_bytes()).unwrap();
            stream.flush().unwrap();
            // Keep the socket open so the error comes from validation,
            // not a hangup.
            std::thread::sleep(Duration::from_millis(200));
        });
        let transport = ReactorTransport::connect(&[addr]).unwrap();
        match transport.recv(0) {
            Err(TransportError::Io(msg)) => {
                assert!(msg.contains("MAX_FRAME_LEN"), "unexpected error: {msg}")
            }
            other => panic!("expected oversized-frame error, got {other:?}"),
        }
        worker.join().unwrap();
    }

    #[test]
    fn recv_deadline_times_out_without_failing_the_site() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let worker = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            std::thread::sleep(Duration::from_millis(60));
            write_frame(&mut stream, b"late").unwrap();
            let _ = read_frame(&mut stream); // hold until coordinator closes
        });
        let transport = ReactorTransport::connect(&[addr]).unwrap();
        let deadline = std::time::Instant::now() + Duration::from_millis(10);
        assert_eq!(
            transport.recv_deadline(0, deadline),
            Err(TransportError::TimedOut { site: 0 })
        );
        // The site is not failed — the frame arrives on a patient retry.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        assert_eq!(
            transport.recv_deadline(0, deadline).unwrap().as_ref(),
            b"late"
        );
        drop(transport);
        worker.join().unwrap();
    }

    #[test]
    fn reconnect_revives_a_failed_site() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let worker = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            drop(stream); // crash the first connection
            let (mut stream, _) = listener.accept().unwrap();
            while let Some(frame) = read_frame(&mut stream).unwrap_or(None) {
                let mut reply = frame.to_vec();
                reply.reverse();
                if write_frame(&mut stream, &reply).is_err() {
                    break;
                }
            }
        });
        let transport = ReactorTransport::connect(&[addr]).unwrap();
        assert_eq!(transport.recv(0), Err(TransportError::Closed { site: 0 }));
        assert!(transport.send(0, Bytes::from_static(b"x")).is_err());
        transport.reconnect(0).unwrap();
        transport.send(0, Bytes::from_static(b"pong")).unwrap();
        assert_eq!(transport.recv(0).unwrap().as_ref(), b"gnop");
        drop(transport);
        worker.join().unwrap();
    }

    #[test]
    fn unknown_site_rejected() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let worker = reverse_echo_worker(listener);
        let transport = ReactorTransport::connect(&[addr]).unwrap();
        assert_eq!(
            transport.send(9, Bytes::new()),
            Err(TransportError::UnknownSite { site: 9 })
        );
        assert_eq!(
            transport.recv(9),
            Err(TransportError::UnknownSite { site: 9 })
        );
        drop(transport);
        worker.join().unwrap();
    }
}
