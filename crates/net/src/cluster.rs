//! The [`NetworkModel`] cost model plus the legacy scatter/gather
//! executor.
//!
//! The paper's execution model has two kinds of steps: parallel site-local
//! computation (partial evaluation, candidate finding) and
//! coordinator-side work on assembled inputs (LEC pruning, assembly).
//! [`Cluster::scatter`] runs a closure per site on real threads
//! (`std::thread::scope`) and reports the **maximum** site wall time —
//! the quantity that determines cluster response time; shipment of the
//! results is charged through a [`NetworkModel`].
//!
//! The gStoreD engine itself no longer uses shared-memory scatter
//! closures: it drives persistent workers through the [`crate::transport`]
//! layer, so every inter-site payload is a real serialized frame. The
//! scatter executor remains for the comparison baselines
//! (`gstored-baselines`), whose shipment numbers are analytical
//! estimates by design.

use std::time::{Duration, Instant};

use crate::metrics::StageMetrics;

/// A simple network cost model: per-message latency plus bandwidth-limited
/// transfer. Defaults approximate the paper's cluster-era LAN (1 Gbps,
/// 0.1 ms latency).
///
/// Links are uniform by default; [`NetworkModel::with_site_latency`] and
/// [`NetworkModel::with_site_bandwidth`] override individual sites to
/// model skewed deployments (the straggler benchmarks give one site a
/// 10x slower link). Overrides are a sparse list — fleets are small and
/// most benchmarks skew one or two sites.
#[derive(Debug, Clone)]
pub struct NetworkModel {
    /// One-way latency charged per message (uniform default).
    pub latency: Duration,
    /// Bandwidth in bytes per second (uniform default).
    pub bytes_per_sec: u64,
    /// Per-site latency overrides, sparse `(site, latency)` pairs.
    site_latency: Vec<(usize, Duration)>,
    /// Per-site bandwidth overrides, sparse `(site, bytes/sec)` pairs.
    site_bandwidth: Vec<(usize, u64)>,
}

impl Default for NetworkModel {
    fn default() -> Self {
        NetworkModel::new(Duration::from_micros(100), 125_000_000) // 1 Gbps
    }
}

impl NetworkModel {
    /// A uniform model: every link has `latency` one-way latency and
    /// `bytes_per_sec` bandwidth.
    pub fn new(latency: Duration, bytes_per_sec: u64) -> Self {
        NetworkModel {
            latency,
            bytes_per_sec,
            site_latency: Vec::new(),
            site_bandwidth: Vec::new(),
        }
    }

    /// An idealized zero-cost network (for unit tests).
    pub fn instant() -> Self {
        NetworkModel::new(Duration::ZERO, u64::MAX)
    }

    /// Override one site's one-way latency (straggler modelling).
    pub fn with_site_latency(mut self, site: usize, latency: Duration) -> Self {
        self.site_latency.retain(|(s, _)| *s != site);
        self.site_latency.push((site, latency));
        self
    }

    /// Override one site's bandwidth in bytes per second.
    pub fn with_site_bandwidth(mut self, site: usize, bytes_per_sec: u64) -> Self {
        self.site_bandwidth.retain(|(s, _)| *s != site);
        self.site_bandwidth.push((site, bytes_per_sec));
        self
    }

    /// Whether every site shares the default link (no overrides).
    pub fn is_uniform(&self) -> bool {
        self.site_latency.is_empty() && self.site_bandwidth.is_empty()
    }

    /// One-way latency of `site`'s link.
    pub fn latency_for(&self, site: usize) -> Duration {
        self.site_latency
            .iter()
            .find(|(s, _)| *s == site)
            .map(|(_, l)| *l)
            .unwrap_or(self.latency)
    }

    /// Bandwidth of `site`'s link in bytes per second.
    pub fn bandwidth_for(&self, site: usize) -> u64 {
        self.site_bandwidth
            .iter()
            .find(|(s, _)| *s == site)
            .map(|(_, b)| *b)
            .unwrap_or(self.bytes_per_sec)
    }

    /// Transfer time for `messages` messages totalling `bytes` bytes on
    /// the uniform (default) link.
    pub fn transfer_time(&self, messages: u64, bytes: u64) -> Duration {
        Self::price(self.latency, self.bytes_per_sec, messages, bytes)
    }

    /// Transfer time on `site`'s link, honouring per-site overrides.
    pub fn transfer_time_for(&self, site: usize, messages: u64, bytes: u64) -> Duration {
        Self::price(
            self.latency_for(site),
            self.bandwidth_for(site),
            messages,
            bytes,
        )
    }

    fn price(latency: Duration, bytes_per_sec: u64, messages: u64, bytes: u64) -> Duration {
        let bw = if bytes_per_sec == 0 {
            u64::MAX
        } else {
            bytes_per_sec
        };
        let secs = bytes as f64 / bw as f64;
        latency * (messages as u32) + Duration::from_secs_f64(secs)
    }
}

/// A simulated cluster of `k` sites plus a coordinator.
#[derive(Debug, Clone)]
pub struct Cluster {
    sites: usize,
    network: NetworkModel,
}

impl Cluster {
    /// A cluster with `sites` sites and the default network model.
    pub fn new(sites: usize) -> Self {
        assert!(sites > 0, "need at least one site");
        Cluster {
            sites,
            network: NetworkModel::default(),
        }
    }

    /// Override the network model.
    pub fn with_network(mut self, network: NetworkModel) -> Self {
        self.network = network;
        self
    }

    /// Number of sites.
    pub fn sites(&self) -> usize {
        self.sites
    }

    /// The network model.
    pub fn network(&self) -> NetworkModel {
        self.network.clone()
    }

    /// Run `work(site_id)` on every site in parallel; returns the per-site
    /// outputs plus a [`StageMetrics`] whose `wall` is the slowest site
    /// (sites run concurrently, so the stage finishes when the last one
    /// does). No shipment is charged here — callers charge the bytes they
    /// actually serialize via [`Cluster::charge_shipment`].
    pub fn scatter<T, F>(&self, work: F) -> (Vec<T>, StageMetrics)
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let mut results: Vec<Option<T>> = (0..self.sites).map(|_| None).collect();
        let mut times = vec![Duration::ZERO; self.sites];
        let work = &work;
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..self.sites)
                .map(|site| {
                    scope.spawn(move || {
                        let start = Instant::now();
                        let out = work(site);
                        (out, start.elapsed())
                    })
                })
                .collect();
            for (site, h) in handles.into_iter().enumerate() {
                let (out, took) = h.join().expect("site thread panicked");
                results[site] = Some(out);
                times[site] = took;
            }
        });

        let metrics = StageMetrics {
            wall: times.iter().copied().max().unwrap_or_default(),
            ..Default::default()
        };
        let outputs = results
            .into_iter()
            .map(|o| o.expect("site produced output"))
            .collect();
        (outputs, metrics)
    }

    /// Charge `bytes` over `messages` messages to a stage: adds simulated
    /// network time and shipment counters.
    pub fn charge_shipment(&self, stage: &mut StageMetrics, messages: u64, bytes: u64) {
        stage.bytes_shipped += bytes;
        stage.messages += messages;
        stage.network += self.network.transfer_time(messages, bytes);
    }

    /// Time a coordinator-side computation into a stage's wall clock.
    pub fn time_coordinator<T>(&self, stage: &mut StageMetrics, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        stage.wall += start.elapsed();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scatter_runs_every_site_once() {
        let cluster = Cluster::new(8).with_network(NetworkModel::instant());
        let counter = AtomicUsize::new(0);
        let (outs, metrics) = cluster.scatter(|site| {
            counter.fetch_add(1, Ordering::SeqCst);
            site * 2
        });
        assert_eq!(counter.load(Ordering::SeqCst), 8);
        assert_eq!(outs, vec![0, 2, 4, 6, 8, 10, 12, 14]);
        assert_eq!(metrics.bytes_shipped, 0);
    }

    #[test]
    fn scatter_wall_is_max_not_sum() {
        let cluster = Cluster::new(4).with_network(NetworkModel::instant());
        let (_, metrics) = cluster.scatter(|site| {
            if site == 0 {
                std::thread::sleep(Duration::from_millis(30));
            }
            site
        });
        assert!(metrics.wall >= Duration::from_millis(30));
        // If walls were summed over idle sites the value would still be
        // ~30ms (others are ~0), so also check an upper bound to catch a
        // serialized implementation sleeping 4x.
        assert!(metrics.wall < Duration::from_millis(120));
    }

    #[test]
    fn charge_shipment_accumulates_and_prices() {
        let cluster =
            Cluster::new(2).with_network(NetworkModel::new(Duration::from_millis(1), 1000));
        let mut stage = StageMetrics::default();
        cluster.charge_shipment(&mut stage, 2, 500);
        assert_eq!(stage.bytes_shipped, 500);
        assert_eq!(stage.messages, 2);
        // 2 * 1ms latency + 500/1000 s transfer.
        assert_eq!(
            stage.network,
            Duration::from_millis(2) + Duration::from_millis(500)
        );
    }

    #[test]
    fn transfer_time_handles_extremes() {
        let instant = NetworkModel::instant();
        assert_eq!(instant.transfer_time(1000, u32::MAX as u64), Duration::ZERO);
        let zero_bw = NetworkModel::new(Duration::ZERO, 0);
        // Zero bandwidth is treated as infinite (avoids div-by-zero).
        assert_eq!(zero_bw.transfer_time(1, 1000), Duration::ZERO);
    }

    #[test]
    fn per_site_overrides_price_links_independently() {
        let model = NetworkModel::new(Duration::from_millis(1), 1000)
            .with_site_latency(2, Duration::from_millis(10))
            .with_site_bandwidth(3, 500);
        assert!(!model.is_uniform());
        // Non-overridden sites keep the uniform link.
        assert_eq!(model.transfer_time_for(0, 1, 0), Duration::from_millis(1));
        assert_eq!(model.latency_for(2), Duration::from_millis(10));
        assert_eq!(model.transfer_time_for(2, 2, 0), Duration::from_millis(20));
        assert_eq!(model.bandwidth_for(3), 500);
        assert_eq!(
            model.transfer_time_for(3, 0, 1000),
            Duration::from_millis(2000)
        );
        // Re-overriding a site replaces the previous entry.
        let model = model.with_site_latency(2, Duration::from_millis(3));
        assert_eq!(model.latency_for(2), Duration::from_millis(3));
    }

    #[test]
    fn time_coordinator_adds_wall() {
        let cluster = Cluster::new(1).with_network(NetworkModel::instant());
        let mut stage = StageMetrics::default();
        let out = cluster.time_coordinator(&mut stage, || {
            std::thread::sleep(Duration::from_millis(5));
            42
        });
        assert_eq!(out, 42);
        assert!(stage.wall >= Duration::from_millis(5));
    }

    #[test]
    #[should_panic(expected = "need at least one site")]
    fn zero_sites_rejected() {
        let _ = Cluster::new(0);
    }
}
