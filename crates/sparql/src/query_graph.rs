//! Query graph (Definition 2 of the paper).
//!
//! A BGP is lowered to a directed labeled multigraph `Q = {V^Q, E^Q, Σ^Q}`:
//! each distinct variable or constant term becomes one query vertex, each
//! triple pattern one edge whose label is a constant predicate or a
//! predicate variable. The rest of the system identifies query vertices by
//! their dense [`QVertexId`], which also indexes the `LECSign` bitstrings
//! of Definition 8.

use std::collections::HashMap;

use gstored_rdf::Term;

use crate::ast::{Query, TermPattern};
use crate::error::SparqlError;
use crate::Result;

/// Dense index of a query vertex (0-based, `< |V^Q|`).
pub type QVertexId = usize;

/// A query vertex: a variable or a constant term.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum QVertex {
    Var(String),
    Const(Term),
}

impl QVertex {
    /// Whether this vertex is a variable.
    pub fn is_var(&self) -> bool {
        matches!(self, QVertex::Var(_))
    }

    /// The variable name if this vertex is a variable.
    pub fn as_var(&self) -> Option<&str> {
        match self {
            QVertex::Var(v) => Some(v),
            _ => None,
        }
    }
}

impl std::fmt::Display for QVertex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QVertex::Var(v) => write!(f, "?{v}"),
            QVertex::Const(t) => write!(f, "{t}"),
        }
    }
}

/// An edge label: a constant predicate IRI or a predicate variable.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum EdgeLabel {
    Const(Term),
    Var(String),
}

impl EdgeLabel {
    /// Whether the label is a variable (matches any predicate).
    pub fn is_var(&self) -> bool {
        matches!(self, EdgeLabel::Var(_))
    }
}

/// A directed labeled query edge; `index` is its position in the pattern
/// list (edges form a multiset, so the index is the identity).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct QEdge {
    /// Position in `Query::patterns`; identifies the edge uniquely.
    pub index: usize,
    pub from: QVertexId,
    pub to: QVertexId,
    pub label: EdgeLabel,
}

/// The query graph of Definition 2.
#[derive(Debug, Clone)]
pub struct QueryGraph {
    vertices: Vec<QVertex>,
    edges: Vec<QEdge>,
    /// Outgoing edge indexes per vertex.
    out: Vec<Vec<usize>>,
    /// Incoming edge indexes per vertex.
    inc: Vec<Vec<usize>>,
    /// Per-vertex class constraints extracted from `rdf:type` patterns
    /// with constant class objects (gStore folds these into vertex
    /// signatures; they are not query edges).
    class_constraints: Vec<Vec<Term>>,
    /// Projected variable names (after `SELECT` resolution).
    projection: Vec<String>,
    /// Whether `DISTINCT` was requested.
    pub distinct: bool,
    /// Optional limit.
    pub limit: Option<usize>,
}

impl QueryGraph {
    /// Lower a parsed [`Query`] to its query graph.
    ///
    /// Fails if the graph is not weakly connected — the paper assumes
    /// connected queries ("otherwise, all connected components of Q are
    /// considered separately"); handling components separately is the
    /// caller's job.
    pub fn from_query(q: &Query) -> Result<Self> {
        let mut vertices: Vec<QVertex> = Vec::new();
        let mut index: HashMap<QVertex, QVertexId> = HashMap::new();
        let intern = |tp: &TermPattern,
                      vertices: &mut Vec<QVertex>,
                      index: &mut HashMap<QVertex, QVertexId>|
         -> QVertexId {
            let v = match tp {
                TermPattern::Var(name) => QVertex::Var(name.clone()),
                TermPattern::Const(t) => QVertex::Const(t.clone()),
            };
            if let Some(&id) = index.get(&v) {
                return id;
            }
            let id = vertices.len();
            vertices.push(v.clone());
            index.insert(v, id);
            id
        };

        // Split off `rdf:type` patterns with constant IRI classes: they
        // become vertex class constraints, not edges (matching gStore's
        // vertex-signature encoding; the paper's Fig. 1 has no type
        // edges). Variable-class type patterns are unsupported because
        // class IRIs are not graph vertices in this model.
        let is_type_pred = |p: &TermPattern| {
            matches!(p, TermPattern::Const(Term::Iri(iri))
                if iri == gstored_rdf::vocab::rdf::TYPE)
        };
        let mut constraints: Vec<(TermPattern, Term)> = Vec::new();
        let mut edge_patterns = Vec::new();
        for (i, p) in q.patterns.iter().enumerate() {
            if is_type_pred(&p.predicate) {
                match &p.object {
                    TermPattern::Const(c @ Term::Iri(_)) => {
                        constraints.push((p.subject.clone(), c.clone()));
                        continue;
                    }
                    TermPattern::Var(v) => {
                        return Err(SparqlError::Unsupported(format!(
                            "rdf:type pattern with variable class ?{v}"
                        )));
                    }
                    _ => {} // literal-typed objects stay ordinary edges
                }
            }
            edge_patterns.push((i, p));
        }

        let mut edges = Vec::with_capacity(edge_patterns.len());
        for (edge_index, (i, p)) in edge_patterns.iter().enumerate() {
            let _ = i;
            let from = intern(&p.subject, &mut vertices, &mut index);
            let to = intern(&p.object, &mut vertices, &mut index);
            let label = match &p.predicate {
                TermPattern::Var(v) => EdgeLabel::Var(v.clone()),
                TermPattern::Const(t) => EdgeLabel::Const(t.clone()),
            };
            edges.push(QEdge {
                index: edge_index,
                from,
                to,
                label,
            });
        }
        // Intern constrained subjects (they may occur in no edge) and
        // attach the constraints.
        let mut class_constraints = vec![Vec::new(); vertices.len()];
        for (subject, class) in constraints {
            let v = intern(&subject, &mut vertices, &mut index);
            if v >= class_constraints.len() {
                class_constraints.resize(v + 1, Vec::new());
            }
            if !class_constraints[v].contains(&class) {
                class_constraints[v].push(class);
            }
        }
        class_constraints.resize(vertices.len(), Vec::new());

        let n = vertices.len();
        let mut out = vec![Vec::new(); n];
        let mut inc = vec![Vec::new(); n];
        for (i, e) in edges.iter().enumerate() {
            out[e.from].push(i);
            inc[e.to].push(i);
        }

        let projection = q.projection().iter().map(|s| s.to_string()).collect();
        let g = QueryGraph {
            vertices,
            edges,
            out,
            inc,
            class_constraints,
            projection,
            distinct: q.distinct,
            limit: q.limit,
        };
        if !g.is_connected() {
            return Err(SparqlError::InvalidBgp(
                "query graph is not weakly connected".into(),
            ));
        }
        Ok(g)
    }

    /// Number of query vertices `|V^Q|`.
    pub fn vertex_count(&self) -> usize {
        self.vertices.len()
    }

    /// Number of query edges `|E^Q|`.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The query vertices.
    pub fn vertices(&self) -> &[QVertex] {
        &self.vertices
    }

    /// The query edges (multiset, ordered by pattern index).
    pub fn edges(&self) -> &[QEdge] {
        &self.edges
    }

    /// One vertex by id.
    pub fn vertex(&self, v: QVertexId) -> &QVertex {
        &self.vertices[v]
    }

    /// One edge by its pattern index.
    pub fn edge(&self, i: usize) -> &QEdge {
        &self.edges[i]
    }

    /// Outgoing edge indexes of `v`.
    pub fn out_edges(&self, v: QVertexId) -> &[usize] {
        &self.out[v]
    }

    /// Incoming edge indexes of `v`.
    pub fn in_edges(&self, v: QVertexId) -> &[usize] {
        &self.inc[v]
    }

    /// All edge indexes incident to `v` (out then in).
    pub fn incident_edges(&self, v: QVertexId) -> impl Iterator<Item = usize> + '_ {
        self.out[v].iter().chain(self.inc[v].iter()).copied()
    }

    /// Undirected neighbors of `v`, deduplicated.
    pub fn neighbors(&self, v: QVertexId) -> Vec<QVertexId> {
        let mut ns: Vec<QVertexId> = self.out[v]
            .iter()
            .map(|&e| self.edges[e].to)
            .chain(self.inc[v].iter().map(|&e| self.edges[e].from))
            .filter(|&u| u != v)
            .collect();
        ns.sort_unstable();
        ns.dedup();
        ns
    }

    /// Undirected degree of `v` (counting multi-edges).
    pub fn degree(&self, v: QVertexId) -> usize {
        self.out[v].len() + self.inc[v].len()
    }

    /// Projected variable names.
    pub fn projection(&self) -> &[String] {
        &self.projection
    }

    /// Vertex id of a variable, if the variable occurs as a vertex.
    ///
    /// (Predicate-only variables label edges and have no vertex.)
    pub fn vertex_of_var(&self, name: &str) -> Option<QVertexId> {
        self.vertices.iter().position(|v| v.as_var() == Some(name))
    }

    /// Ids of all variable vertices.
    pub fn var_vertices(&self) -> Vec<QVertexId> {
        (0..self.vertices.len())
            .filter(|&v| self.vertices[v].is_var())
            .collect()
    }

    /// Class constraints of a vertex (from `rdf:type` patterns).
    pub fn class_constraints(&self, v: QVertexId) -> &[Term] {
        &self.class_constraints[v]
    }

    /// Whether any vertex carries a class constraint.
    pub fn has_class_constraints(&self) -> bool {
        self.class_constraints.iter().any(|c| !c.is_empty())
    }

    /// Whether the query graph is weakly connected.
    pub fn is_connected(&self) -> bool {
        if self.vertices.is_empty() {
            return false;
        }
        if self.vertices.len() == 1 {
            // A single (possibly class-constrained) vertex is connected.
            return true;
        }
        let mut seen = vec![false; self.vertices.len()];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 1;
        while let Some(v) = stack.pop() {
            for u in self.neighbors(v) {
                if !seen[u] {
                    seen[u] = true;
                    count += 1;
                    stack.push(u);
                }
            }
        }
        count == self.vertices.len()
    }

    /// Whether the given vertex subset is weakly connected in `Q`
    /// (used by Definition 5 condition 6 and by the LPM enumerator).
    pub fn subset_connected(&self, subset: &[QVertexId]) -> bool {
        if subset.is_empty() {
            return false;
        }
        let in_set = |v: QVertexId| subset.contains(&v);
        let mut seen = vec![subset[0]];
        let mut stack = vec![subset[0]];
        while let Some(v) = stack.pop() {
            for u in self.neighbors(v) {
                if in_set(u) && !seen.contains(&u) {
                    seen.push(u);
                    stack.push(u);
                }
            }
        }
        seen.len() == subset.len()
    }

    /// Enumerate every non-empty weakly-connected subset of query vertices.
    ///
    /// The LPM enumerator iterates these as candidate "internal cores".
    /// Queries are small (the paper's benchmarks have ≤ 8 vertices), so the
    /// worst case `2^|V^Q|` enumeration is cheap; subsets are produced in
    /// ascending size order.
    pub fn connected_subsets(&self) -> Vec<Vec<QVertexId>> {
        let n = self.vertices.len();
        assert!(n <= 30, "query too large for subset enumeration");
        let mut result: Vec<Vec<QVertexId>> = Vec::new();
        for mask in 1u32..(1u32 << n) {
            let subset: Vec<QVertexId> = (0..n).filter(|&i| mask & (1 << i) != 0).collect();
            if self.subset_connected(&subset) {
                result.push(subset);
            }
        }
        result.sort_by_key(Vec::len);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;

    /// The paper's Fig. 2 query graph.
    fn paper_query() -> QueryGraph {
        let q = parse_query(
            r#"SELECT ?p2 ?l WHERE {
                ?t <http://dbpedia.org/ontology/label> ?l .
                ?p1 <http://dbpedia.org/ontology/influencedBy> ?p2 .
                ?p2 <http://dbpedia.org/ontology/mainInterest> ?t .
                ?p1 <http://dbpedia.org/ontology/name> "Crispin Wright"@en .
            }"#,
        )
        .unwrap();
        QueryGraph::from_query(&q).unwrap()
    }

    #[test]
    fn paper_fig2_has_five_vertices_four_edges() {
        let g = paper_query();
        assert_eq!(g.vertex_count(), 5, "?t ?l ?p1 ?p2 and the literal");
        assert_eq!(g.edge_count(), 4);
        assert!(g.is_connected());
    }

    #[test]
    fn constants_are_shared_vertices() {
        let q = parse_query(
            "SELECT ?x ?y WHERE { ?x <http://p> <http://c> . ?y <http://q> <http://c> . }",
        )
        .unwrap();
        let g = QueryGraph::from_query(&q).unwrap();
        assert_eq!(g.vertex_count(), 3, "the shared constant is one vertex");
    }

    #[test]
    fn predicate_variables_do_not_create_vertices() {
        let q = parse_query("SELECT ?p WHERE { <http://a> ?p <http://b> }").unwrap();
        let g = QueryGraph::from_query(&q).unwrap();
        assert_eq!(g.vertex_count(), 2);
        assert!(g.edges()[0].label.is_var());
        assert_eq!(g.vertex_of_var("p"), None);
    }

    #[test]
    fn disconnected_queries_are_rejected() {
        let q = parse_query("SELECT * WHERE { ?a <http://p> ?b . ?c <http://p> ?d . }").unwrap();
        assert!(matches!(
            QueryGraph::from_query(&q),
            Err(SparqlError::InvalidBgp(_))
        ));
    }

    #[test]
    fn self_loop_query_is_connected() {
        let q = parse_query("SELECT ?a WHERE { ?a <http://p> ?a }").unwrap();
        let g = QueryGraph::from_query(&q).unwrap();
        assert_eq!(g.vertex_count(), 1);
        assert!(g.is_connected());
    }

    #[test]
    fn adjacency_is_consistent() {
        let g = paper_query();
        for (i, e) in g.edges().iter().enumerate() {
            assert!(g.out_edges(e.from).contains(&i));
            assert!(g.in_edges(e.to).contains(&i));
        }
        let p2 = g.vertex_of_var("p2").unwrap();
        // ?p2 has influencedBy incoming and mainInterest outgoing.
        assert_eq!(g.degree(p2), 2);
        assert_eq!(g.neighbors(p2).len(), 2);
    }

    #[test]
    fn multiset_edges_are_preserved() {
        let q = parse_query("SELECT * WHERE { ?x <http://p> ?y . ?x <http://p> ?y . ?x ?z ?y . }")
            .unwrap();
        let g = QueryGraph::from_query(&q).unwrap();
        assert_eq!(g.edge_count(), 3, "E^Q is a multiset (Definition 2)");
    }

    #[test]
    fn connected_subsets_of_paper_query() {
        let g = paper_query();
        let subsets = g.connected_subsets();
        // Every singleton is connected.
        assert!(subsets.iter().filter(|s| s.len() == 1).count() == 5);
        // The full set is connected.
        assert!(subsets.iter().any(|s| s.len() == 5));
        // Sizes ascend.
        for w in subsets.windows(2) {
            assert!(w[0].len() <= w[1].len());
        }
        // ?l and the literal are not adjacent: {l, lit} must be absent.
        let l = g.vertex_of_var("l").unwrap();
        let lit = (0..g.vertex_count())
            .find(|&v| !g.vertex(v).is_var())
            .unwrap();
        assert!(!subsets.contains(&{
            let mut s = vec![l, lit];
            s.sort_unstable();
            s
        }));
    }

    #[test]
    fn subset_connected_checks() {
        let g = paper_query();
        let t = g.vertex_of_var("t").unwrap();
        let l = g.vertex_of_var("l").unwrap();
        let p1 = g.vertex_of_var("p1").unwrap();
        assert!(g.subset_connected(&[t, l]));
        assert!(!g.subset_connected(&[l, p1]));
        assert!(!g.subset_connected(&[]));
    }

    #[test]
    fn projection_resolution() {
        let g = paper_query();
        assert_eq!(g.projection(), &["p2".to_string(), "l".to_string()]);
    }
}
