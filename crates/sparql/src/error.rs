//! Error type for the SPARQL front-end.

use std::fmt;

/// Errors produced while lexing, parsing or lowering a SPARQL query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SparqlError {
    /// Lexical error with byte offset.
    Lex { offset: usize, message: String },
    /// Parse error with byte offset of the offending token.
    Parse { offset: usize, message: String },
    /// A prefixed name used an undeclared prefix.
    UnknownPrefix(String),
    /// The query used a feature outside the supported BGP fragment.
    Unsupported(String),
    /// The BGP is empty or its query graph is disconnected.
    InvalidBgp(String),
}

impl fmt::Display for SparqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparqlError::Lex { offset, message } => {
                write!(f, "lexical error at byte {offset}: {message}")
            }
            SparqlError::Parse { offset, message } => {
                write!(f, "parse error at byte {offset}: {message}")
            }
            SparqlError::UnknownPrefix(p) => write!(f, "undeclared prefix: {p}"),
            SparqlError::Unsupported(m) => write!(f, "unsupported SPARQL feature: {m}"),
            SparqlError::InvalidBgp(m) => write!(f, "invalid basic graph pattern: {m}"),
        }
    }
}

impl std::error::Error for SparqlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SparqlError::Parse {
            offset: 12,
            message: "expected '{'".into(),
        };
        assert!(e.to_string().contains("byte 12"));
        assert!(SparqlError::UnknownPrefix("foo:".into())
            .to_string()
            .contains("foo:"));
    }
}
