//! AST of the supported SPARQL BGP fragment.

use gstored_rdf::Term;

/// A subject/predicate/object position in a triple pattern: either a
/// constant RDF term or a variable.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TermPattern {
    /// A constant term (IRI, literal or blank node treated as constant).
    Const(Term),
    /// A variable, stored without the `?` sigil.
    Var(String),
}

impl TermPattern {
    /// Shorthand for a variable pattern.
    pub fn var(name: impl Into<String>) -> Self {
        TermPattern::Var(name.into())
    }

    /// Shorthand for an IRI constant pattern.
    pub fn iri(iri: impl Into<String>) -> Self {
        TermPattern::Const(Term::iri(iri))
    }

    /// Whether this is a variable.
    pub fn is_var(&self) -> bool {
        matches!(self, TermPattern::Var(_))
    }

    /// The variable name, if any.
    pub fn as_var(&self) -> Option<&str> {
        match self {
            TermPattern::Var(v) => Some(v),
            _ => None,
        }
    }

    /// The constant term, if any.
    pub fn as_const(&self) -> Option<&Term> {
        match self {
            TermPattern::Const(t) => Some(t),
            _ => None,
        }
    }
}

impl std::fmt::Display for TermPattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TermPattern::Const(t) => write!(f, "{t}"),
            TermPattern::Var(v) => write!(f, "?{v}"),
        }
    }
}

/// One triple pattern of the BGP.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TriplePattern {
    pub subject: TermPattern,
    pub predicate: TermPattern,
    pub object: TermPattern,
}

impl TriplePattern {
    pub fn new(subject: TermPattern, predicate: TermPattern, object: TermPattern) -> Self {
        TriplePattern {
            subject,
            predicate,
            object,
        }
    }

    /// Variables mentioned by this pattern, in s/p/o order, deduplicated.
    pub fn variables(&self) -> Vec<&str> {
        let mut vs = Vec::new();
        for tp in [&self.subject, &self.predicate, &self.object] {
            if let Some(v) = tp.as_var() {
                if !vs.contains(&v) {
                    vs.push(v);
                }
            }
        }
        vs
    }

    /// Number of constant (non-variable) positions; a rough selectivity
    /// signal (paper Section VIII-B: "selective triple patterns").
    pub fn constant_count(&self) -> usize {
        [&self.subject, &self.predicate, &self.object]
            .iter()
            .filter(|t| !t.is_var())
            .count()
    }
}

impl std::fmt::Display for TriplePattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {} {} .", self.subject, self.predicate, self.object)
    }
}

/// A parsed SPARQL BGP query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Query {
    /// Projected variables; empty means `SELECT *`.
    pub select: Vec<String>,
    /// Whether `DISTINCT` was specified.
    pub distinct: bool,
    /// The triple patterns of the WHERE clause.
    pub patterns: Vec<TriplePattern>,
    /// Optional LIMIT.
    pub limit: Option<usize>,
}

impl Query {
    /// All distinct variables across the BGP, in first-occurrence order.
    pub fn variables(&self) -> Vec<&str> {
        let mut vs: Vec<&str> = Vec::new();
        for p in &self.patterns {
            for v in p.variables() {
                if !vs.contains(&v) {
                    vs.push(v);
                }
            }
        }
        vs
    }

    /// The projected variables, defaulting to all variables for `SELECT *`.
    pub fn projection(&self) -> Vec<&str> {
        if self.select.is_empty() {
            self.variables()
        } else {
            self.select.iter().map(String::as_str).collect()
        }
    }
}

impl std::fmt::Display for Query {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SELECT ")?;
        if self.distinct {
            write!(f, "DISTINCT ")?;
        }
        if self.select.is_empty() {
            write!(f, "*")?;
        } else {
            let vars: Vec<String> = self.select.iter().map(|v| format!("?{v}")).collect();
            write!(f, "{}", vars.join(" "))?;
        }
        writeln!(f, " WHERE {{")?;
        for p in &self.patterns {
            writeln!(f, "  {p}")?;
        }
        write!(f, "}}")?;
        if let Some(l) = self.limit {
            write!(f, " LIMIT {l}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> Query {
        // The paper's Section I example query.
        Query {
            select: vec!["p2".into(), "l".into()],
            distinct: false,
            patterns: vec![
                TriplePattern::new(
                    TermPattern::var("t"),
                    TermPattern::iri("http://dbpedia.org/ontology/label"),
                    TermPattern::var("l"),
                ),
                TriplePattern::new(
                    TermPattern::var("p1"),
                    TermPattern::iri("http://dbpedia.org/ontology/influencedBy"),
                    TermPattern::var("p2"),
                ),
                TriplePattern::new(
                    TermPattern::var("p2"),
                    TermPattern::iri("http://dbpedia.org/ontology/mainInterest"),
                    TermPattern::var("t"),
                ),
                TriplePattern::new(
                    TermPattern::var("p1"),
                    TermPattern::iri("http://dbpedia.org/ontology/name"),
                    TermPattern::Const(Term::lang_lit("Crispin Wright", "en")),
                ),
            ],
            limit: None,
        }
    }

    #[test]
    fn variables_in_first_occurrence_order() {
        let q = example();
        assert_eq!(q.variables(), vec!["t", "l", "p1", "p2"]);
    }

    #[test]
    fn projection_defaults_to_all() {
        let mut q = example();
        q.select.clear();
        assert_eq!(q.projection(), vec!["t", "l", "p1", "p2"]);
    }

    #[test]
    fn constant_count_reflects_selectivity() {
        let q = example();
        assert_eq!(q.patterns[0].constant_count(), 1); // predicate only
        assert_eq!(q.patterns[3].constant_count(), 2); // predicate + object
    }

    #[test]
    fn display_roundtrips_through_parser() {
        let q = example();
        let text = q.to_string();
        let q2 = crate::parser::parse_query(&text).unwrap();
        assert_eq!(q, q2);
    }

    #[test]
    fn pattern_variables_dedup() {
        let p = TriplePattern::new(
            TermPattern::var("x"),
            TermPattern::var("p"),
            TermPattern::var("x"),
        );
        assert_eq!(p.variables(), vec!["x", "p"]);
    }
}
