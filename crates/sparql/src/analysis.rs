//! Query shape and selectivity analysis.
//!
//! Section VIII-B of the paper attributes query performance to two factors:
//! the **shape** of the query graph (star queries never cross fragments
//! because every crossing edge is replicated with both endpoints, so a star
//! centered anywhere is fully contained in one fragment) and the presence
//! of **selective triple patterns** (patterns with a constant subject or
//! object, which shrink candidate sets drastically).

use crate::query_graph::QueryGraph;

/// Coarse query-shape classes used by the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryShape {
    /// Every edge is incident to one center vertex.
    Star,
    /// Edges form a single simple path.
    Path,
    /// Contains a cycle.
    Cyclic,
    /// Tree-shaped but not a star or path ("snowflake"-like).
    Tree,
}

/// Full shape report for a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeReport {
    pub shape: QueryShape,
    /// Center vertex for stars.
    pub star_center: Option<usize>,
    /// Whether any triple pattern has a constant subject or object.
    pub has_selective_pattern: bool,
    /// Number of triple patterns with ≥2 constant positions.
    pub selective_pattern_count: usize,
    pub vertex_count: usize,
    pub edge_count: usize,
}

impl ShapeReport {
    /// Stars are evaluated without any distributed machinery (paper
    /// Section VIII-B): all matches are intra-fragment by construction.
    pub fn is_star(&self) -> bool {
        self.shape == QueryShape::Star
    }
}

/// Analyze a query graph's shape and selectivity.
pub fn analyze(q: &QueryGraph) -> ShapeReport {
    let n = q.vertex_count();
    let m = q.edge_count();

    // Star: some vertex is incident to every edge.
    let star_center = (0..n).find(|&c| q.edges().iter().all(|e| e.from == c || e.to == c));

    // Cycle detection on the undirected simple graph; multi-edges between
    // the same pair count as a cycle only if they connect distinct vertices.
    let cyclic = has_undirected_cycle(q);

    // Path: all degrees <= 2 (undirected, counting multi-edges) and acyclic.
    let is_path = !cyclic && (0..n).all(|v| q.degree(v) <= 2);

    let shape = if let Some(_c) = star_center {
        // A single edge is both a star and a path; call it a star, matching
        // the paper's classification of one-triple queries as stars.
        QueryShape::Star
    } else if cyclic {
        QueryShape::Cyclic
    } else if is_path {
        QueryShape::Path
    } else {
        QueryShape::Tree
    };

    let mut has_selective_pattern = false;
    let mut selective_pattern_count = 0;
    for e in q.edges() {
        let sub_const = !q.vertex(e.from).is_var();
        let obj_const = !q.vertex(e.to).is_var();
        if sub_const || obj_const {
            has_selective_pattern = true;
            selective_pattern_count += 1;
        }
    }
    // Class constraints come from `?x rdf:type <Class>` patterns, whose
    // constant object makes them selective.
    for v in 0..n {
        if !q.class_constraints(v).is_empty() {
            has_selective_pattern = true;
            selective_pattern_count += q.class_constraints(v).len();
        }
    }

    ShapeReport {
        shape,
        star_center: if shape == QueryShape::Star {
            star_center
        } else {
            None
        },
        has_selective_pattern,
        selective_pattern_count,
        vertex_count: n,
        edge_count: m,
    }
}

fn has_undirected_cycle(q: &QueryGraph) -> bool {
    let n = q.vertex_count();
    // Union-find over vertices; a cycle exists iff some edge connects two
    // vertices already in the same component (self-loops count).
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], x: usize) -> usize {
        let mut r = x;
        while parent[r] != r {
            r = parent[r];
        }
        let mut c = x;
        while parent[c] != r {
            let next = parent[c];
            parent[c] = r;
            c = next;
        }
        r
    }
    for e in q.edges() {
        if e.from == e.to {
            return true;
        }
        let a = find(&mut parent, e.from);
        let b = find(&mut parent, e.to);
        if a == b {
            return true;
        }
        parent[a] = b;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use crate::query_graph::QueryGraph;

    fn graph(q: &str) -> QueryGraph {
        QueryGraph::from_query(&parse_query(q).unwrap()).unwrap()
    }

    #[test]
    fn star_query_detected() {
        let g =
            graph("SELECT * WHERE { ?x <http://p> ?a . ?x <http://q> ?b . ?x <http://r> ?c . }");
        let r = analyze(&g);
        assert_eq!(r.shape, QueryShape::Star);
        assert_eq!(r.star_center, g.vertex_of_var("x"));
    }

    #[test]
    fn inverse_star_is_still_star() {
        // Edges pointing INTO the center.
        let g = graph("SELECT * WHERE { ?a <http://p> ?x . ?b <http://q> ?x . }");
        assert_eq!(analyze(&g).shape, QueryShape::Star);
    }

    #[test]
    fn single_edge_is_star() {
        let g = graph("SELECT * WHERE { ?a <http://p> ?b . }");
        assert!(analyze(&g).is_star());
    }

    #[test]
    fn path_query_detected() {
        let g =
            graph("SELECT * WHERE { ?a <http://p> ?b . ?b <http://q> ?c . ?c <http://r> ?d . }");
        assert_eq!(analyze(&g).shape, QueryShape::Path);
    }

    #[test]
    fn cyclic_query_detected() {
        // The paper's Fig. 2 query contains the cycle p1-p2-t? No: p1->p2,
        // p2->t, t->l, p1->lit — that is a tree. Build an actual triangle.
        let g =
            graph("SELECT * WHERE { ?a <http://p> ?b . ?b <http://q> ?c . ?c <http://r> ?a . }");
        assert_eq!(analyze(&g).shape, QueryShape::Cyclic);
    }

    #[test]
    fn paper_fig2_is_non_star_with_selective_pattern() {
        let g = graph(
            r#"SELECT ?p2 ?l WHERE {
                ?t <http://o/label> ?l .
                ?p1 <http://o/influencedBy> ?p2 .
                ?p2 <http://o/mainInterest> ?t .
                ?p1 <http://o/name> "Crispin Wright"@en .
            }"#,
        );
        let r = analyze(&g);
        // l - t - p2 - p1 - "Crispin Wright" is a simple path.
        assert_eq!(r.shape, QueryShape::Path);
        assert!(
            !r.is_star(),
            "Fig. 2 query must go through distributed evaluation"
        );
        assert!(r.has_selective_pattern, "constant object = selective");
        assert_eq!(r.selective_pattern_count, 1);
    }

    #[test]
    fn tree_query_detected() {
        // A "snowflake": two stars joined by an edge, degree-3 middle vertex.
        let g = graph(
            "SELECT * WHERE { ?a <http://p> ?x . ?b <http://q> ?x . ?x <http://r> ?y . ?y <http://s> ?c . }",
        );
        assert_eq!(analyze(&g).shape, QueryShape::Tree);
    }

    #[test]
    fn self_loop_is_star_local() {
        // A self-loop is incident to a single vertex, so it shares the
        // star's single-fragment locality (loops are never crossing edges).
        let g = graph("SELECT ?a WHERE { ?a <http://p> ?a }");
        assert!(analyze(&g).is_star());
    }

    #[test]
    fn multi_edge_between_same_pair_is_star_local() {
        let g = graph("SELECT * WHERE { ?a <http://p> ?b . ?a <http://q> ?b . }");
        assert!(analyze(&g).is_star());
    }

    #[test]
    fn unselective_query_flagged() {
        let g = graph("SELECT * WHERE { ?a <http://p> ?b . ?b <http://q> ?c . }");
        let r = analyze(&g);
        assert!(!r.has_selective_pattern);
        assert_eq!(r.selective_pattern_count, 0);
    }
}
