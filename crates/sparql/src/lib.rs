//! # gstored-sparql
//!
//! A from-scratch SPARQL **basic graph pattern** (BGP) front-end for the
//! gstored-rs reproduction. The paper (Section II) evaluates BGP queries
//! only, so this crate implements exactly that fragment:
//!
//! * `PREFIX` declarations,
//! * `SELECT ?v ... | *`,
//! * `WHERE { <triple patterns> }` with `;` (same subject) and `,`
//!   (same subject+predicate) abbreviations,
//! * IRIs (`<...>` or `prefix:local`), variables (`?v` / `$v`), `a` for
//!   `rdf:type`, and literals with `@lang` / `^^datatype`.
//!
//! The parsed query is lowered to a [`QueryGraph`] (Definition 2 of the
//! paper): vertices are constants or variables, edges carry a predicate
//! that is a constant or a variable. [`analysis`] classifies query shape
//! (star vs. other) and detects *selective triple patterns*, the two
//! factors Section VIII-B attributes performance to.

pub mod analysis;
pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod query_graph;

pub use analysis::{QueryShape, ShapeReport};
pub use ast::{Query, TermPattern, TriplePattern};
pub use error::SparqlError;
pub use parser::parse_query;
pub use query_graph::{EdgeLabel, QEdge, QVertex, QVertexId, QueryGraph};

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, SparqlError>;
