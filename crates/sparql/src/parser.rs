//! Recursive-descent parser for the supported SPARQL BGP fragment.

use std::collections::HashMap;

use gstored_rdf::{Literal, Term};

use crate::ast::{Query, TermPattern, TriplePattern};
use crate::error::SparqlError;
use crate::lexer::{tokenize, LiteralDatatype, Token, TokenKind};
use crate::Result;

/// Parse a SPARQL BGP query string into a [`Query`].
pub fn parse_query(input: &str) -> Result<Query> {
    let tokens = tokenize(input)?;
    Parser {
        tokens,
        pos: 0,
        prefixes: HashMap::new(),
    }
    .parse()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    prefixes: HashMap<String, String>,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn offset(&self) -> usize {
        self.tokens[self.pos].offset
    }

    fn bump(&mut self) -> TokenKind {
        let k = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        k
    }

    fn err(&self, message: impl Into<String>) -> SparqlError {
        SparqlError::Parse {
            offset: self.offset(),
            message: message.into(),
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        match self.bump() {
            TokenKind::Keyword(k) if k == kw => Ok(()),
            other => Err(SparqlError::Parse {
                offset: self.tokens[self.pos.saturating_sub(1)].offset,
                message: format!("expected `{kw}`, found {other:?}"),
            }),
        }
    }

    fn parse(mut self) -> Result<Query> {
        // PREFIX declarations.
        while matches!(self.peek(), TokenKind::Keyword(k) if k == "PREFIX" || k == "BASE") {
            let kw = match self.bump() {
                TokenKind::Keyword(k) => k,
                _ => unreachable!(),
            };
            if kw == "BASE" {
                return Err(SparqlError::Unsupported("BASE declarations".into()));
            }
            let (prefix, local) = match self.bump() {
                TokenKind::PrefixedName { prefix, local } => (prefix, local),
                _ => return Err(self.err("expected prefix name after PREFIX")),
            };
            if !local.is_empty() {
                return Err(self.err("prefix declaration must end with ':'"));
            }
            let iri = match self.bump() {
                TokenKind::Iri(iri) => iri,
                _ => return Err(self.err("expected IRI in prefix declaration")),
            };
            self.prefixes.insert(prefix, iri);
        }

        self.expect_keyword("SELECT")?;
        let mut distinct = false;
        if matches!(self.peek(), TokenKind::Keyword(k) if k == "DISTINCT") {
            self.bump();
            distinct = true;
        }
        let mut select = Vec::new();
        match self.peek() {
            TokenKind::Star => {
                self.bump();
            }
            TokenKind::Var(_) => {
                while let TokenKind::Var(v) = self.peek() {
                    let v = v.clone();
                    self.bump();
                    if !select.contains(&v) {
                        select.push(v);
                    }
                }
            }
            _ => return Err(self.err("expected `*` or variables after SELECT")),
        }

        self.expect_keyword("WHERE")?;
        if !matches!(self.peek(), TokenKind::LBrace) {
            return Err(self.err("expected '{' after WHERE"));
        }
        self.bump();

        let patterns = self.parse_bgp()?;

        if !matches!(self.peek(), TokenKind::RBrace) {
            return Err(self.err("expected '}' closing WHERE"));
        }
        self.bump();

        let mut limit = None;
        if matches!(self.peek(), TokenKind::Keyword(k) if k == "LIMIT") {
            self.bump();
            match self.bump() {
                TokenKind::Integer(n) => {
                    limit = Some(
                        n.parse::<usize>()
                            .map_err(|_| self.err("LIMIT out of range"))?,
                    )
                }
                _ => return Err(self.err("expected integer after LIMIT")),
            }
        }

        if !matches!(self.peek(), TokenKind::Eof) {
            return Err(self.err("trailing tokens after query"));
        }

        if patterns.is_empty() {
            return Err(SparqlError::InvalidBgp("empty basic graph pattern".into()));
        }
        let q = Query {
            select,
            distinct,
            patterns,
            limit,
        };
        // Projected variables must occur in the BGP.
        let vars = q.variables();
        for s in &q.select {
            if !vars.contains(&s.as_str()) {
                return Err(SparqlError::InvalidBgp(format!(
                    "projected variable ?{s} does not occur in the pattern"
                )));
            }
        }
        Ok(q)
    }

    /// Parse triple patterns until `}`, handling `;` and `,` abbreviations.
    fn parse_bgp(&mut self) -> Result<Vec<TriplePattern>> {
        let mut patterns = Vec::new();
        while !matches!(self.peek(), TokenKind::RBrace | TokenKind::Eof) {
            let subject = self.parse_term_pattern("subject")?;
            loop {
                let predicate = self.parse_predicate_pattern()?;
                loop {
                    let object = self.parse_term_pattern("object")?;
                    patterns.push(TriplePattern::new(
                        subject.clone(),
                        predicate.clone(),
                        object,
                    ));
                    if matches!(self.peek(), TokenKind::Comma) {
                        self.bump();
                        continue;
                    }
                    break;
                }
                if matches!(self.peek(), TokenKind::Semicolon) {
                    self.bump();
                    // Allow a trailing `;` before `.` or `}`.
                    if matches!(self.peek(), TokenKind::Dot | TokenKind::RBrace) {
                        break;
                    }
                    continue;
                }
                break;
            }
            if matches!(self.peek(), TokenKind::Dot) {
                self.bump();
            } else if !matches!(self.peek(), TokenKind::RBrace) {
                return Err(self.err("expected '.', ';', ',' or '}' after triple pattern"));
            }
        }
        Ok(patterns)
    }

    fn parse_predicate_pattern(&mut self) -> Result<TermPattern> {
        if matches!(self.peek(), TokenKind::A) {
            self.bump();
            return Ok(TermPattern::iri(gstored_rdf::vocab::rdf::TYPE));
        }
        let tp = self.parse_term_pattern("predicate")?;
        match &tp {
            TermPattern::Const(Term::Literal(_)) => {
                Err(self.err("predicate must not be a literal"))
            }
            TermPattern::Const(Term::Blank(_)) => {
                Err(self.err("predicate must not be a blank node"))
            }
            _ => Ok(tp),
        }
    }

    fn parse_term_pattern(&mut self, position: &str) -> Result<TermPattern> {
        let offset = self.offset();
        match self.bump() {
            TokenKind::Var(v) => Ok(TermPattern::Var(v)),
            TokenKind::Iri(iri) => Ok(TermPattern::Const(Term::Iri(iri))),
            TokenKind::PrefixedName { prefix, local } => {
                let base = self
                    .prefixes
                    .get(&prefix)
                    .ok_or_else(|| SparqlError::UnknownPrefix(format!("{prefix}:")))?;
                Ok(TermPattern::Const(Term::Iri(format!("{base}{local}"))))
            }
            TokenKind::A => Ok(TermPattern::iri(gstored_rdf::vocab::rdf::TYPE)),
            TokenKind::Literal {
                lexical,
                language,
                datatype,
            } => {
                let lit = match (language, datatype) {
                    (Some(tag), None) => Literal::lang(lexical, tag),
                    (None, Some(LiteralDatatype::Iri(dt))) => Literal::typed(lexical, dt),
                    (None, Some(LiteralDatatype::Prefixed { prefix, local })) => {
                        let base = self
                            .prefixes
                            .get(&prefix)
                            .ok_or_else(|| SparqlError::UnknownPrefix(format!("{prefix}:")))?;
                        Literal::typed(lexical, format!("{base}{local}"))
                    }
                    (None, None) => Literal::plain(lexical),
                    (Some(_), Some(_)) => unreachable!("lexer never produces both"),
                };
                Ok(TermPattern::Const(Term::Literal(lit)))
            }
            TokenKind::Integer(n) => Ok(TermPattern::Const(Term::Literal(Literal::typed(
                n,
                gstored_rdf::vocab::xsd::INTEGER,
            )))),
            other => Err(SparqlError::Parse {
                offset,
                message: format!("expected {position} term, found {other:?}"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_example_query() {
        // The query from the paper's introduction.
        let q = parse_query(
            r#"SELECT ?p2 ?l WHERE {
                ?t <http://dbpedia.org/ontology/label> ?l .
                ?p1 <http://dbpedia.org/ontology/influencedBy> ?p2 .
                ?p2 <http://dbpedia.org/ontology/mainInterest> ?t .
                ?p1 <http://dbpedia.org/ontology/name> "Crispin Wright"@en .
            }"#,
        )
        .unwrap();
        assert_eq!(q.select, vec!["p2", "l"]);
        assert_eq!(q.patterns.len(), 4);
        assert_eq!(q.variables().len(), 4);
        assert_eq!(
            q.patterns[3].object,
            TermPattern::Const(Term::lang_lit("Crispin Wright", "en"))
        );
    }

    #[test]
    fn parses_prefixes() {
        let q = parse_query(
            "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\n\
             PREFIX : <http://ex/>\n\
             SELECT ?x WHERE { ?x foaf:name :v . }",
        )
        .unwrap();
        assert_eq!(
            q.patterns[0].predicate,
            TermPattern::iri("http://xmlns.com/foaf/0.1/name")
        );
        assert_eq!(q.patterns[0].object, TermPattern::iri("http://ex/v"));
    }

    #[test]
    fn parses_semicolon_and_comma_abbreviations() {
        let q = parse_query(
            "SELECT * WHERE { ?x <http://p> ?a ; <http://q> ?b , ?c . ?y <http://r> ?x }",
        )
        .unwrap();
        assert_eq!(q.patterns.len(), 4);
        assert_eq!(q.patterns[0].subject, q.patterns[1].subject);
        assert_eq!(q.patterns[1].predicate, q.patterns[2].predicate);
        assert_eq!(q.patterns[1].subject, q.patterns[2].subject);
    }

    #[test]
    fn parses_a_shorthand() {
        let q = parse_query("SELECT ?x WHERE { ?x a <http://ex/Person> . }").unwrap();
        assert_eq!(
            q.patterns[0].predicate,
            TermPattern::iri(gstored_rdf::vocab::rdf::TYPE)
        );
    }

    #[test]
    fn parses_distinct_and_limit() {
        let q = parse_query("SELECT DISTINCT ?x WHERE { ?x <http://p> ?y } LIMIT 10").unwrap();
        assert!(q.distinct);
        assert_eq!(q.limit, Some(10));
    }

    #[test]
    fn parses_select_star() {
        let q = parse_query("SELECT * WHERE { ?x <http://p> ?y }").unwrap();
        assert!(q.select.is_empty());
        assert_eq!(q.projection(), vec!["x", "y"]);
    }

    #[test]
    fn variable_predicate_allowed() {
        let q = parse_query("SELECT ?p WHERE { <http://a> ?p <http://b> }").unwrap();
        assert!(q.patterns[0].predicate.is_var());
    }

    #[test]
    fn rejects_unknown_prefix() {
        assert!(matches!(
            parse_query("SELECT ?x WHERE { ?x nope:p ?y }"),
            Err(SparqlError::UnknownPrefix(_))
        ));
    }

    #[test]
    fn rejects_empty_bgp() {
        assert!(matches!(
            parse_query("SELECT ?x WHERE { }"),
            Err(SparqlError::InvalidBgp(_))
        ));
    }

    #[test]
    fn rejects_unbound_projection() {
        assert!(matches!(
            parse_query("SELECT ?z WHERE { ?x <http://p> ?y }"),
            Err(SparqlError::InvalidBgp(_))
        ));
    }

    #[test]
    fn rejects_literal_predicate() {
        assert!(parse_query("SELECT ?x WHERE { ?x \"lit\" ?y }").is_err());
    }

    #[test]
    fn rejects_trailing_tokens() {
        assert!(parse_query("SELECT ?x WHERE { ?x <http://p> ?y } garbage:x").is_err());
    }

    #[test]
    fn integer_objects_become_typed_literals() {
        let q = parse_query("SELECT ?x WHERE { ?x <http://age> 42 }").unwrap();
        match &q.patterns[0].object {
            TermPattern::Const(Term::Literal(l)) => {
                assert_eq!(l.lexical, "42");
                assert_eq!(
                    l.datatype.as_deref(),
                    Some(gstored_rdf::vocab::xsd::INTEGER)
                );
            }
            other => panic!("expected literal, got {other:?}"),
        }
    }

    #[test]
    fn trailing_semicolon_tolerated() {
        let q = parse_query("SELECT ?x WHERE { ?x <http://p> ?y ; . }").unwrap();
        assert_eq!(q.patterns.len(), 1);
    }
}
