//! Hand-written tokenizer for the supported SPARQL BGP fragment.

use crate::error::SparqlError;
use crate::Result;

/// One token, with the byte offset where it starts (for error reporting).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    pub offset: usize,
}

/// Token kinds of the supported fragment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// A keyword, uppercased (`SELECT`, `WHERE`, `PREFIX`, `DISTINCT`, `LIMIT`).
    Keyword(String),
    /// A variable without its `?`/`$` sigil.
    Var(String),
    /// An IRI without angle brackets.
    Iri(String),
    /// A prefixed name `prefix:local`, kept split.
    PrefixedName {
        prefix: String,
        local: String,
    },
    /// The keyword `a` (shorthand for `rdf:type`).
    A,
    /// A literal: lexical form plus optional language or datatype suffix.
    Literal {
        lexical: String,
        language: Option<String>,
        datatype: Option<LiteralDatatype>,
    },
    /// A bare integer (sugar for an xsd:integer literal).
    Integer(String),
    Dot,
    Semicolon,
    Comma,
    LBrace,
    RBrace,
    Star,
    Eof,
}

/// A datatype annotation on a literal: full IRI or prefixed name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LiteralDatatype {
    Iri(String),
    Prefixed { prefix: String, local: String },
}

const KEYWORDS: &[&str] = &["SELECT", "WHERE", "PREFIX", "DISTINCT", "LIMIT", "BASE"];

/// Tokenize a query string.
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    let bytes = input.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'#' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'.' => {
                toks.push(Token {
                    kind: TokenKind::Dot,
                    offset: i,
                });
                i += 1;
            }
            b';' => {
                toks.push(Token {
                    kind: TokenKind::Semicolon,
                    offset: i,
                });
                i += 1;
            }
            b',' => {
                toks.push(Token {
                    kind: TokenKind::Comma,
                    offset: i,
                });
                i += 1;
            }
            b'{' => {
                toks.push(Token {
                    kind: TokenKind::LBrace,
                    offset: i,
                });
                i += 1;
            }
            b'}' => {
                toks.push(Token {
                    kind: TokenKind::RBrace,
                    offset: i,
                });
                i += 1;
            }
            b'*' => {
                toks.push(Token {
                    kind: TokenKind::Star,
                    offset: i,
                });
                i += 1;
            }
            b'?' | b'$' => {
                let start = i;
                i += 1;
                let name_start = i;
                while i < bytes.len() && is_name_char(bytes[i]) {
                    i += 1;
                }
                if i == name_start {
                    return Err(SparqlError::Lex {
                        offset: start,
                        message: "empty variable name".into(),
                    });
                }
                toks.push(Token {
                    kind: TokenKind::Var(input[name_start..i].to_owned()),
                    offset: start,
                });
            }
            b'<' => {
                let start = i;
                i += 1;
                let iri_start = i;
                while i < bytes.len() && bytes[i] != b'>' {
                    if bytes[i] == b' ' || bytes[i] == b'\n' {
                        return Err(SparqlError::Lex {
                            offset: i,
                            message: "whitespace inside IRI".into(),
                        });
                    }
                    i += 1;
                }
                if i >= bytes.len() {
                    return Err(SparqlError::Lex {
                        offset: start,
                        message: "unterminated IRI".into(),
                    });
                }
                toks.push(Token {
                    kind: TokenKind::Iri(input[iri_start..i].to_owned()),
                    offset: start,
                });
                i += 1;
            }
            b'"' | b'\'' => {
                let (tok, next) = lex_literal(input, i)?;
                toks.push(tok);
                i = next;
            }
            b'0'..=b'9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                toks.push(Token {
                    kind: TokenKind::Integer(input[start..i].to_owned()),
                    offset: start,
                });
            }
            _ if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < bytes.len() && is_name_char(bytes[i]) {
                    i += 1;
                }
                // prefixed name?
                if i < bytes.len() && bytes[i] == b':' {
                    let prefix = input[start..i].to_owned();
                    i += 1;
                    let local_start = i;
                    while i < bytes.len() && is_name_char(bytes[i]) {
                        i += 1;
                    }
                    toks.push(Token {
                        kind: TokenKind::PrefixedName {
                            prefix,
                            local: input[local_start..i].to_owned(),
                        },
                        offset: start,
                    });
                    continue;
                }
                let word = &input[start..i];
                let upper = word.to_ascii_uppercase();
                if word == "a" {
                    toks.push(Token {
                        kind: TokenKind::A,
                        offset: start,
                    });
                } else if KEYWORDS.contains(&upper.as_str()) {
                    toks.push(Token {
                        kind: TokenKind::Keyword(upper),
                        offset: start,
                    });
                } else {
                    return Err(SparqlError::Lex {
                        offset: start,
                        message: format!("unexpected word `{word}`"),
                    });
                }
            }
            b':' => {
                // Prefixed name with empty prefix, e.g. `:local`.
                let start = i;
                i += 1;
                let local_start = i;
                while i < bytes.len() && is_name_char(bytes[i]) {
                    i += 1;
                }
                toks.push(Token {
                    kind: TokenKind::PrefixedName {
                        prefix: String::new(),
                        local: input[local_start..i].to_owned(),
                    },
                    offset: start,
                });
            }
            _ => {
                return Err(SparqlError::Lex {
                    offset: i,
                    message: format!("unexpected character `{}`", c as char),
                })
            }
        }
    }
    toks.push(Token {
        kind: TokenKind::Eof,
        offset: input.len(),
    });
    Ok(toks)
}

fn is_name_char(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_' || c == b'-'
}

fn lex_literal(input: &str, start: usize) -> Result<(Token, usize)> {
    let bytes = input.as_bytes();
    let quote = bytes[start];
    let mut i = start + 1;
    let mut lexical = String::new();
    loop {
        if i >= bytes.len() {
            return Err(SparqlError::Lex {
                offset: start,
                message: "unterminated literal".into(),
            });
        }
        match bytes[i] {
            b'\\' => {
                if i + 1 >= bytes.len() {
                    return Err(SparqlError::Lex {
                        offset: i,
                        message: "dangling escape".into(),
                    });
                }
                let esc = bytes[i + 1];
                lexical.push(match esc {
                    b'n' => '\n',
                    b't' => '\t',
                    b'r' => '\r',
                    b'"' => '"',
                    b'\'' => '\'',
                    b'\\' => '\\',
                    _ => {
                        return Err(SparqlError::Lex {
                            offset: i,
                            message: format!("unknown escape `\\{}`", esc as char),
                        })
                    }
                });
                i += 2;
            }
            c if c == quote => {
                i += 1;
                break;
            }
            _ => {
                // Copy the full (possibly multi-byte) char.
                let ch = input[i..].chars().next().expect("in-bounds char");
                lexical.push(ch);
                i += ch.len_utf8();
            }
        }
    }
    // Optional @lang or ^^datatype.
    let mut language = None;
    let mut datatype = None;
    if i < bytes.len() && bytes[i] == b'@' {
        i += 1;
        let tag_start = i;
        while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'-') {
            i += 1;
        }
        if i == tag_start {
            return Err(SparqlError::Lex {
                offset: tag_start,
                message: "empty language tag".into(),
            });
        }
        language = Some(input[tag_start..i].to_ascii_lowercase());
    } else if i + 1 < bytes.len() && bytes[i] == b'^' && bytes[i + 1] == b'^' {
        i += 2;
        if i < bytes.len() && bytes[i] == b'<' {
            i += 1;
            let dt_start = i;
            while i < bytes.len() && bytes[i] != b'>' {
                i += 1;
            }
            if i >= bytes.len() {
                return Err(SparqlError::Lex {
                    offset: dt_start,
                    message: "unterminated datatype IRI".into(),
                });
            }
            datatype = Some(LiteralDatatype::Iri(input[dt_start..i].to_owned()));
            i += 1;
        } else {
            // prefixed datatype like xsd:date
            let p_start = i;
            while i < bytes.len() && is_name_char(bytes[i]) {
                i += 1;
            }
            if i >= bytes.len() || bytes[i] != b':' {
                return Err(SparqlError::Lex {
                    offset: p_start,
                    message: "expected datatype IRI or prefixed name after ^^".into(),
                });
            }
            let prefix = input[p_start..i].to_owned();
            i += 1;
            let l_start = i;
            while i < bytes.len() && is_name_char(bytes[i]) {
                i += 1;
            }
            datatype = Some(LiteralDatatype::Prefixed {
                prefix,
                local: input[l_start..i].to_owned(),
            });
        }
    }
    Ok((
        Token {
            kind: TokenKind::Literal {
                lexical,
                language,
                datatype,
            },
            offset: start,
        },
        i,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<TokenKind> {
        tokenize(input)
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn tokenizes_select_skeleton() {
        let ks = kinds("SELECT ?x WHERE { }");
        assert_eq!(
            ks,
            vec![
                TokenKind::Keyword("SELECT".into()),
                TokenKind::Var("x".into()),
                TokenKind::Keyword("WHERE".into()),
                TokenKind::LBrace,
                TokenKind::RBrace,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn keywords_are_case_insensitive() {
        let ks = kinds("select ?x where { }");
        assert!(matches!(&ks[0], TokenKind::Keyword(k) if k == "SELECT"));
    }

    #[test]
    fn tokenizes_iris_prefixed_names_and_a() {
        let ks = kinds("<http://x/y> foaf:name a :bare");
        assert_eq!(ks[0], TokenKind::Iri("http://x/y".into()));
        assert_eq!(
            ks[1],
            TokenKind::PrefixedName {
                prefix: "foaf".into(),
                local: "name".into()
            }
        );
        assert_eq!(ks[2], TokenKind::A);
        assert_eq!(
            ks[3],
            TokenKind::PrefixedName {
                prefix: String::new(),
                local: "bare".into()
            }
        );
    }

    #[test]
    fn tokenizes_literals() {
        let ks = kinds(r#""plain" "tag"@en "d"^^<http://t> "p"^^xsd:date 42"#);
        assert_eq!(
            ks[0],
            TokenKind::Literal {
                lexical: "plain".into(),
                language: None,
                datatype: None
            }
        );
        assert_eq!(
            ks[1],
            TokenKind::Literal {
                lexical: "tag".into(),
                language: Some("en".into()),
                datatype: None
            }
        );
        assert_eq!(
            ks[2],
            TokenKind::Literal {
                lexical: "d".into(),
                language: None,
                datatype: Some(LiteralDatatype::Iri("http://t".into()))
            }
        );
        assert!(matches!(
            &ks[3],
            TokenKind::Literal {
                datatype: Some(LiteralDatatype::Prefixed { .. }),
                ..
            }
        ));
        assert_eq!(ks[4], TokenKind::Integer("42".into()));
    }

    #[test]
    fn literal_escapes() {
        let ks = kinds(r#""a\"b\nc""#);
        assert_eq!(
            ks[0],
            TokenKind::Literal {
                lexical: "a\"b\nc".into(),
                language: None,
                datatype: None
            }
        );
    }

    #[test]
    fn single_quoted_literals() {
        let ks = kinds("'hello'@en-GB");
        assert_eq!(
            ks[0],
            TokenKind::Literal {
                lexical: "hello".into(),
                language: Some("en-gb".into()),
                datatype: None
            }
        );
    }

    #[test]
    fn comments_are_skipped() {
        let ks = kinds("SELECT # comment ?notatoken\n ?x");
        assert_eq!(ks.len(), 3); // SELECT, ?x, EOF
    }

    #[test]
    fn offsets_point_at_token_start() {
        let toks = tokenize("  ?abc").unwrap();
        assert_eq!(toks[0].offset, 2);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(tokenize("?").is_err());
        assert!(tokenize("<http://unterminated").is_err());
        assert!(tokenize("\"unterminated").is_err());
        assert!(tokenize("@@").is_err());
        assert!(tokenize(r#""bad\qescape""#).is_err());
    }

    #[test]
    fn unicode_literal_content() {
        let ks = kinds("\"héllo \u{1F600}\"");
        assert_eq!(
            ks[0],
            TokenKind::Literal {
                lexical: "héllo \u{1F600}".into(),
                language: None,
                datatype: None
            }
        );
    }
}
