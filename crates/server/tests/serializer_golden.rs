//! Golden-file tests for the four SPARQL result serializers, plus
//! property tests that the lossless formats' escaping round-trips.
//!
//! The committed documents under `tests/golden/` pin the exact bytes the
//! server emits for a fixture covering every term kind, unbound
//! variables, characters each format must escape (quotes, commas, tabs,
//! newlines, XML markup) and non-ASCII text. A serializer change that
//! alters any byte shows up as a golden diff, reviewable in the PR.

use gstored::rdf::{Literal, Term};
use gstored_server::serializer::{
    csv_field, csv_term, parse_tsv_term, split_csv_row, split_tsv_row, tsv_term,
};
use gstored_server::{serialize_rows, ResultFormat};
use proptest::prelude::*;

/// A fixture that exercises every serializer branch: each term kind,
/// an unbound variable, quoting/escaping hazards and unicode.
fn fixture() -> (Vec<String>, Vec<Vec<Option<Term>>>) {
    let variables = ["s", "name", "age", "note"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let rows = vec![
        vec![
            Some(Term::iri("http://example.org/alice")),
            Some(Term::lang_lit("Ali\u{e9}nor \"the 1st\"", "fr")),
            Some(Term::Literal(Literal::typed(
                "42",
                "http://www.w3.org/2001/XMLSchema#integer",
            ))),
            Some(Term::lit("line one\nline two\ttabbed")),
        ],
        vec![
            Some(Term::blank("b0")),
            Some(Term::lit("comma, separated & <tagged>")),
            None,
            Some(Term::lit("")),
        ],
        vec![
            Some(Term::iri("http://example.org/caf\u{e9}")),
            None,
            None,
            None,
        ],
    ];
    (variables, rows)
}

fn serialize_fixture(format: ResultFormat) -> String {
    let (variables, rows) = fixture();
    let borrowed = rows
        .iter()
        .map(|row| row.iter().map(|t| t.as_ref()).collect::<Vec<_>>());
    String::from_utf8(serialize_rows(format, &variables, borrowed)).unwrap()
}

/// Compare against (or, with `UPDATE_GOLDEN=1`, rewrite) a committed
/// golden document.
fn check_golden(name: &str, actual: &str) {
    let path = format!("{}/tests/golden/{name}", env!("CARGO_MANIFEST_DIR"));
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, actual).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path}: {e}"));
    assert_eq!(actual, expected, "{name} drifted from its golden file");
}

fn golden(name: &str) -> String {
    let path = format!("{}/tests/golden/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path}: {e}"))
}

#[test]
fn json_matches_golden() {
    check_golden("results.srj", &serialize_fixture(ResultFormat::Json));
}

#[test]
fn xml_matches_golden() {
    check_golden("results.srx", &serialize_fixture(ResultFormat::Xml));
}

#[test]
fn tsv_matches_golden() {
    check_golden("results.tsv", &serialize_fixture(ResultFormat::Tsv));
}

#[test]
fn csv_matches_golden() {
    check_golden("results.csv", &serialize_fixture(ResultFormat::Csv));
}

#[test]
fn tsv_golden_parses_back_to_the_fixture() {
    let (variables, rows) = fixture();
    let text = golden("results.tsv");
    let mut lines = text.lines();
    let head: Vec<String> = split_tsv_row(lines.next().unwrap())
        .iter()
        .map(|f| f.trim_start_matches('?').to_string())
        .collect();
    assert_eq!(head, variables);
    for (line, row) in lines.zip(&rows) {
        let parsed: Vec<Option<Term>> = split_tsv_row(line)
            .iter()
            .map(|f| parse_tsv_term(f))
            .collect();
        assert_eq!(&parsed, row);
    }
}

/// The character palette the property tests draw term content from:
/// everything the escapers have to defend against, plus unicode. The
/// vendored proptest shim only generates ASCII classes, so strings are
/// built from index vectors into this palette instead.
const PALETTE: &[char] = &[
    'a',
    'Z',
    '0',
    ' ',
    '"',
    '\'',
    ',',
    '\t',
    '\n',
    '\r',
    '\\',
    '<',
    '>',
    '&',
    '@',
    '^',
    '.',
    ':',
    '\u{e9}',
    '\u{4e16}',
    '\u{1f600}',
];

fn palette_string(indices: &[usize]) -> String {
    indices
        .iter()
        .map(|&i| PALETTE[i % PALETTE.len()])
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 512, ..ProptestConfig::default() })]

    #[test]
    fn tsv_plain_literal_roundtrips(indices in prop::collection::vec(0usize..21, 0..24)) {
        let term = Term::lit(palette_string(&indices));
        let field = tsv_term(&term);
        // TSV fields must never contain an unescaped tab or line break,
        // or the row/field structure breaks.
        prop_assert!(!field.contains(['\t', '\n', '\r']));
        prop_assert_eq!(parse_tsv_term(&field), Some(term));
    }

    #[test]
    fn tsv_lang_literal_roundtrips(
        indices in prop::collection::vec(0usize..21, 0..16),
        tag in "[a-z]{2,8}",
    ) {
        let term = Term::lang_lit(palette_string(&indices), &tag);
        prop_assert_eq!(parse_tsv_term(&tsv_term(&term)), Some(term));
    }

    #[test]
    fn tsv_typed_literal_roundtrips(
        indices in prop::collection::vec(0usize..21, 0..16),
        dt in "[a-z]{1,12}",
    ) {
        let term = Term::Literal(Literal::typed(
            palette_string(&indices),
            format!("http://www.w3.org/2001/XMLSchema#{dt}"),
        ));
        prop_assert_eq!(parse_tsv_term(&tsv_term(&term)), Some(term));
    }

    #[test]
    fn tsv_rows_split_cleanly(
        a in prop::collection::vec(0usize..21, 0..12),
        b in prop::collection::vec(0usize..21, 0..12),
    ) {
        let left = Term::lit(palette_string(&a));
        let right = Term::lit(palette_string(&b));
        let row = format!("{}\t{}", tsv_term(&left), tsv_term(&right));
        let fields = split_tsv_row(&row);
        prop_assert_eq!(fields.len(), 2);
        prop_assert_eq!(parse_tsv_term(fields[0]), Some(left));
        prop_assert_eq!(parse_tsv_term(fields[1]), Some(right));
    }

    #[test]
    fn csv_fields_roundtrip_through_a_record(
        a in prop::collection::vec(0usize..21, 0..16),
        b in prop::collection::vec(0usize..21, 0..16),
        c in prop::collection::vec(0usize..21, 0..16),
    ) {
        // CSV is lossy on term *kind* but must preserve field *content*
        // exactly, including embedded commas, quotes and line breaks.
        let values = [palette_string(&a), palette_string(&b), palette_string(&c)];
        let record: Vec<String> = values.iter().map(|v| csv_field(v)).collect();
        let record = record.join(",");
        let split = split_csv_row(&record).expect("balanced quoting");
        prop_assert_eq!(split, values.to_vec());
    }

    #[test]
    fn csv_term_preserves_the_lexical_form(
        indices in prop::collection::vec(0usize..21, 0..24),
    ) {
        let lexical = palette_string(&indices);
        let field = csv_term(&Term::lit(lexical.clone()));
        let split = split_csv_row(&field).expect("balanced quoting");
        prop_assert_eq!(split, vec![lexical]);
    }
}
