//! End-to-end tests over a real TCP socket: the server is started on an
//! ephemeral port and driven with [`gstored_server::client`], asserting
//! the W3C protocol surface (both verbs, all four result formats, the
//! typed error statuses), row equality against the embedded session,
//! overload admission (`429`) and graceful drain on shutdown.

use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use gstored::rdf::{write_ntriples, Term};
use gstored::GStoreD;
use gstored_datagen::lubm::{self, LubmConfig};
use gstored_datagen::queries;
use gstored_server::{
    client, serialize_results, serialize_rows, ResultFormat, ServerConfig, SparqlServer,
};

fn lubm_session() -> GStoreD {
    let triples = lubm::generate(&LubmConfig::with_target_triples(600, 7));
    let mut text = Vec::new();
    write_ntriples(&mut text, &triples).unwrap();
    GStoreD::builder()
        .ntriples(std::str::from_utf8(&text).unwrap())
        .unwrap()
        .build()
        .unwrap()
}

fn start(config: ServerConfig) -> (Arc<GStoreD>, gstored_server::ServerHandle) {
    let session = Arc::new(lubm_session());
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let handle = SparqlServer::new(Arc::clone(&session), config)
        .start(listener)
        .unwrap();
    (session, handle)
}

fn urlencode(s: &str) -> String {
    let mut out = String::new();
    for b in s.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'.' | b'_' | b'~' => {
                out.push(b as char)
            }
            b => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

/// Every format, both verbs: the decoded chunked HTTP body must be
/// byte-identical to running the same serializer over the embedded
/// session's *stream* (`/query` responses stream in assembly order,
/// which is deterministic), and the streamed row set must equal
/// `execute()`'s sorted rows exactly.
#[test]
fn all_formats_row_equal_to_embedded() {
    let (session, handle) = start(ServerConfig::default());
    let query = &queries::lubm_queries()[0].text;
    let results = session.query(query).unwrap();
    assert!(!results.is_empty(), "fixture query must produce rows");
    // The stream's row order is deterministic: same data, same chunking,
    // same arrival-driven join — so the server's chunked body must be
    // byte-equal to serializing this locally collected stream.
    let prepared = session.prepare(query).unwrap();
    let stream_rows: Vec<Vec<Option<&Term>>> = prepared
        .stream()
        .unwrap()
        .map(|sol| {
            let sol = sol.unwrap();
            sol.iter().map(|(_, term)| Some(term)).collect()
        })
        .collect();
    {
        // Same solution *set* as the buffered path (which sorts).
        let mut sorted: Vec<Vec<Option<&Term>>> = stream_rows.clone();
        sorted.sort_by_key(|r| format!("{r:?}"));
        let mut executed: Vec<Vec<Option<&Term>>> = results
            .iter()
            .map(|sol| sol.iter().map(|(_, term)| Some(term)).collect())
            .collect();
        executed.sort_by_key(|r| format!("{r:?}"));
        assert_eq!(sorted, executed, "stream and execute row sets must match");
    }
    for format in ResultFormat::ALL {
        let expected = serialize_rows(format, results.variables(), stream_rows.iter().cloned());
        let path = format!("/query?query={}", urlencode(query));
        let via_get = client::get(handle.addr(), &path, Some(format.media_type())).unwrap();
        assert_eq!(via_get.status, 200, "GET {format:?}");
        assert_eq!(
            via_get.header("content-type"),
            Some(format.content_type()),
            "GET {format:?}"
        );
        assert_eq!(
            via_get.header("transfer-encoding"),
            Some("chunked"),
            "/query responses stream ({format:?})"
        );
        assert_eq!(via_get.body, expected, "GET body {format:?}");

        let via_post = client::post(
            handle.addr(),
            "/query",
            "application/sparql-query",
            query.as_bytes(),
            Some(format.media_type()),
        )
        .unwrap();
        assert_eq!(via_post.status, 200, "POST {format:?}");
        assert_eq!(via_post.body, expected, "POST body {format:?}");
    }
    // Form-encoded POST is the third spec-mandated way in.
    let form = format!("query={}", urlencode(query));
    let reply = client::post(
        handle.addr(),
        "/query",
        "application/x-www-form-urlencoded",
        form.as_bytes(),
        None,
    )
    .unwrap();
    assert_eq!(reply.status, 200);
    assert_eq!(
        reply.body,
        serialize_rows(
            ResultFormat::Json,
            results.variables(),
            stream_rows.iter().cloned()
        )
    );
    // The client sees the terminating chunk a moment before the worker
    // thread increments `streams_completed`; poll briefly.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let counters = handle.counters();
        assert_eq!(counters.streams_cancelled, 0);
        if counters.streams_completed >= 9 {
            assert_eq!(counters.streams_started, counters.streams_completed);
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "9 streamed responses must complete: {counters:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    handle.shutdown();
}

/// An HTTP/1.0 peer cannot take chunked framing: `/query` falls back to
/// the buffered path with a `Content-Length`, and the body is the
/// sorted `execute()` serialization — byte-identical to PR6 behavior.
#[test]
fn http10_gets_the_buffered_content_length_path() {
    let (session, handle) = start(ServerConfig::default());
    let query = &queries::lubm_queries()[0].text;
    let results = session.query(query).unwrap();
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    stream
        .write_all(
            format!(
                "GET /query?query={} HTTP/1.0\r\nHost: test\r\n\
                 Accept: application/sparql-results+json\r\n\r\n",
                urlencode(query)
            )
            .as_bytes(),
        )
        .unwrap();
    let reply = client::read_reply(&mut std::io::BufReader::new(stream)).unwrap();
    assert_eq!(reply.status, 200);
    assert_eq!(reply.header("transfer-encoding"), None);
    assert!(reply.header("content-length").is_some());
    assert_eq!(reply.body, serialize_results(ResultFormat::Json, &results));
    assert_eq!(handle.counters().streams_started, 0);
    handle.shutdown();
}

/// A client that disconnects mid-body must cancel the engine query: the
/// server counts the aborted stream and every worker's query-state
/// table drains back to empty (no leaked admission slot, no resident
/// LPMs).
#[test]
fn client_disconnect_mid_body_cancels_the_query() {
    // A result set far larger than the socket buffers, so the server is
    // still streaming when the client hangs up.
    let triples = lubm::generate(&LubmConfig::with_target_triples(20_000, 7));
    let mut text = Vec::new();
    write_ntriples(&mut text, &triples).unwrap();
    let session = Arc::new(
        GStoreD::builder()
            .ntriples(std::str::from_utf8(&text).unwrap())
            .unwrap()
            .build()
            .unwrap(),
    );
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let handle = SparqlServer::new(Arc::clone(&session), ServerConfig::default())
        .start(listener)
        .unwrap();

    let query =
        "SELECT * WHERE { ?s <http://swat.cse.lehigh.edu/onto/univ-bench.owl#takesCourse> ?c }";
    let stream = TcpStream::connect(handle.addr()).unwrap();
    (&stream)
        .write_all(
            format!(
                "GET /query?query={} HTTP/1.1\r\nHost: test\r\nAccept: text/csv\r\n\r\n",
                urlencode(query)
            )
            .as_bytes(),
        )
        .unwrap();
    // Hang up without reading the body: the server's chunk flushes hit
    // EPIPE once the FIN lands, the write error drops the solution
    // iterator, and its Drop broadcasts CancelQuery.
    drop(stream);

    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let counters = handle.counters();
        let fleet = session.fleet_status().unwrap();
        let drained = fleet
            .iter()
            .all(|s| s.resident_queries == 0 && s.resident_lpms == 0);
        if counters.streams_cancelled >= 1 && counters.in_flight == 0 && drained {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "stream not cancelled/drained: counters={counters:?} fleet={fleet:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    // The fleet is still serviceable after the abort.
    let reply = client::get(
        handle.addr(),
        &format!("/query?query={}", urlencode(&format!("{query} LIMIT 1"))),
        Some("text/csv"),
    )
    .unwrap();
    assert_eq!(reply.status, 200);
    handle.shutdown();
}

#[test]
fn typed_error_statuses_over_the_wire() {
    let (_session, handle) = start(ServerConfig::default());
    let addr = handle.addr();

    let missing = client::get(addr, "/query", None).unwrap();
    assert_eq!(missing.status, 400);
    assert!(missing.body_str().contains("missing-query"));

    let parse = client::get(addr, "/query?query=NOT%20SPARQL", None).unwrap();
    assert_eq!(parse.status, 400);
    assert!(parse.body_str().contains("\"error\":\"parse\""));

    assert_eq!(client::get(addr, "/nowhere", None).unwrap().status, 404);

    let method = client::request(addr, "DELETE", "/query", None, None).unwrap();
    assert_eq!(method.status, 405);
    assert_eq!(method.header("allow"), Some("GET, POST"));

    let accept = client::get(
        addr,
        "/query?query=SELECT%20*%20WHERE%20%7B%20%3Fs%20%3Fp%20%3Fo%20%7D",
        Some("image/png"),
    )
    .unwrap();
    assert_eq!(accept.status, 406);

    let media = client::post(addr, "/query", "text/yaml", b"query: no", None).unwrap();
    assert_eq!(media.status, 415);

    let status = client::get(addr, "/status", None).unwrap();
    assert_eq!(status.status, 200);
    let body = status.body_str();
    assert!(body.contains("\"fleet\":["));
    assert!(body.contains("\"client_errors\":"));
    handle.shutdown();
}

#[test]
fn oversized_bodies_get_413() {
    let mut config = ServerConfig::default();
    config.limits.max_body_bytes = 64;
    let (_session, handle) = start(config);
    let big = "SELECT * WHERE { ?s ?p ?o }".repeat(8);
    let reply = client::post(
        handle.addr(),
        "/query",
        "application/sparql-query",
        big.as_bytes(),
        None,
    )
    .unwrap();
    assert_eq!(reply.status, 413);
    handle.shutdown();
}

/// With a single worker and a one-deep queue, a third concurrent
/// connection must be refused immediately with `429` + `Retry-After` —
/// overload turns into fast rejection, not unbounded queueing.
#[test]
fn overload_yields_fast_429() {
    let (_session, handle) = start(ServerConfig {
        max_concurrent: 1,
        queue_depth: 1,
        read_timeout: Duration::from_secs(2),
        ..ServerConfig::default()
    });
    let addr = handle.addr();
    // Two idle connections: one occupies the single worker (blocked
    // reading a request that never comes), one fills the queue.
    let hold_worker = TcpStream::connect(addr).unwrap();
    std::thread::sleep(Duration::from_millis(150));
    let hold_queue = TcpStream::connect(addr).unwrap();
    std::thread::sleep(Duration::from_millis(150));

    let reply = client::get(addr, "/status", None).unwrap();
    assert_eq!(reply.status, 429, "pool + queue full must reject");
    assert_eq!(reply.header("retry-after"), Some("1"));
    assert!(reply.body_str().contains("overloaded"));

    // Freeing the pool restores service.
    drop(hold_worker);
    drop(hold_queue);
    std::thread::sleep(Duration::from_millis(150));
    assert_eq!(client::get(addr, "/status", None).unwrap().status, 200);
    let counters = handle.counters();
    assert!(counters.rejected >= 1, "429 must be counted");
    handle.shutdown();
}

/// Shutdown must serve the request already on the wire before the
/// workers exit, and refuse service afterwards.
#[test]
fn graceful_shutdown_drains_in_flight() {
    let (_session, handle) = start(ServerConfig {
        max_concurrent: 2,
        read_timeout: Duration::from_secs(5),
        ..ServerConfig::default()
    });
    let addr = handle.addr();
    // Park a request mid-head so a worker is holding it when shutdown
    // starts, then complete it from another thread.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .write_all(b"GET /status HTTP/1.1\r\nHost: test\r\n")
        .unwrap();
    std::thread::sleep(Duration::from_millis(150));
    let finisher = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(200));
        stream.write_all(b"\r\n").unwrap();
        client::read_reply(&mut std::io::BufReader::new(stream)).unwrap()
    });
    handle.shutdown(); // must block until the in-flight response is out
    let reply = finisher.join().unwrap();
    assert_eq!(reply.status, 200);
    assert_eq!(reply.header("connection"), Some("close"));
    assert!(client::get(addr, "/status", None).is_err());
}

/// Two requests over one kept-alive connection get two responses.
#[test]
fn keep_alive_serves_sequential_requests() {
    let (_session, handle) = start(ServerConfig::default());
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    for _ in 0..2 {
        stream
            .write_all(b"GET /status HTTP/1.1\r\nHost: test\r\n\r\n")
            .unwrap();
    }
    let mut reader = std::io::BufReader::new(stream.try_clone().unwrap());
    for _ in 0..2 {
        let reply = client::read_reply(&mut reader).unwrap();
        assert_eq!(reply.status, 200);
        assert_ne!(reply.header("connection"), Some("close"));
    }
    // Close our end before shutdown, or the drain waits out the idle
    // keep-alive worker's read timeout.
    drop(reader);
    drop(stream);
    handle.shutdown();
}

/// A server launched over a `Variant::Auto` session reports the
/// configured policy and — after a query resolves it — the planner's
/// chosen variant in `/status`, and answers queries with the same rows
/// as an explicit-variant server.
#[test]
fn auto_variant_server_reports_planner_choice_in_status() {
    let triples = lubm::generate(&LubmConfig::with_target_triples(600, 7));
    let mut text = Vec::new();
    write_ntriples(&mut text, &triples).unwrap();
    let session = Arc::new(
        GStoreD::builder()
            .ntriples(std::str::from_utf8(&text).unwrap())
            .unwrap()
            .variant(gstored::core::Variant::Auto)
            .build()
            .unwrap(),
    );
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let handle = SparqlServer::new(Arc::clone(&session), ServerConfig::default())
        .start(listener)
        .unwrap();
    let addr = handle.addr();

    let before = client::get(addr, "/status", None).unwrap();
    assert_eq!(before.status, 200);
    let body = String::from_utf8(before.body).unwrap();
    assert!(body.contains("\"variant\":\"gStoreD-Auto\""), "{body}");
    assert!(
        !body.contains("last_planner_choice"),
        "no decision yet: {body}"
    );

    // Drive one query through the wire; the planner resolves it.
    let query = &queries::lubm_queries()[0].text;
    let path = format!("/query?query={}", urlencode(query));
    let reply = client::get(addr, &path, None).unwrap();
    assert_eq!(reply.status, 200);

    let after = client::get(addr, "/status", None).unwrap();
    let body = String::from_utf8(after.body).unwrap();
    assert!(body.contains("\"planner_decisions\":1"), "{body}");
    assert!(body.contains("\"last_planner_choice\":\"gStoreD"), "{body}");

    // Same rows as an explicit-variant server session.
    let (explicit_session, explicit_handle) = start(ServerConfig::default());
    let explicit_reply = client::get(explicit_handle.addr(), &path, None).unwrap();
    assert_eq!(explicit_reply.status, 200);
    let auto_rows = session.query(query).unwrap().len();
    let explicit_rows = explicit_session.query(query).unwrap().len();
    assert_eq!(auto_rows, explicit_rows);

    handle.shutdown();
    explicit_handle.shutdown();
}
