//! A minimal HTTP/1.1 layer over blocking streams.
//!
//! The build environment has no network access, so — following the
//! repo's vendored-shim pattern — the server speaks HTTP through a
//! hand-rolled reader/writer pair instead of hyper/tokio: exactly the
//! subset the SPARQL Protocol needs (request line, headers,
//! `Content-Length` bodies, keep-alive), with hard limits on head and
//! body sizes so a hostile peer can never make the server allocate
//! unboundedly.
//!
//! [`read_request`] parses one request off a [`BufRead`];
//! [`HttpResponse`] renders one response onto a [`Write`]. Both ends are
//! plain `std::io`, so unit tests drive them with in-memory buffers and
//! the server drives them with `TcpStream`s.

use std::io::{BufRead, Read, Write};

/// Hard limits applied while reading a request.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Maximum bytes of request line + headers.
    pub max_head_bytes: usize,
    /// Maximum bytes of body (`Content-Length` above this is rejected
    /// before reading a single body byte).
    pub max_body_bytes: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_head_bytes: 16 * 1024,
            max_body_bytes: 1024 * 1024,
        }
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum RequestError {
    /// The stream failed (or timed out) mid-request.
    Io(std::io::Error),
    /// The bytes were not a well-formed HTTP/1.x request. The string is
    /// safe to echo in a `400` body.
    Malformed(String),
    /// The declared `Content-Length` exceeds [`Limits::max_body_bytes`].
    BodyTooLarge(usize),
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RequestError::Io(e) => write!(f, "i/o error: {e}"),
            RequestError::Malformed(msg) => write!(f, "malformed request: {msg}"),
            RequestError::BodyTooLarge(n) => write!(f, "request body of {n} bytes is too large"),
        }
    }
}

impl std::error::Error for RequestError {}

impl From<std::io::Error> for RequestError {
    fn from(e: std::io::Error) -> Self {
        RequestError::Io(e)
    }
}

/// One parsed HTTP request.
#[derive(Debug, Clone)]
pub struct HttpRequest {
    /// The method verb, uppercase as sent (`GET`, `POST`, ...).
    pub method: String,
    /// The percent-decoded path component of the request target.
    pub path: String,
    /// Decoded `key=value` pairs of the target's query string, in order.
    pub query: Vec<(String, String)>,
    /// Header `(name, value)` pairs; names are lowercased.
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
    /// Whether the request was HTTP/1.0 (keep-alive must be explicit).
    pub http10: bool,
}

impl HttpRequest {
    /// The first header with this (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The first query-string parameter with this name.
    pub fn param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The `Content-Type` without parameters, lowercased
    /// (`application/sparql-query; charset=utf-8` →
    /// `application/sparql-query`).
    pub fn content_type(&self) -> Option<String> {
        self.header("content-type").map(|v| {
            v.split(';')
                .next()
                .unwrap_or("")
                .trim()
                .to_ascii_lowercase()
        })
    }

    /// Whether the connection must close after this exchange
    /// (`Connection: close`, or HTTP/1.0 without `keep-alive`).
    pub fn wants_close(&self) -> bool {
        match self.header("connection") {
            Some(v) if v.eq_ignore_ascii_case("close") => true,
            Some(v) if v.eq_ignore_ascii_case("keep-alive") => false,
            _ => self.http10,
        }
    }
}

/// Read one request off the stream.
///
/// Returns `Ok(None)` on a clean end-of-stream before any request byte —
/// the normal way a keep-alive peer hangs up between requests.
pub fn read_request(
    stream: &mut impl BufRead,
    limits: &Limits,
) -> Result<Option<HttpRequest>, RequestError> {
    let mut head = Vec::new();
    // Read up to the blank line that ends the head, byte-budgeted.
    loop {
        let before = head.len();
        let take = (limits.max_head_bytes + 1).saturating_sub(before);
        let read = stream
            .by_ref()
            .take(take as u64)
            .read_until(b'\n', &mut head)?;
        if read == 0 {
            if before == 0 {
                return Ok(None);
            }
            return Err(RequestError::Malformed("truncated request head".into()));
        }
        if head.len() > limits.max_head_bytes {
            return Err(RequestError::Malformed("request head too large".into()));
        }
        if head.ends_with(b"\r\n\r\n") || head.ends_with(b"\n\n") || head == b"\r\n" {
            break;
        }
    }
    let head = std::str::from_utf8(&head)
        .map_err(|_| RequestError::Malformed("request head is not UTF-8".into()))?;
    let mut lines = head.split("\r\n").flat_map(|l| l.split('\n'));
    let request_line = lines
        .next()
        .ok_or_else(|| RequestError::Malformed("empty request".into()))?;
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or_else(|| RequestError::Malformed("missing method".into()))?
        .to_string();
    let target = parts
        .next()
        .ok_or_else(|| RequestError::Malformed("missing request target".into()))?;
    let version = parts
        .next()
        .ok_or_else(|| RequestError::Malformed("missing HTTP version".into()))?;
    let http10 = match version {
        "HTTP/1.1" => false,
        "HTTP/1.0" => true,
        other => {
            return Err(RequestError::Malformed(format!(
                "unsupported version {other}"
            )))
        }
    };

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| RequestError::Malformed(format!("header without colon: {line}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    let path = percent_decode(raw_path, false)
        .ok_or_else(|| RequestError::Malformed("undecodable path".into()))?;
    let query = raw_query.map(parse_form).unwrap_or_default();

    if headers
        .iter()
        .any(|(k, v)| k == "transfer-encoding" && !v.eq_ignore_ascii_case("identity"))
    {
        return Err(RequestError::Malformed(
            "chunked request bodies are not supported".into(),
        ));
    }
    let mut body = Vec::new();
    if let Some((_, v)) = headers.iter().find(|(k, _)| k == "content-length") {
        let len: usize = v
            .parse()
            .map_err(|_| RequestError::Malformed(format!("bad Content-Length: {v}")))?;
        if len > limits.max_body_bytes {
            return Err(RequestError::BodyTooLarge(len));
        }
        body.resize(len, 0);
        stream.read_exact(&mut body)?;
    }

    Ok(Some(HttpRequest {
        method,
        path,
        query,
        headers,
        body,
        http10,
    }))
}

/// One HTTP response under construction.
///
/// `Content-Length` and `Connection` are added by [`HttpResponse::write_to`];
/// everything else is explicit.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// Status code (the reason phrase comes from [`reason_phrase`]).
    pub status: u16,
    /// Extra headers, in insertion order.
    pub headers: Vec<(String, String)>,
    /// The body bytes.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// An empty response with this status.
    pub fn new(status: u16) -> HttpResponse {
        HttpResponse {
            status,
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    /// Add a header.
    pub fn header(mut self, name: &str, value: impl Into<String>) -> HttpResponse {
        self.headers.push((name.to_string(), value.into()));
        self
    }

    /// Set the body and its `Content-Type`.
    pub fn body(mut self, content_type: &str, body: impl Into<Vec<u8>>) -> HttpResponse {
        self.headers
            .push(("Content-Type".to_string(), content_type.to_string()));
        self.body = body.into();
        self
    }

    /// Render the response (adding `Content-Length`, and
    /// `Connection: close` when `close` is set) and flush it.
    pub fn write_to(&self, stream: &mut impl Write, close: bool) -> std::io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\n",
            self.status,
            reason_phrase(self.status)
        );
        for (name, value) in &self.headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str(&format!("Content-Length: {}\r\n", self.body.len()));
        if close {
            head.push_str("Connection: close\r\n");
        }
        head.push_str("\r\n");
        stream.write_all(head.as_bytes())?;
        stream.write_all(&self.body)?;
        stream.flush()
    }
}

/// Write a response head announcing a `Transfer-Encoding: chunked` body.
///
/// The streaming counterpart of [`HttpResponse::write_to`]: no
/// `Content-Length` — the caller follows up with a [`ChunkedWriter`]
/// over the same stream and must call [`ChunkedWriter::finish`] to
/// terminate the body. Chunked framing is HTTP/1.1-only; for an
/// HTTP/1.0 peer the server falls back to a buffered response.
pub fn write_chunked_head(
    stream: &mut impl Write,
    status: u16,
    content_type: &str,
    close: bool,
) -> std::io::Result<()> {
    let mut head = format!("HTTP/1.1 {} {}\r\n", status, reason_phrase(status));
    head.push_str(&format!("Content-Type: {content_type}\r\n"));
    head.push_str("Transfer-Encoding: chunked\r\n");
    if close {
        head.push_str("Connection: close\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())
}

/// A `Transfer-Encoding: chunked` body encoder over any [`Write`] sink.
///
/// Bytes written accumulate in an internal buffer; once it reaches the
/// threshold they ship as one `{len:x}\r\n…\r\n` chunk, so row-at-a-time
/// writers produce sanely-sized chunks instead of one per row. Zero-size
/// chunks are never emitted mid-body (a zero chunk terminates chunked
/// encoding); [`ChunkedWriter::finish`] flushes the tail and writes the
/// `0\r\n\r\n` terminator. Dropping the writer *without* `finish`
/// deliberately leaves the body unterminated — a client then sees a
/// truncated response rather than a silently complete-looking one, which
/// is exactly what a mid-stream engine failure must look like.
#[derive(Debug)]
pub struct ChunkedWriter<W: Write> {
    sink: W,
    buf: Vec<u8>,
    threshold: usize,
}

/// Default chunk-size threshold: small enough for quick first bytes,
/// large enough to amortize chunk framing.
pub const DEFAULT_CHUNK_THRESHOLD: usize = 8 * 1024;

impl<W: Write> ChunkedWriter<W> {
    /// A writer flushing chunks of about [`DEFAULT_CHUNK_THRESHOLD`].
    pub fn new(sink: W) -> ChunkedWriter<W> {
        ChunkedWriter::with_threshold(sink, DEFAULT_CHUNK_THRESHOLD)
    }

    /// A writer flushing a chunk whenever `threshold` bytes accumulate
    /// (clamped to ≥ 1).
    pub fn with_threshold(sink: W, threshold: usize) -> ChunkedWriter<W> {
        ChunkedWriter {
            sink,
            buf: Vec::new(),
            threshold: threshold.max(1),
        }
    }

    fn flush_chunk(&mut self) -> std::io::Result<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        write!(self.sink, "{:x}\r\n", self.buf.len())?;
        self.sink.write_all(&self.buf)?;
        self.sink.write_all(b"\r\n")?;
        self.buf.clear();
        self.sink.flush()
    }

    /// Flush any buffered tail, write the terminating zero chunk, and
    /// return the sink.
    pub fn finish(mut self) -> std::io::Result<W> {
        self.flush_chunk()?;
        self.sink.write_all(b"0\r\n\r\n")?;
        self.sink.flush()?;
        Ok(self.sink)
    }
}

impl<W: Write> Write for ChunkedWriter<W> {
    fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
        self.buf.extend_from_slice(data);
        if self.buf.len() >= self.threshold {
            self.flush_chunk()?;
        }
        Ok(data.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.flush_chunk()
    }
}

/// Decode a complete `Transfer-Encoding: chunked` body off a stream:
/// `{len:x}\r\n…\r\n` frames up to the `0\r\n\r\n` terminator (trailer
/// headers are consumed and dropped). Chunk sizes are added up against
/// `max_bytes` *before* each allocation, so a hostile peer announcing a
/// colossal chunk cannot make the caller allocate it.
pub fn read_chunked_body(stream: &mut impl BufRead, max_bytes: usize) -> std::io::Result<Vec<u8>> {
    let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());
    let mut body = Vec::new();
    loop {
        let mut size_line = String::new();
        if stream.read_line(&mut size_line)? == 0 {
            return Err(bad("truncated chunked body"));
        }
        // Chunk extensions (`;name=value`) are legal; ignore them.
        let size_text = size_line.trim_end().split(';').next().unwrap_or("").trim();
        let size = usize::from_str_radix(size_text, 16)
            .map_err(|_| bad(&format!("bad chunk size {size_text:?}")))?;
        if size == 0 {
            // Consume optional trailers up to the blank line.
            loop {
                let mut line = String::new();
                if stream.read_line(&mut line)? == 0 {
                    return Err(bad("truncated chunked trailer"));
                }
                if line.trim_end().is_empty() {
                    return Ok(body);
                }
            }
        }
        if body.len().saturating_add(size) > max_bytes {
            return Err(bad(&format!("chunked body exceeds {max_bytes} bytes")));
        }
        let start = body.len();
        body.resize(start + size, 0);
        stream.read_exact(&mut body[start..])?;
        let mut crlf = [0u8; 2];
        stream.read_exact(&mut crlf)?;
        if &crlf != b"\r\n" {
            return Err(bad("chunk data not CRLF-terminated"));
        }
    }
}

/// The standard reason phrase for the status codes this server emits.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        406 => "Not Acceptable",
        413 => "Payload Too Large",
        415 => "Unsupported Media Type",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Percent-decode a string; with `plus_as_space`, `+` decodes to a space
/// (the `application/x-www-form-urlencoded` rule). Returns `None` on a
/// truncated/invalid escape or when the result is not UTF-8.
pub fn percent_decode(s: &str, plus_as_space: bool) -> Option<String> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes.get(i + 1..i + 3)?;
                let hi = (hex[0] as char).to_digit(16)?;
                let lo = (hex[1] as char).to_digit(16)?;
                out.push((hi * 16 + lo) as u8);
                i += 3;
            }
            b'+' if plus_as_space => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).ok()
}

/// Parse an `application/x-www-form-urlencoded` document (also the
/// syntax of a URL query string) into decoded `(key, value)` pairs.
/// Pairs whose key or value fail to decode are dropped — the caller sees
/// a missing parameter, never mojibake.
pub fn parse_form(s: &str) -> Vec<(String, String)> {
    s.split('&')
        .filter(|pair| !pair.is_empty())
        .filter_map(|pair| {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            Some((percent_decode(k, true)?, percent_decode(v, true)?))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Option<HttpRequest>, RequestError> {
        read_request(&mut BufReader::new(raw.as_bytes()), &Limits::default())
    }

    #[test]
    fn parses_get_with_query_string() {
        let req = parse("GET /query?query=SELECT%20*%20WHERE%20%7B%7D&x=1+2 HTTP/1.1\r\nHost: h\r\nAccept: text/csv\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/query");
        assert_eq!(req.param("query"), Some("SELECT * WHERE {}"));
        assert_eq!(req.param("x"), Some("1 2"));
        assert_eq!(req.header("accept"), Some("text/csv"));
        assert_eq!(req.header("ACCEPT"), Some("text/csv"));
        assert!(!req.wants_close());
    }

    #[test]
    fn parses_post_body_by_content_length() {
        let req = parse(
            "POST /query HTTP/1.1\r\nContent-Type: application/sparql-query\r\nContent-Length: 17\r\n\r\nSELECT * WHERE {}",
        )
        .unwrap()
        .unwrap();
        assert_eq!(req.body, b"SELECT * WHERE {}");
        assert_eq!(
            req.content_type().as_deref(),
            Some("application/sparql-query")
        );
    }

    #[test]
    fn content_type_strips_parameters() {
        let req = parse(
            "POST /query HTTP/1.1\r\nContent-Type: Application/SPARQL-Query; charset=UTF-8\r\n\r\n",
        )
        .unwrap()
        .unwrap();
        assert_eq!(
            req.content_type().as_deref(),
            Some("application/sparql-query")
        );
    }

    #[test]
    fn clean_eof_is_none_truncated_is_error() {
        assert!(parse("").unwrap().is_none());
        assert!(matches!(
            parse("GET / HTTP/1.1\r\nHost: h"),
            Err(RequestError::Malformed(_))
        ));
    }

    #[test]
    fn rejects_oversized_head_and_body() {
        let huge = format!("GET / HTTP/1.1\r\nX: {}\r\n\r\n", "a".repeat(20_000));
        assert!(matches!(parse(&huge), Err(RequestError::Malformed(_))));
        let big_body = "POST /query HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n";
        assert!(matches!(
            parse(big_body),
            Err(RequestError::BodyTooLarge(999999999))
        ));
    }

    #[test]
    fn rejects_chunked_and_bad_versions() {
        assert!(matches!(
            parse("POST /query HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            Err(RequestError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET / HTTP/2\r\n\r\n"),
            Err(RequestError::Malformed(_))
        ));
    }

    #[test]
    fn connection_semantics() {
        let http10 = parse("GET / HTTP/1.0\r\n\r\n").unwrap().unwrap();
        assert!(http10.wants_close(), "HTTP/1.0 defaults to close");
        let keep = parse("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(!keep.wants_close());
        let close = parse("GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(close.wants_close());
    }

    #[test]
    fn response_renders_with_length_and_close() {
        let mut out = Vec::new();
        HttpResponse::new(429)
            .header("Retry-After", "1")
            .body("text/plain", "busy")
            .write_to(&mut out, true)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.contains("Content-Length: 4\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\nbusy"));
    }

    #[test]
    fn chunked_writer_round_trips_through_the_decoder() {
        let mut w = ChunkedWriter::with_threshold(Vec::new(), 4);
        w.write_all(b"hello ").unwrap();
        w.write_all(b"chunked ").unwrap();
        w.write_all(b"world").unwrap();
        let encoded = w.finish().unwrap();
        let text = String::from_utf8(encoded.clone()).unwrap();
        assert!(text.ends_with("0\r\n\r\n"), "terminator present: {text:?}");
        let decoded = read_chunked_body(&mut BufReader::new(encoded.as_slice()), 1024).unwrap();
        assert_eq!(decoded, b"hello chunked world");
    }

    #[test]
    fn chunked_writer_emits_nothing_for_an_empty_body_but_still_terminates() {
        let w = ChunkedWriter::new(Vec::new());
        let encoded = w.finish().unwrap();
        assert_eq!(encoded, b"0\r\n\r\n");
        let decoded = read_chunked_body(&mut BufReader::new(encoded.as_slice()), 1024).unwrap();
        assert!(decoded.is_empty());
    }

    #[test]
    fn chunked_decoder_rejects_hostile_and_truncated_bodies() {
        // A colossal announced size fails before allocation.
        let huge = b"ffffffffff\r\n".as_slice();
        assert!(read_chunked_body(&mut BufReader::new(huge), 1024).is_err());
        // Sum-of-chunks cap.
        let mut w = ChunkedWriter::with_threshold(Vec::new(), 1);
        w.write_all(b"0123456789").unwrap();
        let encoded = w.finish().unwrap();
        assert!(read_chunked_body(&mut BufReader::new(encoded.as_slice()), 5).is_err());
        // Truncation (no terminator) is an error, not a short body.
        assert!(read_chunked_body(&mut BufReader::new(b"5\r\nhel".as_slice()), 1024).is_err());
        assert!(read_chunked_body(&mut BufReader::new(b"".as_slice()), 1024).is_err());
        // Garbage size line.
        assert!(read_chunked_body(&mut BufReader::new(b"xyz\r\n".as_slice()), 1024).is_err());
    }

    #[test]
    fn chunked_head_announces_transfer_encoding() {
        let mut out = Vec::new();
        write_chunked_head(&mut out, 200, "text/csv; charset=utf-8", true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Transfer-Encoding: chunked\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(!text.contains("Content-Length"));
        assert!(text.ends_with("\r\n\r\n"));
    }

    #[test]
    fn percent_decoding_edge_cases() {
        assert_eq!(percent_decode("a%2Bb", false).as_deref(), Some("a+b"));
        assert_eq!(percent_decode("a+b", true).as_deref(), Some("a b"));
        assert_eq!(percent_decode("a+b", false).as_deref(), Some("a+b"));
        assert_eq!(percent_decode("%E2%82%AC", false).as_deref(), Some("€"));
        assert_eq!(percent_decode("%zz", false), None, "bad hex");
        assert_eq!(percent_decode("%e2", false), None, "invalid UTF-8");
        assert_eq!(percent_decode("%2", false), None, "truncated escape");
    }

    #[test]
    fn form_parsing_drops_undecodable_pairs() {
        let pairs = parse_form("query=SELECT+1&bad=%zz&flag");
        assert_eq!(
            pairs,
            vec![
                ("query".to_string(), "SELECT 1".to_string()),
                ("flag".to_string(), String::new()),
            ]
        );
    }
}
