#![deny(missing_docs)]
//! # gstored-server
//!
//! The W3C [SPARQL Protocol](https://www.w3.org/TR/sparql11-protocol/)
//! HTTP front-end for the gStoreD engine: the layer that turns the
//! embedded [`gstored::GStoreD`] session — a crate — into a service that
//! external clients hit with `curl`. Built entirely over
//! `std::net::TcpListener` (the build environment has no network access,
//! so no hyper/tokio; the repo's vendored-shim discipline applies to
//! servers too).
//!
//! The crate is four layers, one module each:
//!
//! * [`http`] — a bounded hand-rolled HTTP/1.1 reader/writer.
//! * [`mod@negotiate`] — the four result formats + `Accept` negotiation.
//! * [`serializer`] — streaming SPARQL JSON/XML/TSV/CSV result writers
//!   (the `sparesults` shape: head once, then row by row).
//! * [`admission`] + [`server`] — the bounded worker pool and queue that
//!   turn overload into immediate `429`s, the endpoint routing, and
//!   graceful shutdown; [`shutdown`] adds the SIGINT/SIGTERM hook the
//!   `gstored-server` binary uses; [`client`] is the tiny blocking HTTP
//!   client the tests and the `bench-pr6` harness drive it with.
//!
//! Every concurrent HTTP request runs as one of the session's
//! multiplexed queries (PR 5's query-id runtime): the HTTP pool admits
//! at most `max_concurrent` requests, each of which occupies one
//! engine admission slot while it executes, over one shared worker
//! fleet. See `docs/http.md` for the endpoint and status-code
//! reference, and `ARCHITECTURE.md` for how the server maps onto the
//! concurrency model.

pub mod admission;
pub mod client;
pub mod http;
pub mod negotiate;
pub mod serializer;
pub mod server;
pub mod shutdown;

pub use admission::{BoundedQueue, CountersSnapshot, ServerCounters};
pub use http::{HttpRequest, HttpResponse};
pub use negotiate::{negotiate, ResultFormat};
pub use serializer::{serialize_results, serialize_rows, SolutionWriter};
pub use server::{ServerConfig, ServerHandle, SparqlServer};
