//! SPARQL result formats and `Accept`-header content negotiation.
//!
//! The server serializes a result set in the four W3C formats; the
//! client picks one through the standard `Accept` dance (media ranges
//! with `q`-weights, wildcards, and the usual loose aliases like
//! `application/json`). Ties and `*/*` resolve in server preference
//! order — JSON first, the format every SPARQL client library reads.

/// One of the four result serializations the server can produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResultFormat {
    /// SPARQL 1.1 Query Results JSON (`application/sparql-results+json`).
    Json,
    /// SPARQL Query Results XML (`application/sparql-results+xml`).
    Xml,
    /// SPARQL 1.1 Query Results TSV (`text/tab-separated-values`).
    Tsv,
    /// SPARQL 1.1 Query Results CSV (`text/csv`).
    Csv,
}

impl ResultFormat {
    /// Every format, in server preference order (most preferred first).
    pub const ALL: [ResultFormat; 4] = [
        ResultFormat::Json,
        ResultFormat::Xml,
        ResultFormat::Tsv,
        ResultFormat::Csv,
    ];

    /// The canonical media type, without parameters.
    pub fn media_type(self) -> &'static str {
        match self {
            ResultFormat::Json => "application/sparql-results+json",
            ResultFormat::Xml => "application/sparql-results+xml",
            ResultFormat::Tsv => "text/tab-separated-values",
            ResultFormat::Csv => "text/csv",
        }
    }

    /// The `Content-Type` header value responses carry.
    pub fn content_type(self) -> &'static str {
        match self {
            ResultFormat::Json => "application/sparql-results+json",
            ResultFormat::Xml => "application/sparql-results+xml",
            ResultFormat::Tsv => "text/tab-separated-values; charset=utf-8",
            ResultFormat::Csv => "text/csv; charset=utf-8",
        }
    }

    /// A short lowercase name (`json`/`xml`/`tsv`/`csv`), used by CLI
    /// flags and log lines.
    pub fn name(self) -> &'static str {
        match self {
            ResultFormat::Json => "json",
            ResultFormat::Xml => "xml",
            ResultFormat::Tsv => "tsv",
            ResultFormat::Csv => "csv",
        }
    }

    /// Parse a short name (the inverse of [`ResultFormat::name`]).
    pub fn from_name(name: &str) -> Option<ResultFormat> {
        ResultFormat::ALL
            .into_iter()
            .find(|f| f.name() == name.to_ascii_lowercase())
    }

    /// Whether a media range (already lowercased, no parameters) matches
    /// this format.
    fn matches(self, range: &str) -> bool {
        if range == "*/*" || range == self.media_type() {
            return true;
        }
        match self {
            ResultFormat::Json => {
                matches!(range, "application/*" | "application/json" | "text/json")
            }
            ResultFormat::Xml => matches!(range, "application/xml" | "text/xml"),
            ResultFormat::Tsv => matches!(range, "text/*" | "text/tsv"),
            ResultFormat::Csv => false,
        }
    }
}

impl std::fmt::Display for ResultFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.media_type())
    }
}

/// Pick the response format for an `Accept` header.
///
/// A missing or empty header means "anything" and yields JSON. `Err`
/// carries the offending header for the `406 Not Acceptable` body.
///
/// ```
/// use gstored_server::negotiate::{negotiate, ResultFormat};
///
/// assert_eq!(negotiate(None), Ok(ResultFormat::Json));
/// assert_eq!(negotiate(Some("text/csv")), Ok(ResultFormat::Csv));
/// assert_eq!(
///     negotiate(Some("text/csv;q=0.5, application/sparql-results+xml")),
///     Ok(ResultFormat::Xml)
/// );
/// assert!(negotiate(Some("image/png")).is_err());
/// ```
pub fn negotiate(accept: Option<&str>) -> Result<ResultFormat, String> {
    let header = match accept.map(str::trim) {
        None | Some("") => return Ok(ResultFormat::Json),
        Some(h) => h,
    };
    let mut best: Option<(f32, usize, ResultFormat)> = None;
    for item in header.split(',') {
        let mut parts = item.split(';');
        let range = match parts.next() {
            Some(r) => r.trim().to_ascii_lowercase(),
            None => continue,
        };
        if range.is_empty() {
            continue;
        }
        let q: f32 = parts
            .filter_map(|p| p.trim().strip_prefix("q=").map(str::trim))
            .next()
            .and_then(|v| v.parse::<f32>().ok())
            .unwrap_or(1.0)
            .clamp(0.0, 1.0);
        if q == 0.0 {
            continue;
        }
        for (pref, format) in ResultFormat::ALL.into_iter().enumerate() {
            if !format.matches(&range) {
                continue;
            }
            // Prefer higher q; break ties by server preference order.
            let better = match best {
                None => true,
                Some((bq, bpref, _)) => q > bq || (q == bq && pref < bpref),
            };
            if better {
                best = Some((q, pref, format));
            }
        }
    }
    best.map(|(_, _, f)| f).ok_or_else(|| header.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_media_types_win() {
        for f in ResultFormat::ALL {
            assert_eq!(negotiate(Some(f.media_type())), Ok(f));
        }
    }

    #[test]
    fn wildcard_and_missing_default_to_json() {
        assert_eq!(negotiate(None), Ok(ResultFormat::Json));
        assert_eq!(negotiate(Some("*/*")), Ok(ResultFormat::Json));
        assert_eq!(negotiate(Some("")), Ok(ResultFormat::Json));
        assert_eq!(negotiate(Some("application/*")), Ok(ResultFormat::Json));
    }

    #[test]
    fn aliases_resolve() {
        assert_eq!(negotiate(Some("application/json")), Ok(ResultFormat::Json));
        assert_eq!(negotiate(Some("text/xml")), Ok(ResultFormat::Xml));
        assert_eq!(negotiate(Some("text/*")), Ok(ResultFormat::Tsv));
    }

    #[test]
    fn q_values_rank_choices() {
        assert_eq!(
            negotiate(Some("text/csv;q=0.9, text/tab-separated-values;q=0.4")),
            Ok(ResultFormat::Csv)
        );
        assert_eq!(
            negotiate(Some("text/csv;q=0, */*;q=0.1")),
            Ok(ResultFormat::Json),
            "q=0 excludes csv; wildcard falls back to json"
        );
        assert_eq!(
            negotiate(Some("text/csv; q=1, application/sparql-results+json")),
            Ok(ResultFormat::Json),
            "tie resolves by server preference"
        );
    }

    #[test]
    fn unservable_header_is_an_error() {
        let err = negotiate(Some("image/png, audio/ogg;q=0.5")).unwrap_err();
        assert!(err.contains("image/png"));
    }

    #[test]
    fn names_roundtrip() {
        for f in ResultFormat::ALL {
            assert_eq!(ResultFormat::from_name(f.name()), Some(f));
            assert_eq!(ResultFormat::from_name(&f.name().to_uppercase()), Some(f));
        }
        assert_eq!(ResultFormat::from_name("yaml"), None);
    }
}
