//! Admission control for the HTTP front-end.
//!
//! The server runs a **bounded worker pool** (`max_concurrent` handler
//! threads) fed by a **bounded queue** of accepted connections
//! ([`BoundedQueue`], capacity `queue_depth`). Overload therefore has
//! exactly one behavior: when every worker is busy *and* the queue is
//! full, [`BoundedQueue::push`] refuses immediately and the accept loop
//! answers `429 Too Many Requests` with a `Retry-After` hint — a fast,
//! cheap rejection instead of unbounded queueing and latency collapse.
//! Admitted requests wait at most `queue_depth` service times, which is
//! what keeps their latency flat under overload (the property
//! `BENCH_PR6.json`'s overload cell measures).
//!
//! The queue composes with the session's own [`QueryExecutor`]
//! admission: the pool never runs more than `max_concurrent` requests,
//! so sizing the session's `max_concurrent_queries` to match means the
//! engine-side gate never queues behind the HTTP-side one.
//!
//! [`QueryExecutor`]: gstored::core::runtime::QueryExecutor

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};

/// A close-aware bounded MPMC queue.
///
/// `push` never blocks (bounded admission must reject, not stall the
/// accept loop); `pop` blocks until an item arrives or the queue is
/// closed **and** drained — graceful shutdown serves everything that
/// was admitted before the close.
#[derive(Debug)]
pub struct BoundedQueue<T> {
    state: Mutex<QueueState<T>>,
    available: Condvar,
    depth: usize,
}

#[derive(Debug)]
struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `depth` pending items.
    pub fn new(depth: usize) -> BoundedQueue<T> {
        BoundedQueue {
            state: Mutex::new(QueueState {
                items: VecDeque::with_capacity(depth),
                closed: false,
            }),
            available: Condvar::new(),
            depth,
        }
    }

    /// The configured capacity.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Items currently waiting.
    pub fn pending(&self) -> usize {
        self.state
            .lock()
            .expect("admission queue poisoned")
            .items
            .len()
    }

    /// Enqueue without blocking. Returns the item back when the queue is
    /// full or closed — the caller turns that into the 429.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut state = self.state.lock().expect("admission queue poisoned");
        if state.closed || state.items.len() >= self.depth {
            return Err(item);
        }
        state.items.push_back(item);
        drop(state);
        self.available.notify_one();
        Ok(())
    }

    /// Dequeue, blocking while the queue is open and empty. `None` means
    /// closed and fully drained — the worker's signal to exit.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("admission queue poisoned");
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self
                .available
                .wait(state)
                .expect("admission queue poisoned");
        }
    }

    /// Close the queue: pushes start failing, pops drain what is left
    /// and then return `None`.
    pub fn close(&self) {
        self.state.lock().expect("admission queue poisoned").closed = true;
        self.available.notify_all();
    }
}

/// Monotonic counters of everything the server decided, shared between
/// the accept loop, the workers and `GET /status`.
#[derive(Debug, Default)]
pub struct ServerCounters {
    /// Connections handed to the worker pool.
    pub admitted: AtomicU64,
    /// Connections refused with `429` because the queue was full.
    pub rejected: AtomicU64,
    /// Requests answered, by coarse outcome.
    pub ok: AtomicU64,
    /// Client errors answered (`4xx`).
    pub client_errors: AtomicU64,
    /// Server errors answered (`5xx`).
    pub server_errors: AtomicU64,
    /// Requests currently being handled by a worker.
    pub in_flight: AtomicU64,
    /// Chunked-transfer `/query` responses started.
    pub streams_started: AtomicU64,
    /// Streamed responses that ran to their terminating chunk.
    pub streams_completed: AtomicU64,
    /// Streamed responses cut short mid-body (client disconnect or
    /// engine failure) — each one also cancelled its engine query.
    pub streams_cancelled: AtomicU64,
}

/// A point-in-time copy of [`ServerCounters`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CountersSnapshot {
    /// Connections handed to the worker pool.
    pub admitted: u64,
    /// Connections refused with `429`.
    pub rejected: u64,
    /// `2xx` responses sent.
    pub ok: u64,
    /// `4xx` responses sent.
    pub client_errors: u64,
    /// `5xx` responses sent.
    pub server_errors: u64,
    /// Requests currently in a worker.
    pub in_flight: u64,
    /// Chunked-transfer `/query` responses started.
    pub streams_started: u64,
    /// Streamed responses that ran to their terminating chunk.
    pub streams_completed: u64,
    /// Streamed responses cut short mid-body (and engine-cancelled).
    pub streams_cancelled: u64,
}

impl ServerCounters {
    /// Snapshot every counter.
    pub fn snapshot(&self) -> CountersSnapshot {
        CountersSnapshot {
            admitted: self.admitted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            ok: self.ok.load(Ordering::Relaxed),
            client_errors: self.client_errors.load(Ordering::Relaxed),
            server_errors: self.server_errors.load(Ordering::Relaxed),
            in_flight: self.in_flight.load(Ordering::Relaxed),
            streams_started: self.streams_started.load(Ordering::Relaxed),
            streams_completed: self.streams_completed.load(Ordering::Relaxed),
            streams_cancelled: self.streams_cancelled.load(Ordering::Relaxed),
        }
    }

    /// Record one response's status code.
    pub fn record_status(&self, status: u16) {
        let counter = match status {
            200..=299 => &self.ok,
            400..=499 => &self.client_errors,
            _ => &self.server_errors,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn push_rejects_when_full_and_pop_drains_fifo() {
        let q = BoundedQueue::new(2);
        assert!(q.push(1).is_ok());
        assert!(q.push(2).is_ok());
        assert_eq!(q.push(3), Err(3), "full queue bounces the item back");
        assert_eq!(q.pending(), 2);
        assert_eq!(q.pop(), Some(1));
        assert!(q.push(3).is_ok(), "slot freed");
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
    }

    #[test]
    fn close_drains_then_ends() {
        let q = BoundedQueue::new(4);
        q.push("a").unwrap();
        q.close();
        assert_eq!(q.push("b"), Err("b"), "closed queue admits nothing");
        assert_eq!(q.pop(), Some("a"), "already-admitted work still served");
        assert_eq!(q.pop(), None, "drained + closed ends the workers");
    }

    #[test]
    fn pop_blocks_until_push_or_close() {
        let q = BoundedQueue::new(1);
        let served = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    scope.spawn(|| {
                        while q.pop().is_some() {
                            served.fetch_add(1, Ordering::SeqCst);
                        }
                    })
                })
                .collect();
            for _ in 0..5 {
                // Depth 1: retry until a worker drains the slot.
                let mut item = 7;
                while let Err(back) = q.push(item) {
                    item = back;
                    std::thread::yield_now();
                }
            }
            while served.load(Ordering::SeqCst) < 5 {
                std::thread::yield_now();
            }
            q.close();
            for h in handles {
                h.join().unwrap();
            }
        });
        assert_eq!(served.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn counters_classify_statuses() {
        let c = ServerCounters::default();
        c.record_status(200);
        c.record_status(400);
        c.record_status(404);
        c.record_status(500);
        let snap = c.snapshot();
        assert_eq!(snap.ok, 1);
        assert_eq!(snap.client_errors, 2);
        assert_eq!(snap.server_errors, 1);
    }
}
