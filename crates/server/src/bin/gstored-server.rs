//! The gStoreD SPARQL-Protocol server binary.
//!
//! ```text
//! gstored-server load <data.nt> [--sites K] [--partitioner hash|semantic|metis]
//! gstored-server serve [--data <data.nt>] [--bind HOST:PORT]
//!                      [--sites K] [--partitioner hash|semantic|metis]
//!                      [--variant basic|la|lo|full|auto]
//!                      [--max-concurrent N] [--queue-depth N]
//!                      [--workers addr,addr,...]
//! ```
//!
//! `load` is a dry run: parse the N-Triples document, partition it and
//! print what a server would hold — a fast way to validate data and
//! compare partitioners before serving. `serve` stands the HTTP endpoint
//! up (default `127.0.0.1:7878`) over in-process site workers, or —
//! with `--workers` — over remote `gstored-worker` processes (one
//! address per fragment; `--sites` is then the worker count).
//!
//! `SIGINT`/`SIGTERM` shut down gracefully: stop accepting, drain
//! admitted requests, release the worker fleet, exit 0.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use gstored::prelude::*;
use gstored_server::{shutdown, ServerConfig, SparqlServer};

const USAGE: &str = "usage:
  gstored-server load <data.nt> [--sites K] [--partitioner hash|semantic|metis]
  gstored-server serve [--data <data.nt>] [--bind HOST:PORT]
                       [--sites K] [--partitioner hash|semantic|metis]
                       [--variant basic|la|lo|full|auto]
                       [--max-concurrent N] [--queue-depth N]
                       [--workers addr,addr,...]";

struct Args {
    command: String,
    data: Option<String>,
    bind: String,
    sites: usize,
    partitioner: String,
    variant: String,
    max_concurrent: usize,
    queue_depth: usize,
    workers: Vec<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut it = std::env::args().skip(1);
    let command = it.next().ok_or("missing command")?;
    let mut args = Args {
        command,
        data: None,
        bind: "127.0.0.1:7878".to_string(),
        sites: 3,
        partitioner: "hash".to_string(),
        variant: "full".to_string(),
        max_concurrent: 8,
        queue_depth: 16,
        workers: Vec::new(),
    };
    let need = |it: &mut dyn Iterator<Item = String>, flag: &str| {
        it.next().ok_or(format!("{flag} needs a value"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--data" => args.data = Some(need(&mut it, "--data")?),
            "--bind" => args.bind = need(&mut it, "--bind")?,
            "--sites" => {
                args.sites = need(&mut it, "--sites")?
                    .parse()
                    .map_err(|_| "--sites needs a number".to_string())?;
            }
            "--partitioner" => args.partitioner = need(&mut it, "--partitioner")?,
            "--variant" => args.variant = need(&mut it, "--variant")?,
            "--max-concurrent" => {
                args.max_concurrent = need(&mut it, "--max-concurrent")?
                    .parse()
                    .map_err(|_| "--max-concurrent needs a number".to_string())?;
            }
            "--queue-depth" => {
                args.queue_depth = need(&mut it, "--queue-depth")?
                    .parse()
                    .map_err(|_| "--queue-depth needs a number".to_string())?;
            }
            "--workers" => {
                args.workers = need(&mut it, "--workers")?
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect();
            }
            positional if args.command == "load" && args.data.is_none() => {
                args.data = Some(positional.to_string());
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok(args)
}

fn partitioner(name: &str, sites: usize) -> Result<Box<dyn Partitioner>, String> {
    match name {
        "hash" => Ok(Box::new(HashPartitioner::new(sites))),
        "semantic" => Ok(Box::new(SemanticHashPartitioner::new(sites))),
        "metis" => Ok(Box::new(MetisLikePartitioner::new(sites))),
        other => Err(format!(
            "unknown partitioner {other} (hash, semantic or metis)"
        )),
    }
}

fn variant(name: &str) -> Result<Variant, String> {
    match name {
        "basic" => Ok(Variant::Basic),
        "la" => Ok(Variant::LecAssembly),
        "lo" => Ok(Variant::LecOptimization),
        "full" => Ok(Variant::Full),
        "auto" => Ok(Variant::Auto),
        other => Err(format!(
            "unknown variant {other} (basic, la, lo, full or auto)"
        )),
    }
}

fn build_session(args: &Args) -> Result<GStoreD, String> {
    let sites = if args.workers.is_empty() {
        args.sites
    } else {
        args.workers.len()
    };
    let mut builder = GStoreD::builder()
        .partitioner_boxed(partitioner(&args.partitioner, sites)?)
        .variant(variant(&args.variant)?)
        .max_concurrent_queries(args.max_concurrent.max(1));
    if let Some(path) = &args.data {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        builder = builder
            .ntriples(&text)
            .map_err(|e| format!("{path}: {e}"))?;
    }
    if !args.workers.is_empty() {
        builder = builder.tcp_workers(args.workers.clone());
    }
    builder.build().map_err(|e| e.to_string())
}

fn cmd_load(args: &Args) -> Result<(), String> {
    if args.data.is_none() {
        return Err("load needs an N-Triples file".to_string());
    }
    let db = build_session(args)?;
    let dist = db.distributed_graph();
    println!(
        "loaded {}: {} terms, {} fragments ({} partitioner)",
        args.data.as_deref().unwrap_or("?"),
        db.dictionary().len(),
        dist.fragment_count(),
        args.partitioner,
    );
    for (site, fragment) in dist.fragments.iter().enumerate() {
        println!(
            "  site {site}: {} internal vertices, {} crossing edges",
            fragment.internal.len(),
            fragment.crossing_edges.len(),
        );
    }
    Ok(())
}

fn cmd_serve(args: &Args) -> Result<(), String> {
    let session = Arc::new(build_session(args)?);
    let listener = std::net::TcpListener::bind(&args.bind)
        .map_err(|e| format!("cannot bind {}: {e}", args.bind))?;
    let config = ServerConfig {
        max_concurrent: args.max_concurrent.max(1),
        queue_depth: args.queue_depth,
        ..ServerConfig::default()
    };
    shutdown::install_handlers();
    let handle = SparqlServer::new(Arc::clone(&session), config)
        .start(listener)
        .map_err(|e| format!("starting server: {e}"))?;
    eprintln!(
        "gstored-server: SPARQL endpoint on http://{} ({} fragments, {} backend, \
         {} workers / queue {})",
        handle.addr(),
        session.fragment_count(),
        if args.workers.is_empty() {
            "in-process"
        } else {
            "tcp"
        },
        args.max_concurrent.max(1),
        args.queue_depth,
    );
    eprintln!(
        "gstored-server: try  curl 'http://{}/status'",
        handle.addr()
    );
    while !shutdown::requested() {
        std::thread::sleep(Duration::from_millis(100));
    }
    eprintln!("gstored-server: signal received, draining in-flight requests");
    let counters = handle.counters();
    handle.shutdown();
    eprintln!(
        "gstored-server: served {} ok / {} client errors / {} server errors, \
         rejected {} with 429; bye",
        counters.ok, counters.client_errors, counters.server_errors, counters.rejected,
    );
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("gstored-server: {e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match args.command.as_str() {
        "load" => cmd_load(&args),
        "serve" => cmd_serve(&args),
        "--help" | "-h" | "help" => {
            eprintln!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => Err(format!("unknown command {other}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("gstored-server: {e}\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}
