//! A minimal blocking HTTP/1.1 client.
//!
//! Just enough to drive [`crate::SparqlServer`] from the integration
//! tests, the HTTP benchmarks, and quick scripts — one request per
//! connection (`Connection: close`), bodies read by `Content-Length`,
//! `Transfer-Encoding: chunked` (the server's streaming `/query`
//! responses), or to end-of-stream. Not a general HTTP client and not
//! trying to be one.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};

/// One parsed HTTP response.
#[derive(Debug, Clone)]
pub struct HttpReply {
    /// The status code.
    pub status: u16,
    /// Header `(name, value)` pairs, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The body bytes.
    pub body: Vec<u8>,
}

impl HttpReply {
    /// The first header with this (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (lossy).
    pub fn body_str(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Issue a `GET` for `path` (which may carry a query string) with an
/// optional `Accept` header.
pub fn get(addr: SocketAddr, path: &str, accept: Option<&str>) -> std::io::Result<HttpReply> {
    request(addr, "GET", path, accept, None)
}

/// Issue a `POST` with a body and its `Content-Type`, plus an optional
/// `Accept` header.
pub fn post(
    addr: SocketAddr,
    path: &str,
    content_type: &str,
    body: &[u8],
    accept: Option<&str>,
) -> std::io::Result<HttpReply> {
    request(addr, "POST", path, accept, Some((content_type, body)))
}

/// Issue one request on a fresh connection and read the full response.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    accept: Option<&str>,
    body: Option<(&str, &[u8])>,
) -> std::io::Result<HttpReply> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    let mut head = format!("{method} {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n");
    if let Some(accept) = accept {
        head.push_str(&format!("Accept: {accept}\r\n"));
    }
    if let Some((content_type, body)) = body {
        head.push_str(&format!(
            "Content-Type: {content_type}\r\nContent-Length: {}\r\n",
            body.len()
        ));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    if let Some((_, body)) = body {
        stream.write_all(body)?;
    }
    stream.flush()?;
    read_reply(&mut BufReader::new(stream))
}

/// Parse a response off a buffered stream.
pub fn read_reply(reader: &mut impl BufRead) -> std::io::Result<HttpReply> {
    let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad(&format!("bad status line: {status_line:?}")))?;
    let mut headers = Vec::new();
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(bad("truncated response head"));
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| bad(&format!("bad header line: {line:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let chunked = headers
        .iter()
        .any(|(k, v)| k == "transfer-encoding" && v.eq_ignore_ascii_case("chunked"));
    let length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .and_then(|(_, v)| v.parse::<usize>().ok());
    let mut body = Vec::new();
    if chunked {
        body = crate::http::read_chunked_body(reader, MAX_REPLY_BYTES)?;
    } else {
        match length {
            Some(length) => {
                body.resize(length, 0);
                reader.read_exact(&mut body)?;
            }
            None => {
                reader.read_to_end(&mut body)?;
            }
        }
    }
    Ok(HttpReply {
        status,
        headers,
        body,
    })
}

/// Cap on a decoded chunked reply — a test/bench client never needs
/// more, and a runaway stream should fail loudly rather than OOM.
const MAX_REPLY_BYTES: usize = 256 * 1024 * 1024;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_canned_response() {
        let raw = "HTTP/1.1 200 OK\r\nContent-Type: text/csv\r\nContent-Length: 5\r\n\r\nhello";
        let reply = read_reply(&mut BufReader::new(raw.as_bytes())).unwrap();
        assert_eq!(reply.status, 200);
        assert_eq!(reply.header("content-type"), Some("text/csv"));
        assert_eq!(reply.body_str(), "hello");
    }

    #[test]
    fn reads_to_eof_without_content_length() {
        let raw = "HTTP/1.1 500 Internal Server Error\r\n\r\noops";
        let reply = read_reply(&mut BufReader::new(raw.as_bytes())).unwrap();
        assert_eq!(reply.status, 500);
        assert_eq!(reply.body_str(), "oops");
    }

    #[test]
    fn rejects_garbage() {
        assert!(read_reply(&mut BufReader::new("not http".as_bytes())).is_err());
    }

    #[test]
    fn decodes_chunked_bodies() {
        let raw = "HTTP/1.1 200 OK\r\nContent-Type: text/csv\r\n\
                   Transfer-Encoding: chunked\r\n\r\n\
                   6\r\nhello \r\n5\r\nworld\r\n0\r\n\r\n";
        let reply = read_reply(&mut BufReader::new(raw.as_bytes())).unwrap();
        assert_eq!(reply.status, 200);
        assert_eq!(reply.header("transfer-encoding"), Some("chunked"));
        assert_eq!(reply.body_str(), "hello world");
    }

    #[test]
    fn truncated_chunked_body_is_an_error_not_a_short_reply() {
        let raw = "HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n6\r\nhel";
        assert!(read_reply(&mut BufReader::new(raw.as_bytes())).is_err());
    }
}
