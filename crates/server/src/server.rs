//! The SPARQL-Protocol HTTP server.
//!
//! [`SparqlServer`] binds a [`GStoreD`] session behind the W3C SPARQL
//! Protocol: `GET /query?query=…` and `POST /query` (raw
//! `application/sparql-query` or form-encoded bodies), with
//! `Accept`-negotiated result serialization, plus the `GET /status` and
//! `GET /health` observability endpoints. Requests flow through the
//! admission layer of [`crate::admission`]: a bounded worker pool serves
//! connections from a bounded queue, and overload is answered with an
//! immediate `429`.
//!
//! Error mapping is typed and deliberate:
//!
//! | Condition | Status |
//! |---|---|
//! | parse / prepare failure (the query's fault) | `400` + JSON body |
//! | unknown path | `404` |
//! | method other than GET/POST on `/query` | `405` + `Allow` |
//! | no servable format in `Accept` | `406` |
//! | body too large | `413` |
//! | POST with an unsupported `Content-Type` | `415` |
//! | worker pool and queue full | `429` + `Retry-After` |
//! | deadline expiry / site unavailable | `503` + `Retry-After` |
//! | any other engine failure during execution | `500` + JSON body |
//!
//! Neither a `500` nor a `503` takes the fleet down with it: the session
//! repairs an implicated site in place (reconnect + fragment re-install)
//! and only tears the fleet down on protocol desynchronization, so one
//! query's failure is one response, not an outage. The `503`s are the
//! *graceful degradation* surface — they tell clients the condition is
//! transient and when to come back, while `/health` reports per-site
//! liveness for load balancers.

use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use gstored::core::EngineError;
use gstored::rdf::Term;
use gstored::{Error, GStoreD};

use crate::admission::{BoundedQueue, CountersSnapshot, ServerCounters};
use crate::http::{
    read_request, write_chunked_head, ChunkedWriter, HttpRequest, HttpResponse, Limits,
    RequestError,
};
use crate::negotiate::{negotiate, ResultFormat};
use crate::serializer::{json_escape, serialize_results, SolutionWriter};

/// Server knobs. The defaults match the session's: 8 concurrent
/// requests, a 16-deep pending queue.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads — the number of requests served at once. Keep it
    /// at or below the session's `max_concurrent_queries` so the HTTP
    /// pool, not the engine gate, is where requests wait.
    pub max_concurrent: usize,
    /// Accepted connections allowed to wait for a worker; beyond this,
    /// `429`.
    pub queue_depth: usize,
    /// The `Retry-After` hint (seconds) on `429` responses.
    pub retry_after_secs: u32,
    /// Per-connection socket read timeout. Bounds how long an idle
    /// keep-alive connection can hold a worker (and therefore how long
    /// graceful shutdown can take).
    pub read_timeout: Duration,
    /// HTTP parsing limits (head/body sizes).
    pub limits: Limits,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_concurrent: 8,
            queue_depth: 16,
            retry_after_secs: 1,
            read_timeout: Duration::from_secs(30),
            limits: Limits::default(),
        }
    }
}

/// A SPARQL-Protocol HTTP front-end over one shared [`GStoreD`] session.
///
/// ```
/// use std::sync::Arc;
/// use gstored::GStoreD;
/// use gstored_server::{ServerConfig, SparqlServer};
///
/// let session = GStoreD::builder()
///     .ntriples("<http://ex/a> <http://ex/p> <http://ex/b> .")?
///     .build()?;
/// let server = SparqlServer::new(Arc::new(session), ServerConfig::default());
/// let handle = server.start(std::net::TcpListener::bind("127.0.0.1:0")?)?;
///
/// let reply = gstored_server::client::get(
///     handle.addr(),
///     "/query?query=SELECT%20*%20WHERE%20%7B%20%3Fs%20%3Chttp://ex/p%3E%20%3Fo%20%7D",
///     Some("application/sparql-results+json"),
/// )?;
/// assert_eq!(reply.status, 200);
/// assert!(reply.body_str().contains("http://ex/b"));
/// handle.shutdown();
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct SparqlServer {
    session: Arc<GStoreD>,
    config: ServerConfig,
}

impl SparqlServer {
    /// Wrap a session with a server configuration.
    pub fn new(session: Arc<GStoreD>, config: ServerConfig) -> SparqlServer {
        SparqlServer { session, config }
    }

    /// Spawn the accept loop and worker pool on `listener` and return
    /// the running server's handle.
    pub fn start(self, listener: TcpListener) -> std::io::Result<ServerHandle> {
        let addr = listener.local_addr()?;
        // Poll accept so the loop also notices the shutdown flag; the
        // interval only bounds shutdown latency, not request latency.
        listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let queue = Arc::new(BoundedQueue::new(self.config.queue_depth.max(1)));
        let counters = Arc::new(ServerCounters::default());
        let config = Arc::new(self.config);
        let session = self.session;

        let mut workers = Vec::with_capacity(config.max_concurrent.max(1));
        for _ in 0..config.max_concurrent.max(1) {
            let queue = Arc::clone(&queue);
            let session = Arc::clone(&session);
            let counters = Arc::clone(&counters);
            let config = Arc::clone(&config);
            let shutdown = Arc::clone(&shutdown);
            workers.push(std::thread::spawn(move || {
                while let Some(stream) = queue.pop() {
                    serve_connection(&session, &config, &counters, &queue, &shutdown, stream);
                }
            }));
        }

        let accept = {
            let queue = Arc::clone(&queue);
            let counters = Arc::clone(&counters);
            let config = Arc::clone(&config);
            let shutdown = Arc::clone(&shutdown);
            std::thread::spawn(move || {
                while !shutdown.load(Ordering::SeqCst) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            let _ = stream.set_read_timeout(Some(config.read_timeout));
                            let _ = stream.set_nodelay(true);
                            match queue.push(stream) {
                                Ok(()) => {
                                    counters.admitted.fetch_add(1, Ordering::Relaxed);
                                }
                                Err(mut stream) => {
                                    counters.rejected.fetch_add(1, Ordering::Relaxed);
                                    let _ = reject_overload(&config, &mut stream);
                                }
                            }
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        Err(_) => {
                            // Transient accept failures (e.g. a peer that
                            // reset mid-handshake) are not fatal.
                            std::thread::sleep(Duration::from_millis(5));
                        }
                    }
                }
            })
        };

        Ok(ServerHandle {
            addr,
            shutdown,
            queue,
            counters,
            accept: Some(accept),
            workers,
        })
    }
}

/// The fast-path refusal the accept loop writes when the pool and queue
/// are both full.
fn reject_overload(config: &ServerConfig, stream: &mut TcpStream) -> std::io::Result<()> {
    HttpResponse::new(429)
        .header("Retry-After", config.retry_after_secs.to_string())
        .body(
            "application/json",
            format!(
                "{{\"error\":\"overloaded\",\"message\":\"request queue is full; retry after \
                 {}s\"}}",
                config.retry_after_secs
            ),
        )
        .write_to(stream, true)
}

/// A running server: its bound address and the shutdown control.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    queue: Arc<BoundedQueue<TcpStream>>,
    counters: Arc<ServerCounters>,
    accept: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server is listening on (with the real port when
    /// bound to port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Snapshot of the admission/outcome counters.
    pub fn counters(&self) -> CountersSnapshot {
        self.counters.snapshot()
    }

    /// Whether shutdown has been requested.
    pub fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Request shutdown without waiting: stop accepting and close the
    /// queue. [`ServerHandle::shutdown`] (or dropping the handle) still
    /// has to run to join the threads.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Graceful shutdown: stop accepting new connections, serve
    /// everything already admitted (in-flight requests run to
    /// completion, queued connections get one response), then join every
    /// thread. The session itself — and with it the worker fleet — is
    /// released when the last `Arc<GStoreD>` holder drops it.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        // After the accept loop exits nothing new can be pushed; close
        // so workers drain the queue and then stop.
        self.queue.close();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Serve one admitted connection: requests in sequence (keep-alive)
/// until the peer closes, asks to close, errors, or shutdown starts.
fn serve_connection(
    session: &GStoreD,
    config: &ServerConfig,
    counters: &ServerCounters,
    queue: &BoundedQueue<TcpStream>,
    shutdown: &AtomicBool,
    stream: TcpStream,
) {
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut stream = stream;
    loop {
        let request = match read_request(&mut reader, &config.limits) {
            Ok(Some(request)) => request,
            Ok(None) => return,
            Err(RequestError::Io(_)) => return,
            Err(e) => {
                let status = match e {
                    RequestError::BodyTooLarge(_) => 413,
                    _ => 400,
                };
                let response = error_response(status, "bad-request", &e.to_string());
                counters.record_status(status);
                let _ = response.write_to(&mut stream, true);
                return;
            }
        };
        counters.in_flight.fetch_add(1, Ordering::Relaxed);
        // During shutdown, finish this response but do not keep the
        // connection alive — the worker has a queue to drain.
        let close = request.wants_close() || shutdown.load(Ordering::SeqCst);
        // Successful `/query` responses stream (chunked transfer, bounded
        // memory) when the peer speaks HTTP/1.1; everything else — other
        // endpoints, errors, HTTP/1.0 peers — goes out buffered.
        let streamable = request.path == "/query"
            && matches!(request.method.as_str(), "GET" | "POST")
            && !request.http10;
        let outcome = if streamable {
            stream_query(session, counters, &request, &mut stream, close)
        } else {
            let response = handle_request(session, counters, queue, &request);
            counters.record_status(response.status);
            response.write_to(&mut stream, close)
        };
        counters.in_flight.fetch_sub(1, Ordering::Relaxed);
        if outcome.is_err() || close {
            return;
        }
    }
}

/// Route one parsed request to its endpoint.
pub(crate) fn handle_request(
    session: &GStoreD,
    counters: &ServerCounters,
    queue: &BoundedQueue<TcpStream>,
    request: &HttpRequest,
) -> HttpResponse {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/") => HttpResponse::new(200).body(
            "text/plain; charset=utf-8",
            "gstored-server: W3C SPARQL Protocol endpoint\n\
             \n\
             GET  /query?query=<urlencoded sparql>\n\
             POST /query   (application/sparql-query or \
             application/x-www-form-urlencoded)\n\
             GET  /status  (admission + fleet occupancy + robustness counters as JSON)\n\
             GET  /health  (per-site liveness; 503 when degraded)\n\
             \n\
             Result formats via Accept: application/sparql-results+json, \
             application/sparql-results+xml, text/tab-separated-values, \
             text/csv\n",
        ),
        ("GET", "/query") | ("POST", "/query") => match extract_query(request) {
            Ok(query) => run_query(session, request, &query),
            Err(resp) => *resp,
        },
        ("GET", "/status") => status_response(session, counters, queue),
        ("GET", "/health") => health_response(session),
        (_, "/query") | (_, "/status") | (_, "/health") | (_, "/") => {
            HttpResponse::new(405).header("Allow", "GET, POST").body(
                "application/json",
                format!(
                    "{{\"error\":\"method-not-allowed\",\"message\":\"{} is not supported \
                     here\"}}",
                    json_escape(&request.method)
                ),
            )
        }
        (_, path) => error_response(404, "not-found", &format!("no endpoint at {path}")),
    }
}

/// The `/query` endpoint's SPARQL text per the W3C protocol (GET
/// parameter, raw `application/sparql-query` body, or form field), or
/// the typed error response when the request carries none.
fn extract_query(request: &HttpRequest) -> Result<String, Box<HttpResponse>> {
    match request.method.as_str() {
        "GET" => match request.param("query") {
            Some(query) => Ok(query.to_string()),
            None => Err(Box::new(error_response(
                400,
                "missing-query",
                "GET /query needs a ?query= parameter",
            ))),
        },
        _ => match request.content_type().as_deref() {
            Some("application/sparql-query") => match std::str::from_utf8(&request.body) {
                Ok(query) => Ok(query.to_string()),
                Err(_) => Err(Box::new(error_response(
                    400,
                    "bad-request",
                    "query body is not UTF-8",
                ))),
            },
            Some("application/x-www-form-urlencoded") => {
                let form = std::str::from_utf8(&request.body)
                    .map(crate::http::parse_form)
                    .unwrap_or_default();
                match form.into_iter().find(|(k, _)| k == "query") {
                    Some((_, query)) => Ok(query),
                    None => Err(Box::new(error_response(
                        400,
                        "missing-query",
                        "form body has no query= field",
                    ))),
                }
            }
            other => Err(Box::new(error_response(
                415,
                "unsupported-media-type",
                &format!(
                    "POST /query takes application/sparql-query or \
                     application/x-www-form-urlencoded, not {}",
                    other.unwrap_or("an unspecified Content-Type")
                ),
            ))),
        },
    }
}

/// Record and write one buffered response on the streaming path.
fn send_buffered(
    counters: &ServerCounters,
    stream: &mut TcpStream,
    response: HttpResponse,
    close: bool,
) -> std::io::Result<()> {
    counters.record_status(response.status);
    response.write_to(stream, close)
}

/// Serve one `/query` request with a **streamed** response: solutions
/// flow from the engine's [`gstored::QuerySolutionIter`] straight
/// through a [`SolutionWriter`] into chunked transfer encoding, so the
/// response needs coordinator memory proportional to the join frontier,
/// never to the result set.
///
/// Everything that fails *before the first byte* (bad request, parse
/// error, no acceptable format, engine refusing to start) still goes out
/// as an ordinary buffered error response. Once the `200` head is on the
/// wire the only honest failure mode is truncation: the chunked body is
/// left unterminated and the connection closes, and — crucially — the
/// returned error drops the solution iterator, whose `Drop` broadcasts
/// `CancelQuery` so a disconnected client's query stops occupying the
/// fleet. `streams_cancelled` counts exactly those mid-body aborts.
fn stream_query(
    session: &GStoreD,
    counters: &ServerCounters,
    request: &HttpRequest,
    stream: &mut TcpStream,
    close: bool,
) -> std::io::Result<()> {
    let query = match extract_query(request) {
        Ok(query) => query,
        Err(resp) => return send_buffered(counters, stream, *resp, close),
    };
    let format = match negotiate(request.header("accept")) {
        Ok(format) => format,
        Err(header) => {
            let resp = error_response(
                406,
                "not-acceptable",
                &format!(
                    "no servable result format in Accept: {header} (supported: {})",
                    ResultFormat::ALL.map(|f| f.media_type()).join(", ")
                ),
            );
            return send_buffered(counters, stream, resp, close);
        }
    };
    let prepared = match session.prepare(&query) {
        Ok(prepared) => prepared,
        Err(Error::Parse(e)) => {
            return send_buffered(
                counters,
                stream,
                error_response(400, "parse", &e.to_string()),
                close,
            )
        }
        Err(e) => {
            return send_buffered(
                counters,
                stream,
                error_response(400, "unsupported", &e.to_string()),
                close,
            )
        }
    };
    let mut solutions = match prepared.stream() {
        Ok(solutions) => solutions,
        Err(e) => return send_buffered(counters, stream, engine_error_response(&e), close),
    };
    counters.streams_started.fetch_add(1, Ordering::Relaxed);
    counters.record_status(200);
    let variables = solutions.variables().to_vec();
    let outcome: std::io::Result<()> = (|| {
        write_chunked_head(stream, 200, format.content_type(), close)?;
        let chunker = ChunkedWriter::new(&mut *stream);
        let mut writer = SolutionWriter::start(chunker, format, &variables)?;
        for solution in &mut solutions {
            let solution = solution.map_err(|e| std::io::Error::other(format!("engine: {e}")))?;
            let terms: Vec<Option<&Term>> = solution.iter().map(|(_, term)| Some(term)).collect();
            writer.write_row(&terms)?;
        }
        writer.finish()?.finish()?;
        Ok(())
    })();
    match outcome {
        Ok(()) => {
            counters.streams_completed.fetch_add(1, Ordering::Relaxed);
            Ok(())
        }
        Err(e) => {
            // Dropping `solutions` below cancels the engine query.
            counters.streams_cancelled.fetch_add(1, Ordering::Relaxed);
            Err(e)
        }
    }
}

/// Parse, execute and serialize one SPARQL query (the buffered path:
/// unit harnesses and HTTP/1.0 peers, which cannot take chunked
/// framing).
fn run_query(session: &GStoreD, request: &HttpRequest, query: &str) -> HttpResponse {
    let format = match negotiate(request.header("accept")) {
        Ok(format) => format,
        Err(header) => {
            return error_response(
                406,
                "not-acceptable",
                &format!(
                    "no servable result format in Accept: {header} (supported: {})",
                    ResultFormat::ALL.map(|f| f.media_type()).join(", ")
                ),
            )
        }
    };
    // Prepare-time failures (parse, lowering, encoding, shape analysis)
    // are the query's fault: typed 400. Execution failures are ours: 500.
    let prepared = match session.prepare(query) {
        Ok(prepared) => prepared,
        Err(Error::Parse(e)) => return error_response(400, "parse", &e.to_string()),
        Err(e) => return error_response(400, "unsupported", &e.to_string()),
    };
    match prepared.execute() {
        Ok(results) => {
            HttpResponse::new(200).body(format.content_type(), serialize_results(format, &results))
        }
        Err(e) => engine_error_response(&e),
    }
}

/// The `Retry-After` hint (seconds) on degradation `503`s: long enough
/// for the session's capped-backoff repair sequence to complete.
const DEGRADED_RETRY_AFTER_SECS: u32 = 2;

/// Map an execution failure to its HTTP status. Deadline expiry and an
/// unrepairable site are *degradation*, not breakage: the session has
/// already repaired (or is repairing) the implicated site, so a retry is
/// likely to succeed — `503` + `Retry-After` tells the client exactly
/// that. Anything else is an honest `500`.
fn engine_error_response(e: &Error) -> HttpResponse {
    match e {
        Error::Engine(
            err @ (EngineError::Timeout { .. } | EngineError::SiteUnavailable { .. }),
        ) => HttpResponse::new(503)
            .header("Retry-After", DEGRADED_RETRY_AFTER_SECS.to_string())
            .body(
                "application/json",
                format!(
                    "{{\"error\":\"degraded\",\"message\":\"{}\"}}",
                    json_escape(&err.to_string())
                ),
            ),
        e => error_response(500, "engine", &e.to_string()),
    }
}

/// The `GET /health` document: per-site liveness from
/// [`GStoreD::site_health`] probes. `200` with `"status":"ok"` when
/// every site answers; `503` + `Retry-After` with `"status":"degraded"`
/// (and the per-site errors) when any does not — the shape load
/// balancers and orchestration health checks expect.
fn health_response(session: &GStoreD) -> HttpResponse {
    let health = match session.site_health() {
        Ok(health) => health,
        Err(e) => {
            return HttpResponse::new(503)
                .header("Retry-After", DEGRADED_RETRY_AFTER_SECS.to_string())
                .body(
                    "application/json",
                    format!(
                        "{{\"status\":\"down\",\"message\":\"{}\"}}",
                        json_escape(&e.to_string())
                    ),
                )
        }
    };
    let all_alive = health.iter().all(|h| h.is_alive());
    let sites: Vec<String> = health
        .iter()
        .map(|h| match &h.error {
            None => format!("{{\"site\":{},\"alive\":true}}", h.site),
            Some(err) => format!(
                "{{\"site\":{},\"alive\":false,\"error\":\"{}\"}}",
                h.site,
                json_escape(err)
            ),
        })
        .collect();
    let body = format!(
        "{{\"status\":\"{}\",\"sites\":[{}]}}",
        if all_alive { "ok" } else { "degraded" },
        sites.join(",")
    );
    if all_alive {
        HttpResponse::new(200).body("application/json", body)
    } else {
        HttpResponse::new(503)
            .header("Retry-After", DEGRADED_RETRY_AFTER_SECS.to_string())
            .body("application/json", body)
    }
}

/// The `GET /status` document: HTTP admission state, session counters,
/// failure-handling (robustness) counters and per-site fleet occupancy.
fn status_response(
    session: &GStoreD,
    counters: &ServerCounters,
    queue: &BoundedQueue<TcpStream>,
) -> HttpResponse {
    let snap = counters.snapshot();
    let stats = session.stats();
    let robustness = session.robustness_stats();
    // A fleet that cannot be probed (a site is down) must not take the
    // observability endpoint with it — counters still answer, and the
    // probe failure itself is reported in place of the per-site table.
    let fleet_field = match session.fleet_status() {
        Ok(fleet) => {
            let sites: Vec<String> = fleet
                .iter()
                .enumerate()
                .map(|(site, s)| {
                    format!(
                        "{{\"site\":{site},\"resident_queries\":{},\"resident_lpms\":{},\
                         \"capacity\":{},\"evictions\":{},\"ttl_evictions\":{}}}",
                        s.resident_queries,
                        s.resident_lpms,
                        s.capacity,
                        s.evictions,
                        s.ttl_evictions
                    )
                })
                .collect();
            format!("\"fleet\":[{}]", sites.join(","))
        }
        Err(e) => format!("\"fleet_error\":\"{}\"", json_escape(&e.to_string())),
    };
    // Planner observability: the configured variant, how many times the
    // cost-based planner has resolved `Variant::Auto`, and the variant
    // it chose last (absent until the first Auto execution).
    let planner_field = match session.last_planner_decision() {
        Some(decision) => format!(
            ",\"last_planner_choice\":\"{}\"",
            json_escape(decision.chosen.label())
        ),
        None => String::new(),
    };
    let body = format!(
        "{{\"server\":{{\"admitted\":{},\"rejected_429\":{},\"ok\":{},\"client_errors\":{},\
         \"server_errors\":{},\"in_flight\":{},\"streams_started\":{},\
         \"streams_completed\":{},\"streams_cancelled\":{},\"queued\":{},\"queue_depth\":{}}},\
         \"session\":{{\"queries_prepared\":{},\"executions\":{},\"variant\":\"{}\",\
         \"planner_decisions\":{}{}}},\
         \"robustness\":{{\"timeouts\":{},\"retries\":{},\"reconnects\":{},\"repairs\":{},\
         \"repairs_failed\":{},\"fleet_rebuilds\":{}}},\
         {}}}",
        snap.admitted,
        snap.rejected,
        snap.ok,
        snap.client_errors,
        snap.server_errors,
        snap.in_flight,
        snap.streams_started,
        snap.streams_completed,
        snap.streams_cancelled,
        queue.pending(),
        queue.depth(),
        stats.queries_prepared,
        stats.executions,
        json_escape(session.engine().config().variant.label()),
        stats.planner_decisions,
        planner_field,
        robustness.timeouts,
        robustness.retries,
        robustness.reconnects,
        robustness.repairs,
        robustness.repairs_failed,
        robustness.fleet_rebuilds,
        fleet_field
    );
    HttpResponse::new(200).body("application/json", body)
}

/// A JSON error body: `{"error": <kind>, "message": <detail>}`.
fn error_response(status: u16, kind: &str, message: &str) -> HttpResponse {
    HttpResponse::new(status).body(
        "application/json",
        format!(
            "{{\"error\":\"{}\",\"message\":\"{}\"}}",
            json_escape(kind),
            json_escape(message)
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(method: &str, path: &str, query: &[(&str, &str)]) -> HttpRequest {
        HttpRequest {
            method: method.to_string(),
            path: path.to_string(),
            query: query
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            headers: Vec::new(),
            body: Vec::new(),
            http10: false,
        }
    }

    fn session() -> GStoreD {
        GStoreD::builder()
            .ntriples("<http://ex/a> <http://ex/p> <http://ex/b> .")
            .unwrap()
            .build()
            .unwrap()
    }

    fn handle(session: &GStoreD, request: &HttpRequest) -> HttpResponse {
        let counters = ServerCounters::default();
        let queue = BoundedQueue::new(1);
        handle_request(session, &counters, &queue, request)
    }

    #[test]
    fn get_query_roundtrips() {
        let db = session();
        let req = request(
            "GET",
            "/query",
            &[("query", "SELECT * WHERE { ?s <http://ex/p> ?o }")],
        );
        let resp = handle(&db, &req);
        assert_eq!(resp.status, 200);
        let body = String::from_utf8(resp.body).unwrap();
        assert!(body.contains("http://ex/a") && body.contains("http://ex/b"));
    }

    #[test]
    fn typed_errors_per_endpoint() {
        let db = session();
        assert_eq!(handle(&db, &request("GET", "/query", &[])).status, 400);
        assert_eq!(
            handle(&db, &request("GET", "/query", &[("query", "SELECT WHERE")])).status,
            400
        );
        assert_eq!(handle(&db, &request("GET", "/nope", &[])).status, 404);
        assert_eq!(handle(&db, &request("DELETE", "/query", &[])).status, 405);
        let mut req = request("GET", "/query", &[("query", "SELECT * WHERE { ?s ?p ?o }")]);
        req.headers.push(("accept".into(), "image/png".into()));
        assert_eq!(handle(&db, &req).status, 406);
        let mut post = request("POST", "/query", &[]);
        post.headers
            .push(("content-type".into(), "text/yaml".into()));
        assert_eq!(handle(&db, &post).status, 415);
    }

    #[test]
    fn status_reports_fleet_and_counters() {
        let db = session();
        let resp = handle(&db, &request("GET", "/status", &[]));
        assert_eq!(resp.status, 200);
        let body = String::from_utf8(resp.body).unwrap();
        assert!(body.contains("\"queue_depth\":1"));
        assert!(body.contains("\"resident_queries\":0"));
        assert!(body.contains("\"rejected_429\":0"));
        assert!(body.contains("\"robustness\":"));
        assert!(body.contains("\"fleet_rebuilds\":0"));
        assert!(body.contains("\"ttl_evictions\":0"));
        // Explicit-variant session: configured variant reported, zero
        // planner decisions, no last choice.
        assert!(body.contains("\"variant\":\"gStoreD\""));
        assert!(body.contains("\"planner_decisions\":0"));
        assert!(!body.contains("last_planner_choice"));
    }

    #[test]
    fn status_reports_planner_choice_on_auto_sessions() {
        let db = GStoreD::builder()
            .ntriples("<http://ex/a> <http://ex/p> <http://ex/b> .")
            .unwrap()
            .variant(gstored::core::Variant::Auto)
            .build()
            .unwrap();
        let before = handle(&db, &request("GET", "/status", &[]));
        let body = String::from_utf8(before.body).unwrap();
        assert!(body.contains("\"variant\":\"gStoreD-Auto\""));
        assert!(!body.contains("last_planner_choice"), "no decision yet");
        // One query through the planner, then the chosen variant shows.
        let run = handle(
            &db,
            &request(
                "GET",
                "/query",
                &[("query", "SELECT * WHERE { ?s <http://ex/p> ?o }")],
            ),
        );
        assert_eq!(run.status, 200);
        let after = handle(&db, &request("GET", "/status", &[]));
        let body = String::from_utf8(after.body).unwrap();
        assert!(body.contains("\"planner_decisions\":1"));
        assert!(body.contains("\"last_planner_choice\":\"gStoreD"));
    }

    #[test]
    fn health_reports_every_site_alive() {
        let db = session();
        let resp = handle(&db, &request("GET", "/health", &[]));
        assert_eq!(resp.status, 200);
        let body = String::from_utf8(resp.body).unwrap();
        assert!(body.contains("\"status\":\"ok\""));
        assert!(body.contains("\"alive\":true"));
        // /health only takes GET.
        assert_eq!(handle(&db, &request("POST", "/health", &[])).status, 405);
    }

    #[test]
    fn degradation_errors_map_to_503_with_retry_after() {
        let resp = engine_error_response(&Error::Engine(EngineError::Timeout {
            site: 1,
            stage: "assembly",
        }));
        assert_eq!(resp.status, 503);
        assert!(resp
            .headers
            .iter()
            .any(|(k, v)| k == "Retry-After" && !v.is_empty()));
        let resp = engine_error_response(&Error::Engine(EngineError::SiteUnavailable {
            site: 0,
            reason: "4 repair attempts failed".into(),
        }));
        assert_eq!(resp.status, 503);
        // Other engine failures stay 500, without Retry-After.
        let resp = engine_error_response(&Error::Engine(EngineError::Worker("boom".into())));
        assert_eq!(resp.status, 500);
        assert!(!resp.headers.iter().any(|(k, _)| k == "Retry-After"));
    }

    #[test]
    fn index_page_documents_the_endpoints() {
        let db = session();
        let resp = handle(&db, &request("GET", "/", &[]));
        assert_eq!(resp.status, 200);
        assert!(String::from_utf8(resp.body).unwrap().contains("/query"));
    }
}
