//! Streaming serializers for SPARQL query results.
//!
//! One [`SolutionWriter`] per response: `start` writes the head (the
//! projected variables), [`SolutionWriter::write_row`] appends one
//! solution at a time, and [`SolutionWriter::finish`] closes the
//! document — so a result set is serialized row by row into any
//! [`Write`] sink without ever materializing the serialized document
//! next to the result set. All four W3C formats come out of the same
//! writer (the shape oxigraph's `sparesults` uses), selected by
//! [`ResultFormat`]:
//!
//! * **JSON** — SPARQL 1.1 Query Results JSON; unbound variables are
//!   omitted from their binding object.
//! * **XML** — SPARQL Query Results XML; unbound variables have no
//!   `<binding>` element.
//! * **TSV** — terms in N-Triples syntax (lossless: IRIs bracketed,
//!   literal escapes, language tags and datatypes kept); unbound
//!   variables are empty fields.
//! * **CSV** — RFC 4180: plain lexical values, quoting only when a
//!   field contains a comma, quote or line break (lossy by design — the
//!   spec trades type fidelity for spreadsheet friendliness).
//!
//! The inverse helpers ([`split_tsv_row`], [`parse_tsv_term`],
//! [`split_csv_row`]) exist for the round-trip property tests and the
//! HTTP benchmark's row-equality checks.

use std::io::Write;

use gstored::rdf::term::unescape_literal;
use gstored::rdf::{Literal, Term};

use crate::negotiate::ResultFormat;

/// A streaming result-set writer: head, then rows, then the tail.
#[derive(Debug)]
pub struct SolutionWriter<W: Write> {
    sink: W,
    format: ResultFormat,
    variables: Vec<String>,
    rows: usize,
}

impl<W: Write> SolutionWriter<W> {
    /// Open a result document over `sink` and write its head.
    pub fn start(
        mut sink: W,
        format: ResultFormat,
        variables: &[String],
    ) -> std::io::Result<SolutionWriter<W>> {
        match format {
            ResultFormat::Json => {
                let vars: Vec<String> = variables
                    .iter()
                    .map(|v| format!("\"{}\"", json_escape(v)))
                    .collect();
                write!(
                    sink,
                    "{{\"head\":{{\"vars\":[{}]}},\"results\":{{\"bindings\":[",
                    vars.join(",")
                )?;
            }
            ResultFormat::Xml => {
                sink.write_all(b"<?xml version=\"1.0\"?>\n")?;
                sink.write_all(
                    b"<sparql xmlns=\"http://www.w3.org/2005/sparql-results#\">\n<head>\n",
                )?;
                for v in variables {
                    writeln!(sink, "  <variable name=\"{}\"/>", xml_escape_attr(v))?;
                }
                sink.write_all(b"</head>\n<results>\n")?;
            }
            ResultFormat::Tsv => {
                let head: Vec<String> = variables.iter().map(|v| format!("?{v}")).collect();
                sink.write_all(head.join("\t").as_bytes())?;
                sink.write_all(b"\n")?;
            }
            ResultFormat::Csv => {
                let head: Vec<String> = variables.iter().map(|v| csv_field(v)).collect();
                sink.write_all(head.join(",").as_bytes())?;
                sink.write_all(b"\r\n")?;
            }
        }
        Ok(SolutionWriter {
            sink,
            format,
            variables: variables.to_vec(),
            rows: 0,
        })
    }

    /// Append one solution. `row` must bind the writer's variables in
    /// projection order; `None` is an unbound variable.
    pub fn write_row(&mut self, row: &[Option<&Term>]) -> std::io::Result<()> {
        debug_assert_eq!(row.len(), self.variables.len());
        match self.format {
            ResultFormat::Json => {
                if self.rows > 0 {
                    self.sink.write_all(b",")?;
                }
                let mut bindings = Vec::new();
                for (name, term) in self.variables.iter().zip(row) {
                    if let Some(term) = term {
                        bindings.push(format!("\"{}\":{}", json_escape(name), json_term(term)));
                    }
                }
                write!(self.sink, "{{{}}}", bindings.join(","))?;
            }
            ResultFormat::Xml => {
                self.sink.write_all(b"  <result>\n")?;
                for (name, term) in self.variables.iter().zip(row) {
                    if let Some(term) = term {
                        writeln!(
                            self.sink,
                            "    <binding name=\"{}\">{}</binding>",
                            xml_escape_attr(name),
                            xml_term(term)
                        )?;
                    }
                }
                self.sink.write_all(b"  </result>\n")?;
            }
            ResultFormat::Tsv => {
                let fields: Vec<String> = row
                    .iter()
                    .map(|t| t.map(tsv_term).unwrap_or_default())
                    .collect();
                self.sink.write_all(fields.join("\t").as_bytes())?;
                self.sink.write_all(b"\n")?;
            }
            ResultFormat::Csv => {
                let fields: Vec<String> = row
                    .iter()
                    .map(|t| t.map(csv_term).unwrap_or_default())
                    .collect();
                self.sink.write_all(fields.join(",").as_bytes())?;
                self.sink.write_all(b"\r\n")?;
            }
        }
        self.rows += 1;
        Ok(())
    }

    /// Rows written so far.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Close the document and return the sink.
    pub fn finish(mut self) -> std::io::Result<W> {
        match self.format {
            ResultFormat::Json => self.sink.write_all(b"]}}")?,
            ResultFormat::Xml => self.sink.write_all(b"</results>\n</sparql>\n")?,
            ResultFormat::Tsv | ResultFormat::Csv => {}
        }
        self.sink.flush()?;
        Ok(self.sink)
    }
}

/// Serialize a whole result set (variables + rows of optional terms)
/// into a byte buffer. The row-at-a-time [`SolutionWriter`] is the
/// streaming interface; this is the convenience wrapper the server and
/// benchmarks use for materialized [`gstored::QueryResults`].
pub fn serialize_rows<'a>(
    format: ResultFormat,
    variables: &[String],
    rows: impl IntoIterator<Item = Vec<Option<&'a Term>>>,
) -> Vec<u8> {
    let mut writer =
        SolutionWriter::start(Vec::new(), format, variables).expect("writing to a Vec cannot fail");
    for row in rows {
        writer
            .write_row(&row)
            .expect("writing to a Vec cannot fail");
    }
    writer.finish().expect("writing to a Vec cannot fail")
}

/// Serialize a session's [`gstored::QueryResults`] (every variable of
/// every row is bound — BGP solutions are total).
pub fn serialize_results(format: ResultFormat, results: &gstored::QueryResults<'_>) -> Vec<u8> {
    serialize_rows(
        format,
        results.variables(),
        results
            .iter()
            .map(|sol| sol.iter().map(|(_, term)| Some(term)).collect()),
    )
}

/// Escape a string for inclusion in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_term(term: &Term) -> String {
    match term {
        Term::Iri(iri) => format!("{{\"type\":\"uri\",\"value\":\"{}\"}}", json_escape(iri)),
        Term::Blank(label) => {
            format!(
                "{{\"type\":\"bnode\",\"value\":\"{}\"}}",
                json_escape(label)
            )
        }
        Term::Literal(Literal {
            lexical,
            language,
            datatype,
        }) => {
            let mut out = format!(
                "{{\"type\":\"literal\",\"value\":\"{}\"",
                json_escape(lexical)
            );
            if let Some(tag) = language {
                out.push_str(&format!(",\"xml:lang\":\"{}\"", json_escape(tag)));
            } else if let Some(dt) = datatype {
                out.push_str(&format!(",\"datatype\":\"{}\"", json_escape(dt)));
            }
            out.push('}');
            out
        }
    }
}

/// Escape text content for XML (`&`, `<`, `>`).
pub fn xml_escape_text(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// Escape an XML attribute value (text rules plus `"`).
pub fn xml_escape_attr(s: &str) -> String {
    xml_escape_text(s).replace('"', "&quot;")
}

fn xml_term(term: &Term) -> String {
    match term {
        Term::Iri(iri) => format!("<uri>{}</uri>", xml_escape_text(iri)),
        Term::Blank(label) => format!("<bnode>{}</bnode>", xml_escape_text(label)),
        Term::Literal(Literal {
            lexical,
            language,
            datatype,
        }) => {
            if let Some(tag) = language {
                format!(
                    "<literal xml:lang=\"{}\">{}</literal>",
                    xml_escape_attr(tag),
                    xml_escape_text(lexical)
                )
            } else if let Some(dt) = datatype {
                format!(
                    "<literal datatype=\"{}\">{}</literal>",
                    xml_escape_attr(dt),
                    xml_escape_text(lexical)
                )
            } else {
                format!("<literal>{}</literal>", xml_escape_text(lexical))
            }
        }
    }
}

/// One term in TSV syntax: N-Triples, which [`Term`]'s `Display` already
/// produces (escaped literal bodies, bracketed IRIs, `_:` blanks).
pub fn tsv_term(term: &Term) -> String {
    term.to_string()
}

/// Split one TSV row into its raw fields (no unescaping — TSV escapes
/// tabs and newlines inside literal bodies, so splitting is trivial).
pub fn split_tsv_row(line: &str) -> Vec<&str> {
    line.split('\t').collect()
}

/// Parse one TSV field back into a term (`None` for an empty/unbound
/// field or a malformed term). The inverse of [`tsv_term`] — the
/// round-trip property tests pin this.
pub fn parse_tsv_term(field: &str) -> Option<Term> {
    if field.is_empty() {
        return None;
    }
    if let Some(rest) = field.strip_prefix('<') {
        return rest.strip_suffix('>').map(Term::iri);
    }
    if let Some(label) = field.strip_prefix("_:") {
        return Some(Term::blank(label));
    }
    let rest = field.strip_prefix('"')?;
    // Find the closing quote: the first unescaped `"`.
    let mut end = None;
    let bytes = rest.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => {
                end = Some(i);
                break;
            }
            _ => i += 1,
        }
    }
    let end = end?;
    let lexical = unescape_literal(&rest[..end])?;
    let suffix = &rest[end + 1..];
    if suffix.is_empty() {
        Some(Term::lit(lexical))
    } else if let Some(tag) = suffix.strip_prefix('@') {
        Some(Term::lang_lit(lexical, tag))
    } else {
        let dt = suffix.strip_prefix("^^<")?.strip_suffix('>')?;
        Some(Term::Literal(Literal::typed(lexical, dt)))
    }
}

/// One term as a CSV field: the plain lexical/IRI/blank value, quoted
/// per RFC 4180 when needed.
pub fn csv_term(term: &Term) -> String {
    match term {
        Term::Iri(iri) => csv_field(iri),
        Term::Blank(label) => csv_field(&format!("_:{label}")),
        Term::Literal(l) => csv_field(&l.lexical),
    }
}

/// Quote a CSV field when it contains a comma, quote or line break
/// (doubling inner quotes), else pass it through.
pub fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Split one CSV record into unescaped fields. The record must be a
/// complete row (callers split the document on row boundaries outside
/// quotes — or, for server output, rely on terms never containing line
/// breaks unquoted). Returns `None` on unbalanced quoting.
pub fn split_csv_row(record: &str) -> Option<Vec<String>> {
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut chars = record.chars().peekable();
    let mut quoted = false;
    loop {
        match chars.next() {
            None => {
                if quoted {
                    return None;
                }
                fields.push(field);
                return Some(fields);
            }
            Some('"') if quoted => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    field.push('"');
                } else {
                    quoted = false;
                }
            }
            Some('"') if field.is_empty() && !quoted => quoted = true,
            Some(',') if !quoted => {
                fields.push(std::mem::take(&mut field));
            }
            Some(c) => field.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vars(names: &[&str]) -> Vec<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn json_shape_and_unbound() {
        let x = Term::iri("http://ex/a");
        let n = Term::lang_lit("Ann \"A\"", "en");
        let out = serialize_rows(
            ResultFormat::Json,
            &vars(&["x", "n"]),
            vec![vec![Some(&x), Some(&n)], vec![Some(&x), None]],
        );
        let text = String::from_utf8(out).unwrap();
        assert_eq!(
            text,
            "{\"head\":{\"vars\":[\"x\",\"n\"]},\"results\":{\"bindings\":[\
             {\"x\":{\"type\":\"uri\",\"value\":\"http://ex/a\"},\
             \"n\":{\"type\":\"literal\",\"value\":\"Ann \\\"A\\\"\",\"xml:lang\":\"en\"}},\
             {\"x\":{\"type\":\"uri\",\"value\":\"http://ex/a\"}}]}}"
        );
    }

    #[test]
    fn xml_escapes_markup() {
        let t = Term::lit("a<b>&c");
        let out = serialize_rows(ResultFormat::Xml, &vars(&["v"]), vec![vec![Some(&t)]]);
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("<literal>a&lt;b&gt;&amp;c</literal>"));
        assert!(text.starts_with("<?xml version=\"1.0\"?>"));
        assert!(text.ends_with("</results>\n</sparql>\n"));
    }

    #[test]
    fn tsv_roundtrips_every_term_kind() {
        let terms = [
            Term::iri("http://ex/a"),
            Term::lit("tab\there\nand newline"),
            Term::lang_lit("hé", "fr"),
            Term::Literal(Literal::typed(
                "5",
                "http://www.w3.org/2001/XMLSchema#integer",
            )),
            Term::blank("b0"),
        ];
        for t in &terms {
            let field = tsv_term(t);
            assert!(!field.contains('\t') && !field.contains('\n'));
            assert_eq!(parse_tsv_term(&field).as_ref(), Some(t), "field {field:?}");
        }
        assert_eq!(parse_tsv_term(""), None, "unbound");
        assert_eq!(parse_tsv_term("<unclosed"), None);
        assert_eq!(parse_tsv_term("\"unclosed"), None);
    }

    #[test]
    fn csv_quotes_only_when_needed() {
        assert_eq!(csv_field("plain"), "plain");
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(
            split_csv_row("plain,\"a,b\",\"say \"\"hi\"\"\"").unwrap(),
            vec!["plain", "a,b", "say \"hi\""]
        );
        assert_eq!(split_csv_row("\"unbalanced"), None);
    }

    #[test]
    fn csv_document_shape() {
        let a = Term::iri("http://ex/a");
        let l = Term::lit("x,y");
        let out = serialize_rows(
            ResultFormat::Csv,
            &vars(&["s", "v"]),
            vec![vec![Some(&a), Some(&l)]],
        );
        assert_eq!(
            String::from_utf8(out).unwrap(),
            "s,v\r\nhttp://ex/a,\"x,y\"\r\n"
        );
    }

    #[test]
    fn streaming_writer_counts_rows() {
        let t = Term::iri("http://ex/a");
        let mut w = SolutionWriter::start(Vec::new(), ResultFormat::Tsv, &vars(&["x"])).unwrap();
        assert_eq!(w.rows(), 0);
        w.write_row(&[Some(&t)]).unwrap();
        w.write_row(&[None]).unwrap();
        assert_eq!(w.rows(), 2);
        let out = w.finish().unwrap();
        assert_eq!(String::from_utf8(out).unwrap(), "?x\n<http://ex/a>\n\n");
    }

    #[test]
    fn control_characters_escape_in_json() {
        assert_eq!(json_escape("a\u{1}b"), "a\\u0001b");
        assert_eq!(json_escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
    }
}
