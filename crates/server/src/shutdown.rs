//! Process-signal plumbing for graceful shutdown.
//!
//! `gstored-server serve` installs a handler for `SIGINT`/`SIGTERM`
//! that only flips an [`AtomicBool`] (the one operation that is safe in
//! a signal handler), and the serve loop polls [`requested`] to start a
//! graceful drain: stop accepting, finish in-flight queries, serve the
//! admitted queue, release the fleet, exit. Declared against the C
//! library `signal(2)` that every Rust binary on Unix already links —
//! no new dependency, matching the repo's no-network vendoring rule. On
//! non-Unix targets installation is a no-op and shutdown is whatever
//! kills the process.
//!
//! (`gstored-worker` needs no handler of its own: coordinators stop it
//! with a protocol-level `Shutdown` frame, and killing it with a signal
//! is safe — workers hold only per-query state that its coordinator
//! rebuilds on reconnect.)

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN_REQUESTED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod sys {
    pub const SIGINT: i32 = 2;
    pub const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    pub extern "C" fn on_signal(_signum: i32) {
        super::SHUTDOWN_REQUESTED.store(true, std::sync::atomic::Ordering::SeqCst);
    }

    pub fn install(signum: i32) {
        // SAFETY: `on_signal` only performs an atomic store, which is
        // async-signal-safe; the handler pointer outlives the process.
        unsafe {
            signal(signum, on_signal as *const () as usize);
        }
    }
}

/// Install the `SIGINT`/`SIGTERM` handler (idempotent). No-op off Unix.
pub fn install_handlers() {
    #[cfg(unix)]
    {
        sys::install(sys::SIGINT);
        sys::install(sys::SIGTERM);
    }
}

/// Whether a shutdown signal has arrived since [`install_handlers`].
pub fn requested() -> bool {
    SHUTDOWN_REQUESTED.load(Ordering::SeqCst)
}

/// Reset the flag (tests only — a real process exits after draining).
#[doc(hidden)]
pub fn reset() {
    SHUTDOWN_REQUESTED.store(false, Ordering::SeqCst);
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;

    extern "C" {
        fn raise(signum: i32) -> i32;
    }

    #[test]
    fn sigint_flips_the_flag() {
        install_handlers();
        reset();
        assert!(!requested());
        // SAFETY: raising SIGINT with our no-op-beyond-the-flag handler
        // installed interrupts nothing in the test harness.
        unsafe {
            raise(sys::SIGINT);
        }
        assert!(requested());
        reset();
    }
}
