//! In-memory RDF multigraph.
//!
//! The "RDF graph `G = {V, E, Σ}`" of the paper's Definition 1: subjects and
//! objects are vertices, triples are directed labeled edges. Multi-edges
//! between the same vertex pair with different predicates are allowed (and
//! occur in practice, e.g. `influencedBy` + `knows`).

use std::collections::HashMap;

use crate::dictionary::{Dictionary, TermId};
use crate::term::Term;
use crate::triple::{EncodedTriple, Triple};

/// A vertex of the RDF graph is just an interned term id.
pub type VertexId = TermId;

/// A lightweight reference to one directed labeled edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeRef {
    pub from: VertexId,
    pub label: TermId,
    pub to: VertexId,
}

impl EdgeRef {
    /// View as an encoded triple.
    pub fn as_triple(&self) -> EncodedTriple {
        EncodedTriple::new(self.from, self.label, self.to)
    }
}

impl From<EncodedTriple> for EdgeRef {
    fn from(t: EncodedTriple) -> Self {
        EdgeRef {
            from: t.subject,
            label: t.predicate,
            to: t.object,
        }
    }
}

/// An in-memory directed labeled multigraph over dictionary-encoded terms.
///
/// Keeps three indexes:
/// * `out`: vertex -> sorted `(label, to)` pairs,
/// * `inc`: vertex -> sorted `(label, from)` pairs,
/// * `by_pred`: label -> all `(from, to)` pairs.
#[derive(Debug, Default, Clone)]
pub struct RdfGraph {
    dict: Dictionary,
    out: HashMap<VertexId, Vec<(TermId, VertexId)>>,
    inc: HashMap<VertexId, Vec<(TermId, VertexId)>>,
    by_pred: HashMap<TermId, Vec<(VertexId, VertexId)>>,
    n_edges: usize,
    /// Entity classes: `rdf:type` triples with IRI objects are folded
    /// into per-vertex attributes instead of edges, the way gStore (the
    /// paper's per-site substrate) encodes types in vertex signatures.
    /// This keeps ubiquitous class IRIs from becoming universal hub
    /// vertices that would dominate every partitioning.
    classes: HashMap<VertexId, Vec<TermId>>,
    by_class: HashMap<TermId, Vec<VertexId>>,
    n_type_triples: usize,
}

impl RdfGraph {
    /// An empty graph with its own dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build a graph from decoded triples.
    pub fn from_triples<I: IntoIterator<Item = Triple>>(triples: I) -> Self {
        let mut g = RdfGraph::new();
        for t in triples {
            g.insert(&t);
        }
        g
    }

    /// Access the dictionary (read-only).
    pub fn dict(&self) -> &Dictionary {
        &self.dict
    }

    /// Access the dictionary mutably (e.g. to intern query constants).
    pub fn dict_mut(&mut self) -> &mut Dictionary {
        &mut self.dict
    }

    /// Insert a decoded triple, interning its terms. Duplicate edges
    /// (identical s/p/o) are ignored. Returns the encoded form.
    pub fn insert(&mut self, t: &Triple) -> EncodedTriple {
        let e = t.encode(&mut self.dict);
        self.insert_encoded(e);
        e
    }

    /// Insert an already-encoded triple. Duplicates are ignored.
    /// `rdf:type` triples with IRI objects become vertex attributes
    /// (see the struct docs), not edges.
    pub fn insert_encoded(&mut self, e: EncodedTriple) -> bool {
        if self.is_type_predicate(e.predicate)
            && matches!(self.dict.term_of(e.object), Some(Term::Iri(_)))
        {
            let cs = self.classes.entry(e.subject).or_default();
            if cs.contains(&e.object) {
                return false;
            }
            cs.push(e.object);
            self.by_class.entry(e.object).or_default().push(e.subject);
            // The typed entity is still a graph vertex even if it has no
            // other edges yet.
            self.out.entry(e.subject).or_default();
            self.inc.entry(e.subject).or_default();
            self.n_type_triples += 1;
            return true;
        }
        self.insert_edge(e)
    }

    fn is_type_predicate(&self, p: TermId) -> bool {
        self.dict
            .term_of(p)
            .is_some_and(|t| t.as_iri() == Some(crate::vocab::rdf::TYPE))
    }

    fn insert_edge(&mut self, e: EncodedTriple) -> bool {
        let out = self.out.entry(e.subject).or_default();
        if out.contains(&(e.predicate, e.object)) {
            return false;
        }
        out.push((e.predicate, e.object));
        self.inc
            .entry(e.object)
            .or_default()
            .push((e.predicate, e.subject));
        // Make sure the object also exists as a vertex with (possibly empty)
        // out-adjacency, so `vertices()` sees it.
        self.out.entry(e.object).or_default();
        self.inc.entry(e.subject).or_default();
        self.by_pred
            .entry(e.predicate)
            .or_default()
            .push((e.subject, e.object));
        self.n_edges += 1;
        true
    }

    /// Number of distinct vertices (subjects and objects).
    pub fn vertex_count(&self) -> usize {
        self.out.len()
    }

    /// Number of edges (triples).
    pub fn edge_count(&self) -> usize {
        self.n_edges
    }

    /// Whether `v` occurs as a vertex.
    pub fn contains_vertex(&self, v: VertexId) -> bool {
        self.out.contains_key(&v)
    }

    /// Iterate over all vertices in unspecified order.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.out.keys().copied()
    }

    /// Outgoing `(label, to)` pairs of `v`.
    pub fn out_edges(&self, v: VertexId) -> &[(TermId, VertexId)] {
        self.out.get(&v).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Incoming `(label, from)` pairs of `v`.
    pub fn in_edges(&self, v: VertexId) -> &[(TermId, VertexId)] {
        self.inc.get(&v).map(Vec::as_slice).unwrap_or(&[])
    }

    /// All `(from, to)` pairs carrying predicate `p`.
    pub fn edges_with_predicate(&self, p: TermId) -> &[(VertexId, VertexId)] {
        self.by_pred.get(&p).map(Vec::as_slice).unwrap_or(&[])
    }

    /// All distinct predicates.
    pub fn predicates(&self) -> impl Iterator<Item = TermId> + '_ {
        self.by_pred.keys().copied()
    }

    /// Degree (in + out) of a vertex.
    pub fn degree(&self, v: VertexId) -> usize {
        self.out_edges(v).len() + self.in_edges(v).len()
    }

    /// Whether the edge `from -label-> to` exists.
    pub fn has_edge(&self, from: VertexId, label: TermId, to: VertexId) -> bool {
        self.out_edges(from)
            .iter()
            .any(|&(l, t)| l == label && t == to)
    }

    /// Whether any edge `from -?-> to` exists; returns all labels between them.
    pub fn labels_between(&self, from: VertexId, to: VertexId) -> Vec<TermId> {
        self.out_edges(from)
            .iter()
            .filter(|&&(_, t)| t == to)
            .map(|&(l, _)| l)
            .collect()
    }

    /// Iterate over every edge of the graph.
    pub fn edges(&self) -> impl Iterator<Item = EdgeRef> + '_ {
        self.out.iter().flat_map(|(&from, adj)| {
            adj.iter()
                .map(move |&(label, to)| EdgeRef { from, label, to })
        })
    }

    /// Neighbors of `v` in the *undirected* sense (deduplicated).
    pub fn neighbors(&self, v: VertexId) -> Vec<VertexId> {
        let mut ns: Vec<VertexId> = self
            .out_edges(v)
            .iter()
            .map(|&(_, t)| t)
            .chain(self.in_edges(v).iter().map(|&(_, s)| s))
            .collect();
        ns.sort_unstable();
        ns.dedup();
        ns
    }

    /// Number of `rdf:type` triples folded into vertex attributes.
    pub fn type_triple_count(&self) -> usize {
        self.n_type_triples
    }

    /// Classes of a vertex (empty slice if untyped).
    pub fn classes_of(&self, v: VertexId) -> &[TermId] {
        self.classes.get(&v).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Whether `v` is typed with class `c`.
    pub fn has_class(&self, v: VertexId, c: TermId) -> bool {
        self.classes_of(v).contains(&c)
    }

    /// All vertices typed with class `c`.
    pub fn vertices_of_class(&self, c: TermId) -> &[VertexId] {
        self.by_class.get(&c).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The full vertex → classes map (used when building fragments).
    pub fn class_map(&self) -> &HashMap<VertexId, Vec<TermId>> {
        &self.classes
    }

    /// Decode a vertex back to a term (panics on dangling ids).
    pub fn term(&self, v: VertexId) -> &Term {
        self.dict.resolve(v)
    }

    /// Look up a term's vertex id if present.
    pub fn vertex_of(&self, t: &Term) -> Option<VertexId> {
        let id = self.dict.id_of(t)?;
        self.contains_vertex(id).then_some(id)
    }

    /// Sort adjacency lists for deterministic iteration and binary search.
    pub fn finalize(&mut self) {
        for adj in self.out.values_mut() {
            adj.sort_unstable();
        }
        for adj in self.inc.values_mut() {
            adj.sort_unstable();
        }
        for pairs in self.by_pred.values_mut() {
            pairs.sort_unstable();
        }
        for cs in self.classes.values_mut() {
            cs.sort_unstable();
        }
        for vs in self.by_class.values_mut() {
            vs.sort_unstable();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> RdfGraph {
        let t = |s: &str, p: &str, o: &str| Triple::new(Term::iri(s), Term::iri(p), Term::iri(o));
        RdfGraph::from_triples(vec![
            t("a", "p", "b"),
            t("a", "q", "b"),
            t("b", "p", "c"),
            t("c", "p", "a"),
        ])
    }

    #[test]
    fn counts() {
        let g = tiny();
        assert_eq!(
            g.vertex_count(),
            3 + 2 /* predicates interned as vertices? no */ - 2
        );
        // subjects/objects: a, b, c
        assert_eq!(g.edge_count(), 4);
    }

    #[test]
    fn duplicate_edges_ignored() {
        let mut g = tiny();
        let a = g.dict().id_of(&Term::iri("a")).unwrap();
        let p = g.dict().id_of(&Term::iri("p")).unwrap();
        let b = g.dict().id_of(&Term::iri("b")).unwrap();
        assert!(!g.insert_encoded(EncodedTriple::new(a, p, b)));
        assert_eq!(g.edge_count(), 4);
    }

    #[test]
    fn adjacency_and_predicates() {
        let g = tiny();
        let a = g.vertex_of(&Term::iri("a")).unwrap();
        let b = g.vertex_of(&Term::iri("b")).unwrap();
        let p = g.dict().id_of(&Term::iri("p")).unwrap();
        assert_eq!(g.out_edges(a).len(), 2);
        assert_eq!(g.in_edges(a).len(), 1);
        assert!(g.has_edge(a, p, b));
        assert_eq!(g.labels_between(a, b).len(), 2);
        assert_eq!(g.edges_with_predicate(p).len(), 3);
        assert_eq!(g.degree(a), 3);
    }

    #[test]
    fn neighbors_are_undirected_and_deduped() {
        let g = tiny();
        let a = g.vertex_of(&Term::iri("a")).unwrap();
        let ns = g.neighbors(a);
        assert_eq!(ns.len(), 2, "b (via p and q, deduped) and c");
    }

    #[test]
    fn multi_edge_labels_are_multiset() {
        let g = tiny();
        let a = g.vertex_of(&Term::iri("a")).unwrap();
        let b = g.vertex_of(&Term::iri("b")).unwrap();
        let labels = g.labels_between(a, b);
        assert_eq!(labels.len(), 2);
    }

    #[test]
    fn edges_iterator_covers_all() {
        let g = tiny();
        assert_eq!(g.edges().count(), 4);
    }

    #[test]
    fn type_triples_become_vertex_attributes() {
        let mut g = RdfGraph::new();
        g.insert(&Triple::new(
            Term::iri("http://e"),
            Term::iri(crate::vocab::rdf::TYPE),
            Term::iri("http://Class"),
        ));
        g.insert(&Triple::new(
            Term::iri("http://e"),
            Term::iri("p"),
            Term::iri("o"),
        ));
        assert_eq!(g.edge_count(), 1, "type triple is not an edge");
        assert_eq!(g.type_triple_count(), 1);
        let e = g.vertex_of(&Term::iri("http://e")).unwrap();
        let c = g.dict().id_of(&Term::iri("http://Class")).unwrap();
        assert!(g.has_class(e, c));
        assert_eq!(g.vertices_of_class(c), &[e]);
        // The class IRI itself is not a graph vertex.
        assert!(g.vertex_of(&Term::iri("http://Class")).is_none());
    }

    #[test]
    fn literal_typed_object_type_triples_stay_edges() {
        // `?x rdf:type "literal"` is nonsense but must not corrupt the
        // class index; it stays an ordinary edge.
        let mut g = RdfGraph::new();
        g.insert(&Triple::new(
            Term::iri("http://e"),
            Term::iri(crate::vocab::rdf::TYPE),
            Term::lit("weird"),
        ));
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.type_triple_count(), 0);
    }

    #[test]
    fn literal_objects_are_vertices() {
        let mut g = RdfGraph::new();
        g.insert(&Triple::new(
            Term::iri("a"),
            Term::iri("name"),
            Term::lang_lit("X", "en"),
        ));
        let lit = g.vertex_of(&Term::lang_lit("X", "en"));
        assert!(
            lit.is_some(),
            "object literal must be a graph vertex (paper Fig. 1)"
        );
        assert_eq!(g.out_edges(lit.unwrap()).len(), 0);
        assert_eq!(g.in_edges(lit.unwrap()).len(), 1);
    }
}
