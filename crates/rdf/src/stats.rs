//! Dataset statistics: the structural quantities the paper's analysis
//! reasons about (degree distributions drive local-partial-match blowup;
//! predicate counts drive vertical-partitioning table sizes; class
//! populations drive candidate selectivity).

use std::collections::HashMap;

use crate::dictionary::TermId;
use crate::graph::RdfGraph;
use crate::term::Term;

/// Summary statistics of an RDF graph.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    pub vertices: usize,
    pub edges: usize,
    pub type_triples: usize,
    pub distinct_predicates: usize,
    pub distinct_classes: usize,
    pub literal_vertices: usize,
    pub max_out_degree: usize,
    pub max_in_degree: usize,
    pub avg_degree: f64,
    /// The 10 most frequent predicates, descending.
    pub top_predicates: Vec<(TermId, usize)>,
}

/// Compute summary statistics.
pub fn graph_stats(g: &RdfGraph) -> GraphStats {
    let mut max_out = 0usize;
    let mut max_in = 0usize;
    let mut literal_vertices = 0usize;
    for v in g.vertices() {
        max_out = max_out.max(g.out_edges(v).len());
        max_in = max_in.max(g.in_edges(v).len());
        if g.term(v).is_literal() {
            literal_vertices += 1;
        }
    }
    let mut pred_counts: HashMap<TermId, usize> = HashMap::new();
    for p in g.predicates() {
        pred_counts.insert(p, g.edges_with_predicate(p).len());
    }
    let mut top: Vec<(TermId, usize)> = pred_counts.iter().map(|(&p, &c)| (p, c)).collect();
    top.sort_by_key(|&(p, c)| (std::cmp::Reverse(c), p));
    top.truncate(10);

    let distinct_classes = {
        let mut cs: Vec<TermId> = g
            .class_map()
            .values()
            .flat_map(|v| v.iter().copied())
            .collect();
        cs.sort_unstable();
        cs.dedup();
        cs.len()
    };

    GraphStats {
        vertices: g.vertex_count(),
        edges: g.edge_count(),
        type_triples: g.type_triple_count(),
        distinct_predicates: pred_counts.len(),
        distinct_classes,
        literal_vertices,
        max_out_degree: max_out,
        max_in_degree: max_in,
        avg_degree: if g.vertex_count() == 0 {
            0.0
        } else {
            2.0 * g.edge_count() as f64 / g.vertex_count() as f64
        },
        top_predicates: top,
    }
}

impl GraphStats {
    /// Render a short human-readable report; `g` resolves predicate names.
    pub fn report(&self, g: &RdfGraph) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "vertices: {}, edges: {}, type triples: {}\n",
            self.vertices, self.edges, self.type_triples
        ));
        out.push_str(&format!(
            "predicates: {}, classes: {}, literal vertices: {}\n",
            self.distinct_predicates, self.distinct_classes, self.literal_vertices
        ));
        out.push_str(&format!(
            "degrees: max out {}, max in {}, avg {:.2}\n",
            self.max_out_degree, self.max_in_degree, self.avg_degree
        ));
        out.push_str("top predicates:\n");
        for &(p, c) in &self.top_predicates {
            let name = match g.dict().term_of(p) {
                Some(Term::Iri(iri)) => iri.clone(),
                other => format!("{other:?}"),
            };
            out.push_str(&format!("  {c:>8}  {name}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triple::Triple;

    fn sample() -> RdfGraph {
        let t = |s: &str, p: &str, o: Term| Triple::new(Term::iri(s), Term::iri(p), o);
        let mut g = RdfGraph::from_triples(vec![
            t("http://a", "http://p", Term::iri("http://b")),
            t("http://a", "http://p", Term::iri("http://c")),
            t("http://a", "http://q", Term::lit("label a")),
            t("http://b", "http://q", Term::lit("label b")),
            t(
                "http://a",
                crate::vocab::rdf::TYPE,
                Term::iri("http://Class"),
            ),
        ]);
        g.finalize();
        g
    }

    #[test]
    fn counts_are_consistent() {
        let g = sample();
        let s = graph_stats(&g);
        assert_eq!(s.edges, 4);
        assert_eq!(s.type_triples, 1);
        assert_eq!(s.distinct_predicates, 2);
        assert_eq!(s.distinct_classes, 1);
        assert_eq!(s.literal_vertices, 2);
        assert_eq!(s.max_out_degree, 3, "vertex a has 3 non-type out-edges");
        assert!(s.avg_degree > 0.0);
    }

    #[test]
    fn top_predicates_sorted_descending() {
        let g = sample();
        let s = graph_stats(&g);
        assert_eq!(s.top_predicates.len(), 2);
        assert!(s.top_predicates[0].1 >= s.top_predicates[1].1);
    }

    #[test]
    fn report_renders() {
        let g = sample();
        let s = graph_stats(&g);
        let r = s.report(&g);
        assert!(r.contains("vertices: "));
        assert!(r.contains("http://p"));
    }

    #[test]
    fn empty_graph() {
        let g = RdfGraph::new();
        let s = graph_stats(&g);
        assert_eq!(s.vertices, 0);
        assert_eq!(s.avg_degree, 0.0);
    }
}
