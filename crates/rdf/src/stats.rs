//! Dataset statistics: the structural quantities the paper's analysis
//! reasons about (degree distributions drive local-partial-match blowup;
//! predicate counts drive vertical-partitioning table sizes; class
//! populations drive candidate selectivity).

use std::collections::HashMap;

use crate::dictionary::TermId;
use crate::graph::RdfGraph;
use crate::term::Term;

/// Summary statistics of an RDF graph.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    pub vertices: usize,
    pub edges: usize,
    pub type_triples: usize,
    pub distinct_predicates: usize,
    pub distinct_classes: usize,
    pub literal_vertices: usize,
    pub max_out_degree: usize,
    pub max_in_degree: usize,
    pub avg_degree: f64,
    /// The 10 most frequent predicates, descending.
    pub top_predicates: Vec<(TermId, usize)>,
}

/// Compute summary statistics.
pub fn graph_stats(g: &RdfGraph) -> GraphStats {
    let mut max_out = 0usize;
    let mut max_in = 0usize;
    let mut literal_vertices = 0usize;
    for v in g.vertices() {
        max_out = max_out.max(g.out_edges(v).len());
        max_in = max_in.max(g.in_edges(v).len());
        if g.term(v).is_literal() {
            literal_vertices += 1;
        }
    }
    let mut pred_counts: HashMap<TermId, usize> = HashMap::new();
    for p in g.predicates() {
        pred_counts.insert(p, g.edges_with_predicate(p).len());
    }
    let mut top: Vec<(TermId, usize)> = pred_counts.iter().map(|(&p, &c)| (p, c)).collect();
    top.sort_by_key(|&(p, c)| (std::cmp::Reverse(c), p));
    top.truncate(10);

    let distinct_classes = {
        let mut cs: Vec<TermId> = g
            .class_map()
            .values()
            .flat_map(|v| v.iter().copied())
            .collect();
        cs.sort_unstable();
        cs.dedup();
        cs.len()
    };

    GraphStats {
        vertices: g.vertex_count(),
        edges: g.edge_count(),
        type_triples: g.type_triple_count(),
        distinct_predicates: pred_counts.len(),
        distinct_classes,
        literal_vertices,
        max_out_degree: max_out,
        max_in_degree: max_in,
        avg_degree: if g.vertex_count() == 0 {
            0.0
        } else {
            2.0 * g.edge_count() as f64 / g.vertex_count() as f64
        },
        top_predicates: top,
    }
}

impl GraphStats {
    /// Render a short human-readable report; `g` resolves predicate names.
    pub fn report(&self, g: &RdfGraph) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "vertices: {}, edges: {}, type triples: {}\n",
            self.vertices, self.edges, self.type_triples
        ));
        out.push_str(&format!(
            "predicates: {}, classes: {}, literal vertices: {}\n",
            self.distinct_predicates, self.distinct_classes, self.literal_vertices
        ));
        out.push_str(&format!(
            "degrees: max out {}, max in {}, avg {:.2}\n",
            self.max_out_degree, self.max_in_degree, self.avg_degree
        ));
        out.push_str("top predicates:\n");
        for &(p, c) in &self.top_predicates {
            let name = match g.dict().term_of(p) {
                Some(Term::Iri(iri)) => iri.clone(),
                other => format!("{other:?}"),
            };
            out.push_str(&format!("  {c:>8}  {name}\n"));
        }
        out
    }
}

/// How many internal and crossing edges of one fragment carry a given
/// predicate. The split matters to the planner: internal edges are
/// matched entirely inside a site, while crossing edges seed local
/// partial matches that must be shipped and joined at the coordinator —
/// the quantity whose blowup decides which engine variant pays off.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PredicateCard {
    /// Edges with both endpoints internal to the fragment.
    pub internal: usize,
    /// Edges with exactly one internal endpoint (Definition 1's crossing
    /// edges, counted from this fragment's side).
    pub crossing: usize,
}

/// A log₂-bucketed histogram of internal-vertex out-degrees, the
/// per-site candidate-selectivity summary: bucket `i` counts vertices
/// with out-degree in `[2^i, 2^(i+1))` (bucket 0 holds degree 0 and 1).
/// High-bucket mass means hub vertices, i.e. candidate lists that stay
/// fat after per-vertex filtering — exactly when Algorithm 4's exchanged
/// bit vectors are worth their shipment cost.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SelectivityHistogram {
    /// `buckets[i]` = number of vertices with out-degree in
    /// `[2^i, 2^(i+1))`; degrees ≥ 2^7 land in the last bucket.
    pub buckets: [usize; 8],
}

impl SelectivityHistogram {
    /// Record one vertex of out-degree `degree`.
    pub fn record(&mut self, degree: usize) {
        let bucket = if degree <= 1 {
            0
        } else {
            (usize::BITS - 1 - degree.leading_zeros()) as usize
        };
        self.buckets[bucket.min(self.buckets.len() - 1)] += 1;
    }

    /// Total vertices recorded.
    pub fn total(&self) -> usize {
        self.buckets.iter().sum()
    }

    /// Mean out-degree implied by the bucket midpoints — a deliberately
    /// coarse estimate (the histogram is 8 buckets), but monotone in the
    /// recorded degrees and cheap to combine across sites.
    pub fn mean_degree(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let weighted: f64 = self
            .buckets
            .iter()
            .enumerate()
            .map(|(i, &c)| c as f64 * ((1usize << i) as f64 * 1.5))
            .sum();
        weighted / total as f64
    }
}

/// Per-site statistics of one fragment, computed once at partition time
/// (by the partition layer, which owns the fragment representation) and
/// cached on the distributed graph for the planner.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FragmentStats {
    /// The fragment (site) index.
    pub site: usize,
    /// Internal vertices (Definition 1).
    pub internal_vertices: usize,
    /// Extended (boundary) vertices replicated from other sites.
    pub extended_vertices: usize,
    /// Edges with both endpoints internal.
    pub internal_edges: usize,
    /// Crossing edges incident to this fragment.
    pub crossing_edges: usize,
    /// Per-predicate internal/crossing cardinalities, sorted by
    /// predicate id for binary search.
    pub predicate_cards: Vec<(TermId, PredicateCard)>,
    /// Internal vertices per class (`rdf:type`), sorted by class id.
    pub class_cards: Vec<(TermId, usize)>,
    /// Out-degree distribution of the internal vertices.
    pub selectivity: SelectivityHistogram,
}

impl FragmentStats {
    /// The internal/crossing cardinality of predicate `p` on this site.
    pub fn predicate(&self, p: TermId) -> PredicateCard {
        match self.predicate_cards.binary_search_by_key(&p, |&(id, _)| id) {
            Ok(i) => self.predicate_cards[i].1,
            Err(_) => PredicateCard::default(),
        }
    }

    /// Internal vertices carrying class `c`.
    pub fn class_count(&self, c: TermId) -> usize {
        match self.class_cards.binary_search_by_key(&c, |&(id, _)| id) {
            Ok(i) => self.class_cards[i].1,
            Err(_) => 0,
        }
    }
}

/// Whole-partitioning statistics: one [`FragmentStats`] per site plus
/// the cross-site aggregates the cost model consumes. Built by the
/// partition layer and cached (lazily, behind a `OnceLock`) on the
/// `DistributedGraph`, so sessions running an explicit variant never pay
/// for it.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PartitionStats {
    /// Per-site statistics, indexed by fragment id.
    pub sites: Vec<FragmentStats>,
    /// Internal edges summed over all sites (= total non-crossing edges).
    pub total_internal_edges: usize,
    /// Crossing-edge *incidences* summed over all sites. Each distinct
    /// crossing edge is incident to exactly two fragments, so this is
    /// twice the distinct crossing-edge count.
    pub total_crossing_incidences: usize,
    /// Internal vertices summed over all sites (= graph vertices).
    pub total_vertices: usize,
}

impl PartitionStats {
    /// Crossing-edge incidences matching predicate `p` (the whole
    /// partitioning when `p` is `None`, i.e. a predicate variable).
    pub fn crossing_count(&self, p: Option<TermId>) -> usize {
        match p {
            Some(p) => self.sites.iter().map(|s| s.predicate(p).crossing).sum(),
            None => self.total_crossing_incidences,
        }
    }

    /// Internal edges matching predicate `p` across all sites.
    pub fn internal_count(&self, p: Option<TermId>) -> usize {
        match p {
            Some(p) => self.sites.iter().map(|s| s.predicate(p).internal).sum(),
            None => self.total_internal_edges,
        }
    }

    /// Internal vertices carrying class `c` across all sites.
    pub fn class_count(&self, c: TermId) -> usize {
        self.sites.iter().map(|s| s.class_count(c)).sum()
    }

    /// Mean internal out-degree across the fleet (selectivity-histogram
    /// estimate, not exact).
    pub fn mean_degree(&self) -> f64 {
        let total: usize = self.sites.iter().map(|s| s.selectivity.total()).sum();
        if total == 0 {
            return 0.0;
        }
        self.sites
            .iter()
            .map(|s| s.selectivity.mean_degree() * s.selectivity.total() as f64)
            .sum::<f64>()
            / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triple::Triple;

    fn sample() -> RdfGraph {
        let t = |s: &str, p: &str, o: Term| Triple::new(Term::iri(s), Term::iri(p), o);
        let mut g = RdfGraph::from_triples(vec![
            t("http://a", "http://p", Term::iri("http://b")),
            t("http://a", "http://p", Term::iri("http://c")),
            t("http://a", "http://q", Term::lit("label a")),
            t("http://b", "http://q", Term::lit("label b")),
            t(
                "http://a",
                crate::vocab::rdf::TYPE,
                Term::iri("http://Class"),
            ),
        ]);
        g.finalize();
        g
    }

    #[test]
    fn counts_are_consistent() {
        let g = sample();
        let s = graph_stats(&g);
        assert_eq!(s.edges, 4);
        assert_eq!(s.type_triples, 1);
        assert_eq!(s.distinct_predicates, 2);
        assert_eq!(s.distinct_classes, 1);
        assert_eq!(s.literal_vertices, 2);
        assert_eq!(s.max_out_degree, 3, "vertex a has 3 non-type out-edges");
        assert!(s.avg_degree > 0.0);
    }

    #[test]
    fn top_predicates_sorted_descending() {
        let g = sample();
        let s = graph_stats(&g);
        assert_eq!(s.top_predicates.len(), 2);
        assert!(s.top_predicates[0].1 >= s.top_predicates[1].1);
    }

    #[test]
    fn report_renders() {
        let g = sample();
        let s = graph_stats(&g);
        let r = s.report(&g);
        assert!(r.contains("vertices: "));
        assert!(r.contains("http://p"));
    }

    #[test]
    fn empty_graph() {
        let g = RdfGraph::new();
        let s = graph_stats(&g);
        assert_eq!(s.vertices, 0);
        assert_eq!(s.avg_degree, 0.0);
        assert_eq!(s.distinct_predicates, 0);
        assert_eq!(s.distinct_classes, 0);
        assert_eq!(s.literal_vertices, 0);
        assert!(s.top_predicates.is_empty());
        assert_eq!(s.max_out_degree, 0);
        assert_eq!(s.max_in_degree, 0);
    }

    /// Every object a literal: object vertices count as literal vertices
    /// and never carry out-edges.
    #[test]
    fn all_literal_objects() {
        let mut g = RdfGraph::from_triples(vec![
            Triple::new(Term::iri("http://s"), Term::iri("http://p"), Term::lit("a")),
            Triple::new(Term::iri("http://s"), Term::iri("http://p"), Term::lit("b")),
            Triple::new(Term::iri("http://t"), Term::iri("http://q"), Term::lit("c")),
        ]);
        g.finalize();
        let s = graph_stats(&g);
        assert_eq!(s.literal_vertices, 3, "each literal object is a vertex");
        assert_eq!(s.vertices, 5);
        assert_eq!(s.max_out_degree, 2, "subject s");
        assert_eq!(s.max_in_degree, 1, "literals have one in-edge each");
        assert_eq!(s.distinct_classes, 0);
    }

    /// More than 10 predicates: `top_predicates` truncates to the 10
    /// most frequent, descending, ties broken by predicate id.
    #[test]
    fn top_predicates_truncate_past_ten() {
        let mut triples = Vec::new();
        for p in 0..13usize {
            // Predicate p gets p+1 edges, so frequencies are all distinct.
            for i in 0..=p {
                triples.push(Triple::new(
                    Term::iri(format!("http://s{i}")),
                    Term::iri(format!("http://p{p}")),
                    Term::iri(format!("http://o{p}_{i}")),
                ));
            }
        }
        let mut g = RdfGraph::from_triples(triples);
        g.finalize();
        let s = graph_stats(&g);
        assert_eq!(s.distinct_predicates, 13);
        assert_eq!(s.top_predicates.len(), 10, "truncated to 10");
        let counts: Vec<usize> = s.top_predicates.iter().map(|&(_, c)| c).collect();
        assert_eq!(counts, vec![13, 12, 11, 10, 9, 8, 7, 6, 5, 4]);
    }

    #[test]
    fn selectivity_histogram_buckets_by_log2() {
        let mut h = SelectivityHistogram::default();
        for (degree, bucket) in [(0, 0), (1, 0), (2, 1), (3, 1), (4, 2), (127, 6), (4096, 7)] {
            let mut one = SelectivityHistogram::default();
            one.record(degree);
            assert_eq!(one.buckets[bucket], 1, "degree {degree} -> bucket {bucket}");
            h.record(degree);
        }
        assert_eq!(h.total(), 7);
        assert!(h.mean_degree() > 0.0);
        assert_eq!(SelectivityHistogram::default().mean_degree(), 0.0);
    }

    #[test]
    fn fragment_stats_lookups_handle_missing_keys() {
        let fs = FragmentStats {
            site: 0,
            predicate_cards: vec![(
                TermId(3),
                PredicateCard {
                    internal: 5,
                    crossing: 2,
                },
            )],
            class_cards: vec![(TermId(7), 4)],
            ..FragmentStats::default()
        };
        assert_eq!(fs.predicate(TermId(3)).internal, 5);
        assert_eq!(fs.predicate(TermId(3)).crossing, 2);
        assert_eq!(fs.predicate(TermId(99)), PredicateCard::default());
        assert_eq!(fs.class_count(TermId(7)), 4);
        assert_eq!(fs.class_count(TermId(8)), 0);
    }

    #[test]
    fn partition_stats_aggregates_across_sites() {
        let site = |site, internal, crossing| FragmentStats {
            site,
            predicate_cards: vec![(TermId(1), PredicateCard { internal, crossing })],
            ..FragmentStats::default()
        };
        let ps = PartitionStats {
            sites: vec![site(0, 3, 1), site(1, 2, 1)],
            total_internal_edges: 5,
            total_crossing_incidences: 2,
            total_vertices: 10,
        };
        assert_eq!(ps.internal_count(Some(TermId(1))), 5);
        assert_eq!(ps.crossing_count(Some(TermId(1))), 2);
        assert_eq!(ps.internal_count(None), 5);
        assert_eq!(ps.crossing_count(None), 2);
        assert_eq!(ps.internal_count(Some(TermId(9))), 0);
    }
}
