//! Small helper vocabularies used by the data generators, queries and
//! examples. Only the IRIs actually referenced by the reproduction are
//! included.

/// RDF core vocabulary.
pub mod rdf {
    /// `rdf:type`.
    pub const TYPE: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
}

/// RDFS vocabulary.
pub mod rdfs {
    /// `rdfs:label`.
    pub const LABEL: &str = "http://www.w3.org/2000/01/rdf-schema#label";
    /// `rdfs:subClassOf`.
    pub const SUB_CLASS_OF: &str = "http://www.w3.org/2000/01/rdf-schema#subClassOf";
}

/// XML Schema datatypes.
pub mod xsd {
    pub const INTEGER: &str = "http://www.w3.org/2001/XMLSchema#integer";
    pub const DATE: &str = "http://www.w3.org/2001/XMLSchema#date";
    pub const STRING: &str = "http://www.w3.org/2001/XMLSchema#string";
}

/// FOAF vocabulary (used by the YAGO2-like and BTC-like generators).
pub mod foaf {
    pub const NAME: &str = "http://xmlns.com/foaf/0.1/name";
    pub const KNOWS: &str = "http://xmlns.com/foaf/0.1/knows";
    pub const PERSON: &str = "http://xmlns.com/foaf/0.1/Person";
}

/// The LUBM university-domain ontology (the properties used by the
/// benchmark's generator and queries).
pub mod lubm {
    pub const NS: &str = "http://swat.cse.lehigh.edu/onto/univ-bench.owl#";

    pub const UNIVERSITY: &str = "http://swat.cse.lehigh.edu/onto/univ-bench.owl#University";
    pub const DEPARTMENT: &str = "http://swat.cse.lehigh.edu/onto/univ-bench.owl#Department";
    pub const FULL_PROFESSOR: &str = "http://swat.cse.lehigh.edu/onto/univ-bench.owl#FullProfessor";
    pub const ASSOCIATE_PROFESSOR: &str =
        "http://swat.cse.lehigh.edu/onto/univ-bench.owl#AssociateProfessor";
    pub const ASSISTANT_PROFESSOR: &str =
        "http://swat.cse.lehigh.edu/onto/univ-bench.owl#AssistantProfessor";
    pub const LECTURER: &str = "http://swat.cse.lehigh.edu/onto/univ-bench.owl#Lecturer";
    pub const UNDERGRADUATE_STUDENT: &str =
        "http://swat.cse.lehigh.edu/onto/univ-bench.owl#UndergraduateStudent";
    pub const GRADUATE_STUDENT: &str =
        "http://swat.cse.lehigh.edu/onto/univ-bench.owl#GraduateStudent";
    pub const COURSE: &str = "http://swat.cse.lehigh.edu/onto/univ-bench.owl#Course";
    pub const GRADUATE_COURSE: &str =
        "http://swat.cse.lehigh.edu/onto/univ-bench.owl#GraduateCourse";
    pub const RESEARCH_GROUP: &str = "http://swat.cse.lehigh.edu/onto/univ-bench.owl#ResearchGroup";
    pub const PUBLICATION: &str = "http://swat.cse.lehigh.edu/onto/univ-bench.owl#Publication";

    pub const WORKS_FOR: &str = "http://swat.cse.lehigh.edu/onto/univ-bench.owl#worksFor";
    pub const MEMBER_OF: &str = "http://swat.cse.lehigh.edu/onto/univ-bench.owl#memberOf";
    pub const SUB_ORGANIZATION_OF: &str =
        "http://swat.cse.lehigh.edu/onto/univ-bench.owl#subOrganizationOf";
    pub const UNDERGRADUATE_DEGREE_FROM: &str =
        "http://swat.cse.lehigh.edu/onto/univ-bench.owl#undergraduateDegreeFrom";
    pub const MASTERS_DEGREE_FROM: &str =
        "http://swat.cse.lehigh.edu/onto/univ-bench.owl#mastersDegreeFrom";
    pub const DOCTORAL_DEGREE_FROM: &str =
        "http://swat.cse.lehigh.edu/onto/univ-bench.owl#doctoralDegreeFrom";
    pub const ADVISOR: &str = "http://swat.cse.lehigh.edu/onto/univ-bench.owl#advisor";
    pub const TAKES_COURSE: &str = "http://swat.cse.lehigh.edu/onto/univ-bench.owl#takesCourse";
    pub const TEACHER_OF: &str = "http://swat.cse.lehigh.edu/onto/univ-bench.owl#teacherOf";
    pub const TEACHING_ASSISTANT_OF: &str =
        "http://swat.cse.lehigh.edu/onto/univ-bench.owl#teachingAssistantOf";
    pub const PUBLICATION_AUTHOR: &str =
        "http://swat.cse.lehigh.edu/onto/univ-bench.owl#publicationAuthor";
    pub const HEAD_OF: &str = "http://swat.cse.lehigh.edu/onto/univ-bench.owl#headOf";
    pub const NAME: &str = "http://swat.cse.lehigh.edu/onto/univ-bench.owl#name";
    pub const EMAIL_ADDRESS: &str = "http://swat.cse.lehigh.edu/onto/univ-bench.owl#emailAddress";
    pub const TELEPHONE: &str = "http://swat.cse.lehigh.edu/onto/univ-bench.owl#telephone";
    pub const RESEARCH_INTEREST: &str =
        "http://swat.cse.lehigh.edu/onto/univ-bench.owl#researchInterest";
}

/// The DBpedia-flavoured properties used by the paper's running example
/// (Figs. 1-3) and the YAGO2-like generator.
pub mod dbo {
    pub const INFLUENCED_BY: &str = "http://dbpedia.org/ontology/influencedBy";
    pub const MAIN_INTEREST: &str = "http://dbpedia.org/ontology/mainInterest";
    pub const BIRTH_PLACE: &str = "http://dbpedia.org/ontology/birthPlace";
    pub const BIRTH_DATE: &str = "http://dbpedia.org/ontology/birthDate";
    pub const NAME: &str = "http://dbpedia.org/ontology/name";
    pub const LABEL: &str = "http://www.w3.org/2000/01/rdf-schema#label";
}

#[cfg(test)]
mod tests {
    #[test]
    fn vocab_iris_are_wellformed() {
        for iri in [
            super::rdf::TYPE,
            super::rdfs::LABEL,
            super::lubm::WORKS_FOR,
            super::dbo::INFLUENCED_BY,
            super::foaf::KNOWS,
        ] {
            assert!(iri.starts_with("http://"), "{iri}");
            assert!(!iri.contains(' '));
        }
    }

    #[test]
    fn lubm_constants_share_namespace() {
        assert!(super::lubm::WORKS_FOR.starts_with(super::lubm::NS));
        assert!(super::lubm::UNIVERSITY.starts_with(super::lubm::NS));
    }
}
