//! Triples in decoded and dictionary-encoded form.

use crate::dictionary::{Dictionary, TermId};
use crate::term::Term;

/// A decoded RDF triple `<subject, property, object>`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Triple {
    pub subject: Term,
    pub predicate: Term,
    pub object: Term,
}

impl Triple {
    /// Construct a triple from three terms.
    pub fn new(subject: Term, predicate: Term, object: Term) -> Self {
        Triple {
            subject,
            predicate,
            object,
        }
    }

    /// Encode this triple against a dictionary, interning as needed.
    pub fn encode(&self, dict: &mut Dictionary) -> EncodedTriple {
        EncodedTriple {
            subject: dict.intern(self.subject.clone()),
            predicate: dict.intern(self.predicate.clone()),
            object: dict.intern(self.object.clone()),
        }
    }
}

impl std::fmt::Display for Triple {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {} {} .", self.subject, self.predicate, self.object)
    }
}

/// A dictionary-encoded triple; the unit of storage for the whole system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EncodedTriple {
    pub subject: TermId,
    pub predicate: TermId,
    pub object: TermId,
}

impl EncodedTriple {
    /// Construct from raw ids.
    pub fn new(subject: TermId, predicate: TermId, object: TermId) -> Self {
        EncodedTriple {
            subject,
            predicate,
            object,
        }
    }

    /// Decode against a dictionary; returns `None` if any id is dangling.
    pub fn decode(&self, dict: &Dictionary) -> Option<Triple> {
        Some(Triple {
            subject: dict.term_of(self.subject)?.clone(),
            predicate: dict.term_of(self.predicate)?.clone(),
            object: dict.term_of(self.object)?.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Triple {
        Triple::new(
            Term::iri("http://ex/p1"),
            Term::iri("http://ex/name"),
            Term::lang_lit("Crispin Wright", "en"),
        )
    }

    #[test]
    fn encode_decode_roundtrip() {
        let mut d = Dictionary::new();
        let t = sample();
        let e = t.encode(&mut d);
        assert_eq!(e.decode(&d), Some(t));
    }

    #[test]
    fn encoding_shares_ids_across_triples() {
        let mut d = Dictionary::new();
        let t1 = sample();
        let t2 = Triple::new(
            Term::iri("http://ex/p1"),
            Term::iri("http://ex/age"),
            Term::lit("70"),
        );
        let e1 = t1.encode(&mut d);
        let e2 = t2.encode(&mut d);
        assert_eq!(e1.subject, e2.subject, "same subject -> same id");
        assert_ne!(e1.predicate, e2.predicate);
    }

    #[test]
    fn decode_with_dangling_id_is_none() {
        let d = Dictionary::new();
        let e = EncodedTriple::new(TermId(0), TermId(1), TermId(2));
        assert_eq!(e.decode(&d), None);
    }

    #[test]
    fn display_is_ntriples_like() {
        let t = sample();
        assert_eq!(
            t.to_string(),
            "<http://ex/p1> <http://ex/name> \"Crispin Wright\"@en ."
        );
    }
}
