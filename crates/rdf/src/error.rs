//! Error type shared by the RDF substrate.

use std::fmt;

/// Errors produced while parsing or manipulating RDF data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RdfError {
    /// A syntax error while parsing N-Triples, with 1-based line number.
    Syntax { line: usize, message: String },
    /// A term id that is not present in the dictionary.
    UnknownTermId(u64),
    /// An IRI failed basic well-formedness checks.
    InvalidIri(String),
    /// A literal failed basic well-formedness checks.
    InvalidLiteral(String),
    /// An I/O error message (stringified to keep the error `Clone`).
    Io(String),
}

impl fmt::Display for RdfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RdfError::Syntax { line, message } => {
                write!(f, "N-Triples syntax error at line {line}: {message}")
            }
            RdfError::UnknownTermId(id) => write!(f, "unknown term id {id}"),
            RdfError::InvalidIri(iri) => write!(f, "invalid IRI: {iri}"),
            RdfError::InvalidLiteral(l) => write!(f, "invalid literal: {l}"),
            RdfError::Io(m) => write!(f, "I/O error: {m}"),
        }
    }
}

impl std::error::Error for RdfError {}

impl From<std::io::Error> for RdfError {
    fn from(e: std::io::Error) -> Self {
        RdfError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_stable() {
        let e = RdfError::Syntax {
            line: 3,
            message: "bad iri".into(),
        };
        assert_eq!(e.to_string(), "N-Triples syntax error at line 3: bad iri");
        assert_eq!(RdfError::UnknownTermId(9).to_string(), "unknown term id 9");
        assert!(RdfError::InvalidIri("x".into())
            .to_string()
            .contains("invalid IRI"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::other("boom");
        let e: RdfError = io.into();
        assert!(matches!(e, RdfError::Io(_)));
    }
}
