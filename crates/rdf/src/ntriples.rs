//! Line-oriented N-Triples parser and writer.
//!
//! Supports the subset of N-Triples needed by the generators and examples:
//! IRIs in angle brackets, blank nodes (`_:label`), and literals with
//! optional `@lang` tag or `^^<datatype>` suffix, plus `#` comments and
//! blank lines. Escapes `\" \\ \n \r \t \uXXXX \UXXXXXXXX` are handled.

use std::io::{BufRead, Write};

use crate::error::RdfError;
use crate::term::{unescape_literal, Literal, Term};
use crate::triple::Triple;
use crate::Result;

/// Parse a full N-Triples document.
pub fn parse_ntriples(input: &str) -> Result<Vec<Triple>> {
    let mut triples = Vec::new();
    for (i, line) in input.lines().enumerate() {
        if let Some(t) = parse_ntriples_line(line, i + 1)? {
            triples.push(t);
        }
    }
    Ok(triples)
}

/// Parse N-Triples from a buffered reader (streaming, line by line).
pub fn parse_ntriples_reader<R: BufRead>(reader: R) -> Result<Vec<Triple>> {
    let mut triples = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        if let Some(t) = parse_ntriples_line(&line, i + 1)? {
            triples.push(t);
        }
    }
    Ok(triples)
}

/// Parse a single line. Returns `Ok(None)` for blank/comment lines.
pub fn parse_ntriples_line(line: &str, lineno: usize) -> Result<Option<Triple>> {
    let mut p = LineParser {
        s: line.as_bytes(),
        pos: 0,
        lineno,
    };
    p.skip_ws();
    if p.eof() || p.peek() == b'#' {
        return Ok(None);
    }
    let subject = p.parse_term()?;
    p.skip_ws();
    let predicate = p.parse_term()?;
    if !predicate.is_iri() {
        return Err(p.err("predicate must be an IRI"));
    }
    p.skip_ws();
    let object = p.parse_term()?;
    p.skip_ws();
    if p.eof() || p.peek() != b'.' {
        return Err(p.err("expected terminating '.'"));
    }
    p.pos += 1;
    p.skip_ws();
    if !p.eof() && p.peek() != b'#' {
        return Err(p.err("trailing content after '.'"));
    }
    if subject.is_literal() {
        return Err(p.err("subject must not be a literal"));
    }
    Ok(Some(Triple::new(subject, predicate, object)))
}

/// Serialize triples as N-Triples to a writer.
pub fn write_ntriples<'a, W: Write, I: IntoIterator<Item = &'a Triple>>(
    mut w: W,
    triples: I,
) -> Result<()> {
    for t in triples {
        writeln!(w, "{t}")?;
    }
    Ok(())
}

/// Serialize triples as an N-Triples string.
pub fn to_ntriples_string<'a, I: IntoIterator<Item = &'a Triple>>(triples: I) -> String {
    let mut buf = Vec::new();
    write_ntriples(&mut buf, triples).expect("writing to Vec cannot fail");
    String::from_utf8(buf).expect("display output is valid UTF-8")
}

struct LineParser<'a> {
    s: &'a [u8],
    pos: usize,
    lineno: usize,
}

impl<'a> LineParser<'a> {
    fn eof(&self) -> bool {
        self.pos >= self.s.len()
    }

    fn peek(&self) -> u8 {
        self.s[self.pos]
    }

    fn skip_ws(&mut self) {
        while !self.eof() && (self.peek() == b' ' || self.peek() == b'\t') {
            self.pos += 1;
        }
    }

    fn err(&self, msg: &str) -> RdfError {
        RdfError::Syntax {
            line: self.lineno,
            message: format!("{msg} (col {})", self.pos + 1),
        }
    }

    fn parse_term(&mut self) -> Result<Term> {
        if self.eof() {
            return Err(self.err("unexpected end of line"));
        }
        match self.peek() {
            b'<' => self.parse_iri(),
            b'_' => self.parse_blank(),
            b'"' => self.parse_literal(),
            _ => Err(self.err("expected '<', '_:' or '\"'")),
        }
    }

    fn parse_iri(&mut self) -> Result<Term> {
        debug_assert_eq!(self.peek(), b'<');
        self.pos += 1;
        let start = self.pos;
        while !self.eof() && self.peek() != b'>' {
            let c = self.peek();
            if c == b' ' || c == b'<' {
                return Err(self.err("whitespace or '<' inside IRI"));
            }
            self.pos += 1;
        }
        if self.eof() {
            return Err(self.err("unterminated IRI"));
        }
        let iri = std::str::from_utf8(&self.s[start..self.pos])
            .map_err(|_| self.err("IRI is not valid UTF-8"))?
            .to_owned();
        self.pos += 1;
        if iri.is_empty() {
            return Err(self.err("empty IRI"));
        }
        Ok(Term::Iri(iri))
    }

    fn parse_blank(&mut self) -> Result<Term> {
        if self.pos + 1 >= self.s.len() || self.s[self.pos + 1] != b':' {
            return Err(self.err("expected '_:'"));
        }
        self.pos += 2;
        let start = self.pos;
        while !self.eof() {
            let c = self.peek();
            if c.is_ascii_alphanumeric() || c == b'_' || c == b'-' || c == b'.' {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err("empty blank node label"));
        }
        let label = std::str::from_utf8(&self.s[start..self.pos])
            .expect("checked ASCII")
            .to_owned();
        Ok(Term::Blank(label))
    }

    fn parse_literal(&mut self) -> Result<Term> {
        debug_assert_eq!(self.peek(), b'"');
        self.pos += 1;
        let start = self.pos;
        while !self.eof() {
            match self.peek() {
                b'\\' => {
                    self.pos += 2; // skip escape pair; \u handled by unescape
                }
                b'"' => break,
                _ => self.pos += 1,
            }
        }
        if self.eof() {
            return Err(self.err("unterminated literal"));
        }
        let raw = std::str::from_utf8(&self.s[start..self.pos])
            .map_err(|_| self.err("literal is not valid UTF-8"))?;
        let lexical =
            unescape_literal(raw).ok_or_else(|| self.err("malformed escape in literal"))?;
        self.pos += 1; // closing quote

        // Optional @lang or ^^<datatype>.
        if !self.eof() && self.peek() == b'@' {
            self.pos += 1;
            let start = self.pos;
            while !self.eof() {
                let c = self.peek();
                if c.is_ascii_alphanumeric() || c == b'-' {
                    self.pos += 1;
                } else {
                    break;
                }
            }
            if self.pos == start {
                return Err(self.err("empty language tag"));
            }
            let tag = std::str::from_utf8(&self.s[start..self.pos]).expect("checked ASCII");
            return Ok(Term::Literal(Literal::lang(lexical, tag)));
        }
        if self.pos + 1 < self.s.len() && self.peek() == b'^' && self.s[self.pos + 1] == b'^' {
            self.pos += 2;
            if self.eof() || self.peek() != b'<' {
                return Err(self.err("expected '<' after '^^'"));
            }
            let dt = self.parse_iri()?;
            let dt_iri = dt.as_iri().expect("parse_iri returns an IRI").to_owned();
            return Ok(Term::Literal(Literal::typed(lexical, dt_iri)));
        }
        Ok(Term::Literal(Literal::plain(lexical)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_basic_triple() {
        let t = parse_ntriples_line("<http://a> <http://p> <http://b> .", 1)
            .unwrap()
            .unwrap();
        assert_eq!(t.subject, Term::iri("http://a"));
        assert_eq!(t.predicate, Term::iri("http://p"));
        assert_eq!(t.object, Term::iri("http://b"));
    }

    #[test]
    fn parses_literals() {
        let t = parse_ntriples_line("<http://a> <http://p> \"x\\ny\"@en .", 1)
            .unwrap()
            .unwrap();
        assert_eq!(t.object, Term::lang_lit("x\ny", "en"));
        let t = parse_ntriples_line(
            "<http://a> <http://p> \"5\"^^<http://www.w3.org/2001/XMLSchema#int> .",
            1,
        )
        .unwrap()
        .unwrap();
        match t.object {
            Term::Literal(l) => {
                assert_eq!(l.lexical, "5");
                assert_eq!(
                    l.datatype.as_deref(),
                    Some("http://www.w3.org/2001/XMLSchema#int")
                );
            }
            _ => panic!("expected literal"),
        }
    }

    #[test]
    fn parses_blank_nodes_and_comments() {
        assert!(parse_ntriples_line("# a comment", 1).unwrap().is_none());
        assert!(parse_ntriples_line("   ", 1).unwrap().is_none());
        let t = parse_ntriples_line("_:b1 <http://p> _:b2 .", 1)
            .unwrap()
            .unwrap();
        assert_eq!(t.subject, Term::blank("b1"));
        assert_eq!(t.object, Term::blank("b2"));
    }

    #[test]
    fn rejects_malformed_lines() {
        for bad in [
            "<http://a> <http://p> <http://b>",     // missing dot
            "<http://a> <http://p> .",              // missing object
            "\"lit\" <http://p> <http://b> .",      // literal subject
            "<http://a> \"p\" <http://b> .",        // literal predicate
            "<http://a> <http://p> <http://b> . x", // trailing garbage
            "<http://a <http://p> <http://b> .",    // nested '<'
            "<> <http://p> <http://b> .",           // empty IRI
        ] {
            assert!(parse_ntriples_line(bad, 1).is_err(), "should reject: {bad}");
        }
    }

    #[test]
    fn document_roundtrip() {
        let doc = "\
<http://a> <http://p> <http://b> .
# comment
<http://b> <http://name> \"Z\\\"q\"@en .

<http://c> <http://v> \"3\"^^<http://t> .
";
        let triples = parse_ntriples(doc).unwrap();
        assert_eq!(triples.len(), 3);
        let out = to_ntriples_string(&triples);
        let reparsed = parse_ntriples(&out).unwrap();
        assert_eq!(triples, reparsed);
    }

    #[test]
    fn error_carries_line_number() {
        let doc = "<http://a> <http://p> <http://b> .\nbroken line\n";
        match parse_ntriples(doc) {
            Err(RdfError::Syntax { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected syntax error, got {other:?}"),
        }
    }

    #[test]
    fn line_comment_after_dot_is_allowed() {
        let t = parse_ntriples_line("<http://a> <http://p> <http://b> . # trailing", 1).unwrap();
        assert!(t.is_some());
    }
}
