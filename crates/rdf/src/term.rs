//! RDF terms: IRIs, literals and blank nodes.
//!
//! Terms are the decoded (string) representation; the rest of the system
//! works on [`crate::TermId`]s produced by the [`crate::Dictionary`].

use std::fmt;

/// An RDF literal: lexical form plus optional language tag or datatype IRI.
///
/// Exactly one of `language` / `datatype` may be set (a language-tagged
/// literal implicitly has datatype `rdf:langString`, which we do not store).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Literal {
    /// The lexical form, without surrounding quotes.
    pub lexical: String,
    /// Optional BCP-47 language tag (e.g. `en`), stored lowercase.
    pub language: Option<String>,
    /// Optional datatype IRI (without angle brackets).
    pub datatype: Option<String>,
}

impl Literal {
    /// A plain literal with neither language tag nor datatype.
    pub fn plain(lexical: impl Into<String>) -> Self {
        Literal {
            lexical: lexical.into(),
            language: None,
            datatype: None,
        }
    }

    /// A language-tagged literal such as `"Crispin Wright"@en`.
    pub fn lang(lexical: impl Into<String>, tag: impl Into<String>) -> Self {
        Literal {
            lexical: lexical.into(),
            language: Some(tag.into().to_ascii_lowercase()),
            datatype: None,
        }
    }

    /// A typed literal such as `"1942-12-21"^^xsd:date`.
    pub fn typed(lexical: impl Into<String>, datatype: impl Into<String>) -> Self {
        Literal {
            lexical: lexical.into(),
            language: None,
            datatype: Some(datatype.into()),
        }
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "\"{}\"", escape_literal(&self.lexical))?;
        if let Some(tag) = &self.language {
            write!(f, "@{tag}")?;
        } else if let Some(dt) = &self.datatype {
            write!(f, "^^<{dt}>")?;
        }
        Ok(())
    }
}

/// An RDF term: the vertices and edge labels of the RDF graph.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// An IRI, stored without angle brackets.
    Iri(String),
    /// A literal value.
    Literal(Literal),
    /// A blank node with its local label (without the `_:` prefix).
    Blank(String),
}

impl Term {
    /// Shorthand constructor for an IRI term.
    pub fn iri(s: impl Into<String>) -> Self {
        Term::Iri(s.into())
    }

    /// Shorthand constructor for a plain literal term.
    pub fn lit(s: impl Into<String>) -> Self {
        Term::Literal(Literal::plain(s))
    }

    /// Shorthand constructor for a language-tagged literal term.
    pub fn lang_lit(s: impl Into<String>, tag: impl Into<String>) -> Self {
        Term::Literal(Literal::lang(s, tag))
    }

    /// Shorthand constructor for a blank node term.
    pub fn blank(s: impl Into<String>) -> Self {
        Term::Blank(s.into())
    }

    /// Whether this term is an IRI.
    pub fn is_iri(&self) -> bool {
        matches!(self, Term::Iri(_))
    }

    /// Whether this term is a literal.
    pub fn is_literal(&self) -> bool {
        matches!(self, Term::Literal(_))
    }

    /// Whether this term is a blank node.
    pub fn is_blank(&self) -> bool {
        matches!(self, Term::Blank(_))
    }

    /// The IRI string if this term is an IRI.
    pub fn as_iri(&self) -> Option<&str> {
        match self {
            Term::Iri(s) => Some(s),
            _ => None,
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Iri(iri) => write!(f, "<{iri}>"),
            Term::Literal(l) => write!(f, "{l}"),
            Term::Blank(b) => write!(f, "_:{b}"),
        }
    }
}

/// Escape a literal's lexical form for N-Triples output.
pub fn escape_literal(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            _ => out.push(c),
        }
    }
    out
}

/// Unescape an N-Triples literal body. Returns `None` on a malformed escape.
pub fn unescape_literal(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next()? {
            '"' => out.push('"'),
            '\\' => out.push('\\'),
            'n' => out.push('\n'),
            'r' => out.push('\r'),
            't' => out.push('\t'),
            'u' => {
                let hex: String = chars.by_ref().take(4).collect();
                if hex.len() != 4 {
                    return None;
                }
                let code = u32::from_str_radix(&hex, 16).ok()?;
                out.push(char::from_u32(code)?);
            }
            'U' => {
                let hex: String = chars.by_ref().take(8).collect();
                if hex.len() != 8 {
                    return None;
                }
                let code = u32::from_str_radix(&hex, 16).ok()?;
                out.push(char::from_u32(code)?);
            }
            _ => return None,
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_constructors() {
        let p = Literal::plain("x");
        assert_eq!(p.language, None);
        assert_eq!(p.datatype, None);
        let l = Literal::lang("Crispin Wright", "EN");
        assert_eq!(
            l.language.as_deref(),
            Some("en"),
            "language tags are lowercased"
        );
        let t = Literal::typed("1", "http://www.w3.org/2001/XMLSchema#integer");
        assert!(t.datatype.is_some());
    }

    #[test]
    fn term_display_matches_ntriples_syntax() {
        assert_eq!(Term::iri("http://a/b").to_string(), "<http://a/b>");
        assert_eq!(Term::lit("hi").to_string(), "\"hi\"");
        assert_eq!(Term::lang_lit("hi", "en").to_string(), "\"hi\"@en");
        assert_eq!(Term::blank("b0").to_string(), "_:b0");
        assert_eq!(
            Term::Literal(Literal::typed("5", "http://t")).to_string(),
            "\"5\"^^<http://t>"
        );
    }

    #[test]
    fn term_kind_predicates() {
        assert!(Term::iri("http://a").is_iri());
        assert!(Term::lit("x").is_literal());
        assert!(Term::blank("n").is_blank());
        assert_eq!(Term::iri("http://a").as_iri(), Some("http://a"));
        assert_eq!(Term::lit("x").as_iri(), None);
    }

    #[test]
    fn escape_roundtrip() {
        let nasty = "a\"b\\c\nd\re\tf";
        let escaped = escape_literal(nasty);
        assert!(!escaped.contains('\n'));
        assert_eq!(unescape_literal(&escaped).as_deref(), Some(nasty));
    }

    #[test]
    fn unescape_unicode_escapes() {
        assert_eq!(unescape_literal("\\u0041").as_deref(), Some("A"));
        assert_eq!(
            unescape_literal("\\U0001F600").as_deref(),
            Some("\u{1F600}")
        );
        assert_eq!(unescape_literal("\\q"), None, "unknown escape rejected");
        assert_eq!(unescape_literal("\\u00"), None, "short hex rejected");
    }

    #[test]
    fn term_ordering_is_total() {
        let mut v = vec![Term::lit("b"), Term::iri("a"), Term::blank("c")];
        v.sort();
        // Just assert sorting does not panic and is deterministic.
        let v2 = {
            let mut v2 = v.clone();
            v2.sort();
            v2
        };
        assert_eq!(v, v2);
    }
}
