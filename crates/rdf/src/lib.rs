//! # gstored-rdf
//!
//! RDF data model substrate for the gstored-rs reproduction of
//! *Accelerating Partial Evaluation in Distributed SPARQL Query Evaluation*
//! (Peng, Zou, Guan — ICDE 2019).
//!
//! This crate provides everything the paper assumes from the storage layer
//! of a centralized RDF engine:
//!
//! * [`Term`] — IRIs, literals (plain / language-tagged / typed) and blank
//!   nodes.
//! * [`Dictionary`] — bidirectional string interning so the rest of the
//!   system works on dense integer ids ([`TermId`]).
//! * [`Triple`] / [`EncodedTriple`] — `<subject, property, object>` in
//!   decoded and dictionary-encoded form.
//! * [`RdfGraph`] — an in-memory directed labeled multigraph with adjacency
//!   and predicate indexes, the "RDF graph `G`" of Definition 1.
//! * [`ntriples`] — a line-oriented N-Triples parser and writer.
//! * [`vocab`] — small helper vocabularies (rdf:type etc.) used by the
//!   data generators and examples.

pub mod dictionary;
pub mod error;
pub mod graph;
pub mod ntriples;
pub mod stats;
pub mod term;
pub mod triple;
pub mod vocab;

pub use dictionary::{Dictionary, TermId};
pub use error::RdfError;
pub use graph::{EdgeRef, RdfGraph, VertexId};
pub use ntriples::{parse_ntriples, parse_ntriples_line, write_ntriples};
pub use term::{Literal, Term};
pub use triple::{EncodedTriple, Triple};

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, RdfError>;
