//! Bidirectional term dictionary.
//!
//! Every [`Term`] is interned to a dense [`TermId`]; the rest of the system
//! (partitioner, local stores, wire protocol) works exclusively on ids.
//! In the paper's deployment the dictionary is the URI/literal encoding
//! layer of gStore; in this reproduction a single dictionary is shared by
//! all simulated sites (documented substitution: a real deployment would
//! replicate or hash-partition the dictionary, which affects neither the
//! algorithms nor the reported shipment of the evaluation stages, which
//! exchange encoded ids exactly as we do).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::term::Term;

/// Monotonic source of dictionary identities (see [`Dictionary::uid`]).
static NEXT_DICT_UID: AtomicU64 = AtomicU64::new(1);

/// Dense identifier for an interned [`Term`].
///
/// Ids are assigned consecutively from 0 in insertion order, so they can
/// index into `Vec`s directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TermId(pub u64);

impl TermId {
    /// The id as a usable index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for TermId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Bidirectional mapping `Term <-> TermId`.
#[derive(Debug, Clone)]
pub struct Dictionary {
    /// Instance identity: refreshed every time a new term is interned,
    /// so two dictionaries share a uid only when one is a clone of the
    /// other with no interning since — i.e. their id spaces are
    /// guaranteed identical. Prepared query plans record it so executing
    /// a plan against the wrong graph is caught instead of binding
    /// garbage ids.
    uid: u64,
    by_term: HashMap<Term, TermId>,
    by_id: Vec<Term>,
}

impl Default for Dictionary {
    fn default() -> Self {
        Dictionary {
            uid: NEXT_DICT_UID.fetch_add(1, Ordering::Relaxed),
            by_term: HashMap::new(),
            by_id: Vec::new(),
        }
    }
}

impl Dictionary {
    /// An empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty dictionary with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Dictionary {
            uid: NEXT_DICT_UID.fetch_add(1, Ordering::Relaxed),
            by_term: HashMap::with_capacity(cap),
            by_id: Vec::with_capacity(cap),
        }
    }

    /// Identity of this dictionary instance (shared by clones, distinct
    /// across independently built dictionaries).
    pub fn uid(&self) -> u64 {
        self.uid
    }

    /// Intern a term, returning its (possibly pre-existing) id.
    ///
    /// Interning a *new* term refreshes [`Dictionary::uid`]: the id
    /// space changed, so fingerprints taken before the mutation no
    /// longer match (see the `uid` field docs).
    pub fn intern(&mut self, term: Term) -> TermId {
        if let Some(&id) = self.by_term.get(&term) {
            return id;
        }
        let id = TermId(self.by_id.len() as u64);
        self.by_id.push(term.clone());
        self.by_term.insert(term, id);
        self.uid = NEXT_DICT_UID.fetch_add(1, Ordering::Relaxed);
        id
    }

    /// Intern an IRI given as a string slice.
    pub fn intern_iri(&mut self, iri: &str) -> TermId {
        self.intern(Term::iri(iri))
    }

    /// Look up the id of a term without interning it.
    pub fn id_of(&self, term: &Term) -> Option<TermId> {
        self.by_term.get(term).copied()
    }

    /// Look up the term for an id.
    pub fn term_of(&self, id: TermId) -> Option<&Term> {
        self.by_id.get(id.index())
    }

    /// Resolve an id, panicking with a clear message on dangling ids.
    ///
    /// Intended for internal use where ids are known-valid by construction.
    pub fn resolve(&self, id: TermId) -> &Term {
        self.term_of(id)
            .unwrap_or_else(|| panic!("dangling TermId {id}"))
    }

    /// Number of interned terms.
    pub fn len(&self) -> usize {
        self.by_id.len()
    }

    /// Whether the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.by_id.is_empty()
    }

    /// Iterate over `(id, term)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (TermId, &Term)> {
        self.by_id
            .iter()
            .enumerate()
            .map(|(i, t)| (TermId(i as u64), t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_uid_but_fresh_dictionaries_do_not() {
        let mut d = Dictionary::new();
        d.intern(Term::iri("http://a"));
        assert_eq!(d.clone().uid(), d.uid());
        assert_ne!(Dictionary::new().uid(), d.uid());
        assert_ne!(Dictionary::with_capacity(4).uid(), d.uid());
    }

    #[test]
    fn interning_a_new_term_refreshes_uid_but_reinterning_does_not() {
        let mut d = Dictionary::new();
        let before = d.uid();
        d.intern(Term::iri("http://a"));
        let after_new = d.uid();
        assert_ne!(before, after_new, "new term changes the id space");
        d.intern(Term::iri("http://a"));
        assert_eq!(d.uid(), after_new, "re-interning changes nothing");
        // Diverged clones with equal sizes get distinct uids.
        let (mut c1, mut c2) = (d.clone(), d.clone());
        c1.intern(Term::iri("http://x"));
        c2.intern(Term::iri("http://y"));
        assert_eq!(c1.len(), c2.len());
        assert_ne!(c1.uid(), c2.uid());
    }

    #[test]
    fn intern_is_idempotent() {
        let mut d = Dictionary::new();
        let a = d.intern(Term::iri("http://a"));
        let b = d.intern(Term::iri("http://a"));
        assert_eq!(a, b);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let mut d = Dictionary::new();
        let ids: Vec<TermId> = (0..100)
            .map(|i| d.intern(Term::iri(format!("http://x/{i}"))))
            .collect();
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(id.index(), i);
        }
    }

    #[test]
    fn roundtrip_term_id_term() {
        let mut d = Dictionary::new();
        let terms = vec![
            Term::iri("http://a"),
            Term::lit("plain"),
            Term::lang_lit("hello", "en"),
            Term::blank("b1"),
        ];
        for t in &terms {
            let id = d.intern(t.clone());
            assert_eq!(d.term_of(id), Some(t));
            assert_eq!(d.id_of(t), Some(id));
        }
    }

    #[test]
    fn distinct_literals_get_distinct_ids() {
        let mut d = Dictionary::new();
        let a = d.intern(Term::lit("x"));
        let b = d.intern(Term::lang_lit("x", "en"));
        let c = d.intern(Term::iri("x"));
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_ne!(a, c);
    }

    #[test]
    fn iter_yields_in_id_order() {
        let mut d = Dictionary::new();
        d.intern(Term::iri("http://1"));
        d.intern(Term::iri("http://2"));
        let collected: Vec<u64> = d.iter().map(|(id, _)| id.0).collect();
        assert_eq!(collected, vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "dangling TermId")]
    fn resolve_panics_on_dangling() {
        let d = Dictionary::new();
        d.resolve(TermId(7));
    }
}
