//! Round-trip properties of every serialization layer: the wire codec,
//! the engine protocol, N-Triples, and the SPARQL pretty-printer.

use proptest::prelude::*;

use gstored::core::lec::LecFeature;
use gstored::core::protocol::{self, QueryId, Request, Response, ResponseBody, WorkerStatus};
use gstored::net::{WireReader, WireWriter};
use gstored::rdf::{EdgeRef, Literal, Term, TermId, Triple};
use gstored::store::candidates::BitVectorFilter;
use gstored::store::LocalPartialMatch;

fn arbitrary_lpm(
    fragment: usize,
    bindings: &[Option<u64>],
    crossings: &[(u64, u64, u64, usize)],
    mask: u64,
) -> LocalPartialMatch {
    LocalPartialMatch {
        fragment,
        binding: bindings.iter().map(|o| o.map(TermId)).collect(),
        crossing: crossings
            .iter()
            .map(|&(f, l, t, qe)| {
                (
                    EdgeRef {
                        from: TermId(f),
                        label: TermId(l),
                        to: TermId(t),
                    },
                    qe,
                )
            })
            .collect(),
        internal_mask: mask,
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn wire_varints_roundtrip(values in prop::collection::vec(any::<u64>(), 0..50)) {
        let mut w = WireWriter::new();
        for &v in &values {
            w.u64(v);
        }
        let mut r = WireReader::new(w.finish());
        for &v in &values {
            prop_assert_eq!(r.u64().unwrap(), v);
        }
        prop_assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn wire_mixed_roundtrip(
        nums in prop::collection::vec(any::<u64>(), 0..10),
        s in "[a-zA-Z0-9 ]{0,40}",
        flag in any::<bool>(),
        opt in prop::option::of(any::<u64>()),
    ) {
        let mut w = WireWriter::new();
        w.bool(flag).str(&s).opt_u64(opt);
        for &n in &nums {
            w.u64_fixed(n);
        }
        let mut r = WireReader::new(w.finish());
        prop_assert_eq!(r.bool().unwrap(), flag);
        prop_assert_eq!(r.str().unwrap(), s);
        prop_assert_eq!(r.opt_u64().unwrap(), opt);
        for &n in &nums {
            prop_assert_eq!(r.u64_fixed().unwrap(), n);
        }
    }

    #[test]
    fn lpm_protocol_roundtrip(
        fragment in 0usize..16,
        bindings in prop::collection::vec(prop::option::of(0u64..10_000), 1..8),
        crossings in prop::collection::vec((0u64..1000, 0u64..50, 0u64..1000, 0usize..8), 0..4),
        mask in any::<u64>(),
    ) {
        let lpm = LocalPartialMatch {
            fragment,
            binding: bindings.iter().map(|o| o.map(TermId)).collect(),
            crossing: crossings
                .iter()
                .map(|&(f, l, t, qe)| {
                    (EdgeRef { from: TermId(f), label: TermId(l), to: TermId(t) }, qe)
                })
                .collect(),
            internal_mask: mask,
        };
        let batch = vec![lpm.clone(), lpm];
        let decoded = protocol::decode_lpms(protocol::encode_lpms(&batch)).unwrap();
        prop_assert_eq!(decoded, batch);
    }

    #[test]
    fn feature_protocol_roundtrip(
        fragments in 1u64..256,
        mapping in prop::collection::vec((0u64..1000, 0u64..50, 0u64..1000, 0usize..8), 0..5),
        sign in any::<u64>(),
        sources in prop::collection::vec(any::<u32>(), 0..6),
    ) {
        let f = LecFeature {
            fragments,
            mapping: mapping
                .iter()
                .map(|&(a, l, b, qe)| {
                    (EdgeRef { from: TermId(a), label: TermId(l), to: TermId(b) }, qe)
                })
                .collect(),
            sign,
            sources,
        };
        let decoded =
            protocol::decode_features(protocol::encode_features(std::slice::from_ref(&f)))
                .unwrap();
        prop_assert_eq!(decoded, vec![f]);
    }

    #[test]
    fn ntriples_roundtrip(
        subj in "[a-z]{1,10}",
        pred in "[a-z]{1,10}",
        lex in "[ -~]{0,30}",
        lang in prop::option::of("[a-z]{2}"),
    ) {
        let object = match lang {
            Some(tag) => Term::Literal(Literal::lang(lex.clone(), tag)),
            None => Term::Literal(Literal::plain(lex.clone())),
        };
        let triple = Triple::new(
            Term::iri(format!("http://s/{subj}")),
            Term::iri(format!("http://p/{pred}")),
            object,
        );
        let text = triple.to_string();
        let parsed = gstored::rdf::parse_ntriples_line(&text, 1).unwrap().unwrap();
        prop_assert_eq!(parsed, triple);
    }

    #[test]
    fn sparql_display_reparses(
        n_edges in 1usize..5,
        seed in 0u64..10_000,
    ) {
        let text = gstored::datagen::random::random_query(n_edges, 4, None, seed);
        let q = gstored::sparql::parse_query(&text).unwrap();
        let pretty = q.to_string();
        let q2 = gstored::sparql::parse_query(&pretty).unwrap();
        prop_assert_eq!(q, q2);
    }

    #[test]
    fn request_envelope_roundtrip(
        qid in 0u32..u32::MAX,
        center in 0usize..64,
        bits in 64usize..8192,
        first_id in any::<u32>(),
        useful in prop::collection::vec(any::<u32>(), 0..32),
        filter_vertices in prop::collection::vec((0usize..8, 0u64..512), 0..4),
        seq in any::<u64>(),
        max in any::<usize>(),
    ) {
        let query = QueryId(qid);
        let requests = vec![
            Request::StarMatches { query, center },
            Request::ComputeCandidates { query, bits },
            Request::SetCandidateFilter {
                query,
                vectors: filter_vertices
                    .iter()
                    .map(|&(v, seed)| {
                        let mut bv = BitVectorFilter::new(256);
                        bv.insert(TermId(seed));
                        (v, bv)
                    })
                    .collect(),
            },
            Request::PartialEval { query },
            Request::ComputeLecFeatures { query, first_id },
            Request::DropPruned { query, useful: useful.clone() },
            Request::ShipSurvivors { query },
            Request::ShipSurvivorsChunk { query, seq, max },
            Request::ShipSurvivorsChunk { query, seq: 0, max: usize::MAX },
            Request::CancelQuery { query },
            Request::ReleaseQuery { query },
            Request::WorkerStatus { query },
            Request::Shutdown,
        ];
        for req in requests {
            let frame = protocol::encode_request(&req);
            let decoded = protocol::decode_request(frame.clone()).unwrap();
            // Request carries non-PartialEq payloads; canonical
            // re-encoding must be byte-identical.
            prop_assert_eq!(decoded.query_id(), req.query_id());
            prop_assert_eq!(protocol::encode_request(&decoded), frame);
        }
    }

    #[test]
    fn request_frame_length_ignores_query_id(
        a in 0u32..u32::MAX,
        b in 0u32..u32::MAX,
    ) {
        // Per-session shipment determinism: ids are fixed-width, so the
        // thousandth query of a session ships the same bytes as its
        // first.
        for (x, y) in [
            (
                protocol::encode_request(&Request::PartialEval { query: QueryId(a) }),
                protocol::encode_request(&Request::PartialEval { query: QueryId(b) }),
            ),
            (
                protocol::encode_request(&Request::ReleaseQuery { query: QueryId(a) }),
                protocol::encode_request(&Request::ReleaseQuery { query: QueryId(b) }),
            ),
        ] {
            prop_assert_eq!(x.len(), y.len());
        }
    }

    #[test]
    fn response_envelope_roundtrip(
        elapsed_nanos in any::<u64>(),
        qid in any::<u32>(),
        rows in prop::collection::vec(prop::collection::vec(any::<u64>(), 2), 0..8),
        lpm_count in any::<u64>(),
        fragment in 0usize..16,
        bindings in prop::collection::vec(prop::option::of(0u64..10_000), 1..6),
        crossings in prop::collection::vec((0u64..1000, 0u64..50, 0u64..1000, 0usize..8), 0..3),
        mask in any::<u64>(),
        message in "[ -~]{0,40}",
        status in prop::collection::vec(any::<u64>(), 5),
        chunk_seq in any::<u64>(),
        chunk_last in any::<bool>(),
    ) {
        let locals: Vec<Vec<TermId>> = rows
            .iter()
            .map(|r| r.iter().map(|&v| TermId(v)).collect())
            .collect();
        let lpm = arbitrary_lpm(fragment, &bindings, &crossings, mask);
        let bodies = vec![
            ResponseBody::Ack,
            ResponseBody::Bindings(locals.clone()),
            ResponseBody::BitVectors(vec![BitVectorFilter::new(128)]),
            ResponseBody::PartialEval { locals, lpm_count },
            ResponseBody::Features(vec![LecFeature::of_lpm(&lpm)]),
            ResponseBody::Survivors(vec![lpm.clone()]),
            ResponseBody::SurvivorsChunk {
                lpms: vec![lpm.clone(), lpm],
                seq: chunk_seq,
                last: chunk_last,
            },
            ResponseBody::SurvivorsChunk { lpms: vec![], seq: 0, last: true },
            ResponseBody::Status(WorkerStatus {
                resident_queries: status[0],
                resident_lpms: status[1],
                capacity: status[2],
                evictions: status[3],
                ttl_evictions: status[4],
            }),
            ResponseBody::UnknownQuery(QueryId(qid.wrapping_add(1))),
            ResponseBody::Error(message),
        ];
        for body in bodies {
            let resp = Response { elapsed_nanos, query: QueryId(qid), body };
            let frame = protocol::encode_response(&resp);
            let decoded = protocol::decode_response(frame).unwrap();
            prop_assert_eq!(decoded, resp);
        }
    }

    #[test]
    fn response_frame_length_ignores_elapsed_and_query_id(
        a in any::<u64>(),
        b in any::<u64>(),
        qa in any::<u32>(),
        qb in any::<u32>(),
        lpm_count in any::<u64>(),
    ) {
        // Shipment determinism across backends hinges on this: the
        // elapsed stamp and query id are fixed-width, so neither timing
        // nor how many queries ran before changes frame sizes.
        let body = ResponseBody::PartialEval { locals: vec![], lpm_count };
        let fast = Response { elapsed_nanos: a, query: QueryId(qa), body: body.clone() };
        let slow = Response { elapsed_nanos: b, query: QueryId(qb), body };
        prop_assert_eq!(
            protocol::encode_response(&fast).len(),
            protocol::encode_response(&slow).len()
        );
    }

    #[test]
    fn bindings_protocol_roundtrip(
        rows in prop::collection::vec(
            prop::collection::vec(any::<u64>(), 3),
            0..20
        ),
    ) {
        let bindings: Vec<Vec<TermId>> = rows
            .iter()
            .map(|r| r.iter().map(|&v| TermId(v)).collect())
            .collect();
        let decoded =
            protocol::decode_bindings(protocol::encode_bindings(&bindings)).unwrap();
        prop_assert_eq!(decoded, bindings);
    }

    /// A hostile `SurvivorsChunk` reply claiming an enormous LPM count
    /// must decode to a typed error — never a panic or a huge
    /// `Vec::with_capacity` (a persistent coordinator reads frames from
    /// workers it does not control).
    #[test]
    fn hostile_survivors_chunk_counts_are_decode_errors(
        qid in any::<u32>(),
        seq in any::<u64>(),
        claimed in 1_000_000u64..u64::MAX / 2,
    ) {
        // Envelope layout: elapsed u64 fixed, query u32 fixed, tag 10
        // (SurvivorsChunk), seq varint, last bool, then the LPM batch,
        // which opens with its element count.
        let mut w = gstored::net::WireWriter::new();
        w.u64_fixed(0).u32_fixed(qid).u64(10).u64(seq).bool(true).u64(claimed);
        prop_assert!(protocol::decode_response(w.finish()).is_err());
    }

    /// Truncated streaming request frames (ShipSurvivorsChunk missing its
    /// cursor fields, CancelQuery missing its id) are decode errors, and
    /// any prefix of a valid streaming frame decodes without panicking.
    #[test]
    fn truncated_streaming_frames_never_panic(
        qid in any::<u32>(),
        seq in any::<u64>(),
        max in any::<usize>(),
        cut in 0usize..64,
    ) {
        let query = QueryId(qid);
        for frame in [
            protocol::encode_request(&Request::ShipSurvivorsChunk { query, seq, max }),
            protocol::encode_request(&Request::CancelQuery { query }),
            protocol::encode_response(&Response {
                elapsed_nanos: 1,
                query,
                body: ResponseBody::SurvivorsChunk { lpms: vec![], seq, last: false },
            }),
        ] {
            let cut = cut.min(frame.len().saturating_sub(1));
            let _ = protocol::decode_request(frame.slice(0..cut));
            let _ = protocol::decode_response(frame.slice(0..cut));
            // Full frames decode through exactly one of the two codecs.
            let full = protocol::decode_request(frame.clone()).is_ok()
                || protocol::decode_response(frame).is_ok();
            prop_assert!(full);
        }
    }

    /// Arbitrary byte soup through both envelope decoders: errors are
    /// fine, panics and runaway allocations are not.
    #[test]
    fn random_bytes_never_panic_the_decoders(
        soup in prop::collection::vec(0u64..256, 0..256),
    ) {
        let frame = bytes::Bytes::from(soup.into_iter().map(|b| b as u8).collect::<Vec<u8>>());
        let _ = protocol::decode_request(frame.clone());
        let _ = protocol::decode_response(frame);
    }
}
