//! The paper's running example, end to end: the distributed RDF graph of
//! Fig. 1, the query of Fig. 2, the local partial matches of Fig. 3
//! (byte-for-byte serialization vectors), the LEC features of Example 6,
//! the grouping of Example 7, the pruning of `LF([PM2_3])`, and the final
//! assembly of Example 8.

use std::collections::HashMap;

use gstored::core::engine::Variant;
use gstored::core::lec::compute_lec_features;
use gstored::core::prune::prune_features;
use gstored::partition::ExplicitPartitioner;
use gstored::prelude::*;
use gstored::rdf::Triple;
use gstored::store::candidates::CandidateFilter;
use gstored::store::{enumerate_local_partial_matches, find_matches, EncodedQuery};

const INFLUENCED: &str = "http://o/influencedBy";
const INTEREST: &str = "http://o/mainInterest";
const LABEL: &str = "http://o/label";
const NAME: &str = "http://o/name";

/// Vertex IRI carrying the Fig. 1 vertex id, e.g. `http://e/001`.
fn e(n: u32) -> String {
    format!("http://e/{n:03}")
}

fn t(s: u32, p: &str, o: u32) -> Triple {
    Triple::new(Term::iri(e(s)), Term::iri(p), Term::iri(e(o)))
}

/// Fig. 1's graph. Literals are modeled as IRI-named vertices carrying
/// the figure's numeric ids so the serialization vectors are literal.
fn paper_graph() -> RdfGraph {
    let mut g = RdfGraph::from_triples(vec![
        // F1: 001 (s1:Phi1), 002, 003 ("Crispin Wright"), 004, 005 (s1:Int1).
        t(1, NAME, 3),
        t(1, "http://o/birthDate", 2),
        t(5, LABEL, 4),
        // F2: 006 (s2:Phi2), 007-011, 014 (s2:Phi4), 018.
        t(6, NAME, 7),
        t(6, INTEREST, 8),
        t(8, LABEL, 9),
        t(6, INTEREST, 10),
        t(10, LABEL, 11),
        t(14, NAME, 18),
        // F3: 012 (s3:Phi3), 013 (s3:Int4), 015-017, 019, 020.
        t(12, NAME, 15),
        t(13, LABEL, 17),
        t(19, LABEL, 20),
        t(14, "http://o/birthPlace", 19),
        // Crossing edges of Fig. 1.
        t(1, INFLUENCED, 6),
        t(6, INTEREST, 5),
        t(1, INFLUENCED, 12),
        t(12, INTEREST, 13),
        t(14, INTEREST, 13),
    ]);
    g.finalize();
    g
}

fn paper_partitioner(g: &RdfGraph) -> ExplicitPartitioner {
    let mut map = HashMap::new();
    for (frag, ids) in [
        (0usize, vec![1, 2, 3, 4, 5]),
        (1, vec![6, 7, 8, 9, 10, 11, 14, 18]),
        (2, vec![12, 13, 15, 16, 17, 19, 20]),
    ] {
        for id in ids {
            if let Some(v) = g.vertex_of(&Term::iri(e(id))) {
                map.insert(v, frag);
            }
        }
    }
    ExplicitPartitioner::new(3, map)
}

/// Fig. 2's query text.
fn paper_query_text() -> String {
    format!(
        "SELECT ?p2 ?l WHERE {{ \
         ?t <{LABEL}> ?l . \
         ?p1 <{INFLUENCED}> ?p2 . \
         ?p2 <{INTEREST}> ?t . \
         ?p1 <{NAME}> <{}> . }}",
        e(3)
    )
}

/// Fig. 2's query. Query vertices in pattern order: v1=?p2, v2=?t,
/// v3=?p1, v4=?l, v5=003 — we order patterns so the vertex indexes are
/// v2,v4,v3,v1,v5 -> see `vid`.
fn paper_query() -> QueryGraph {
    QueryGraph::from_query(&gstored::sparql::parse_query(&paper_query_text()).unwrap()).unwrap()
}

/// Map the paper's v1..v5 naming to our vertex indexes.
fn vid(q: &QueryGraph, paper: &str) -> usize {
    match paper {
        "v1" => q.vertex_of_var("p2").unwrap(),
        "v2" => q.vertex_of_var("t").unwrap(),
        "v3" => q.vertex_of_var("p1").unwrap(),
        "v4" => q.vertex_of_var("l").unwrap(),
        "v5" => (0..q.vertex_count())
            .find(|&v| !q.vertex(v).is_var())
            .unwrap(),
        other => panic!("unknown {other}"),
    }
}

/// Render an LPM's serialization vector in the paper's v1..v5 order using
/// Fig. 1 vertex numbers, e.g. `[006,NULL,001,NULL,003]`.
fn serialization(
    dist: &gstored::partition::DistributedGraph,
    q: &QueryGraph,
    lpm: &gstored::store::LocalPartialMatch,
) -> String {
    let names = ["v1", "v2", "v3", "v4", "v5"];
    let parts: Vec<String> = names
        .iter()
        .map(|n| match lpm.binding[vid(q, n)] {
            Some(u) => {
                let Term::Iri(iri) = dist.dict().resolve(u) else {
                    panic!()
                };
                iri.rsplit('/').next().unwrap().to_string()
            }
            None => "NULL".to_string(),
        })
        .collect();
    format!("[{}]", parts.join(","))
}

#[test]
fn fig3_local_partial_matches_byte_for_byte() {
    let g = paper_graph();
    let query = paper_query();
    let partitioner = paper_partitioner(&g);
    let dist = DistributedGraph::build(g, &partitioner);
    assert_eq!(dist.validate(), None);
    let q = EncodedQuery::encode(&query, dist.dict()).unwrap();
    let filter = CandidateFilter::none(q.vertex_count());

    let mut rendered: Vec<Vec<String>> = Vec::new();
    for f in &dist.fragments {
        let mut lpms: Vec<String> = enumerate_local_partial_matches(f, &q, &filter)
            .iter()
            .map(|m| serialization(&dist, &query, m))
            .collect();
        lpms.sort();
        rendered.push(lpms);
    }
    // Fig. 3, F1: PM1_1, PM2_1, PM3_1.
    assert_eq!(
        rendered[0],
        vec![
            "[006,005,NULL,004,NULL]",
            "[006,NULL,001,NULL,003]",
            "[012,NULL,001,NULL,003]"
        ]
    );
    // Fig. 3, F2: PM1_2, PM2_2, PM3_2.
    assert_eq!(
        rendered[1],
        vec![
            "[006,005,001,NULL,NULL]",
            "[006,008,001,009,NULL]",
            "[006,010,001,011,NULL]"
        ]
    );
    // Fig. 3, F3: PM1_3, PM2_3.
    assert_eq!(
        rendered[2],
        vec!["[012,013,001,017,NULL]", "[014,013,NULL,017,NULL]"]
    );
}

#[test]
fn example6_lec_features_compress_pm12_pm22() {
    let g = paper_graph();
    let query = paper_query();
    let partitioner = paper_partitioner(&g);
    let dist = DistributedGraph::build(g, &partitioner);
    let q = EncodedQuery::encode(&query, dist.dict()).unwrap();
    let filter = CandidateFilter::none(q.vertex_count());

    // F2 has three LPMs but only two LEC features (PM1_2 and PM2_2 share
    // one — Example 6).
    let lpms_f2 = enumerate_local_partial_matches(&dist.fragments[1], &q, &filter);
    assert_eq!(lpms_f2.len(), 3);
    let (features, of) = compute_lec_features(&lpms_f2, 0);
    assert_eq!(features.len(), 2, "Example 6: LF([PM1_2]) = LF([PM2_2])");
    // The two 4-bound LPMs share a feature; the 3-bound one is alone.
    let full: Vec<usize> = lpms_f2
        .iter()
        .enumerate()
        .filter(|(_, m)| m.bound_count() == 4)
        .map(|(i, _)| of[i])
        .collect();
    assert_eq!(full.len(), 2);
    assert_eq!(full[0], full[1]);
}

#[test]
fn algorithm2_prunes_pm23_and_nothing_else_in_f3() {
    let g = paper_graph();
    let query = paper_query();
    let partitioner = paper_partitioner(&g);
    let dist = DistributedGraph::build(g, &partitioner);
    let q = EncodedQuery::encode(&query, dist.dict()).unwrap();
    let filter = CandidateFilter::none(q.vertex_count());
    let query_edges: Vec<(usize, usize)> = q.edges().iter().map(|e| (e.from, e.to)).collect();

    let mut all_features = Vec::new();
    let mut per_lpm: Vec<(usize, String, Vec<u32>)> = Vec::new(); // (frag, serialization, sources)
    let mut next = 0u32;
    for f in &dist.fragments {
        let lpms = enumerate_local_partial_matches(f, &q, &filter);
        let (features, of) = compute_lec_features(&lpms, next);
        next += lpms.len() as u32 + 1;
        for (i, lpm) in lpms.iter().enumerate() {
            per_lpm.push((
                f.id,
                serialization(&dist, &query, lpm),
                features[of[i]].sources.clone(),
            ));
        }
        all_features.extend(features);
    }
    let useful = prune_features(&all_features, q.vertex_count(), &query_edges);
    let pruned: Vec<&str> = per_lpm
        .iter()
        .filter(|(_, _, sources)| !sources.iter().any(|s| useful.contains(s)))
        .map(|(_, s, _)| s.as_str())
        .collect();
    // The paper (after Algorithm 2): "P5 = LF([PM2_3]) ... can be filtered
    // out". PM2_3 = [014,013,NULL,017,NULL]. Everything else survives.
    assert_eq!(pruned, vec!["[014,013,NULL,017,NULL]"]);
}

#[test]
fn final_matches_all_variants_and_baselines_agree() {
    let g = paper_graph();
    let query = paper_query();
    let q = EncodedQuery::encode(&query, g.dict()).unwrap();
    let mut reference = find_matches(&g, &q);
    reference.sort_unstable();
    // The crossing match of Example 3 (003,001,006,008,009) plus the
    // other three interest combinations: 4 matches total.
    assert_eq!(reference.len(), 4);

    let partitioner = paper_partitioner(&g);
    let dist = DistributedGraph::build(g.clone(), &partitioner);
    for variant in Variant::ALL {
        let db = GStoreD::builder()
            .distributed(dist.clone())
            .variant(variant)
            .build()
            .unwrap();
        let results = db.query(&paper_query_text()).unwrap();
        let mut got = results.bindings().to_vec();
        got.sort_unstable();
        assert_eq!(got, reference, "{}", variant.label());
        assert_eq!(
            results.metrics().crossing_matches,
            4,
            "all Fig. 1 matches cross fragments"
        );
    }

    use gstored::baselines::{
        cliquesquare::CliqueSquareLike, dream::DreamLike, s2rdf::S2rdfLike, s2x::S2xLike, Baseline,
    };
    let baselines: Vec<Box<dyn Baseline>> = vec![
        Box::new(DreamLike::default()),
        Box::new(S2xLike::default()),
        Box::new(S2rdfLike::default()),
        Box::new(CliqueSquareLike::default()),
    ];
    for b in baselines {
        let out = b.run(&g, &dist, &query);
        assert_eq!(out.bindings, reference, "{}", b.name());
    }
}

#[test]
fn projected_rows_are_p2_l_pairs() {
    let g = paper_graph();
    let partitioner = paper_partitioner(&g);
    let db = GStoreD::builder()
        .graph(g)
        .partitioner(partitioner)
        .variant(Variant::Full)
        .build()
        .unwrap();
    let results = db.query(&paper_query_text()).unwrap();
    assert_eq!(results.len(), 4);
    // ?p2 ∈ {006, 012}; ?l ∈ {009, 011, 004, 017}.
    for sol in &results {
        let p2 = sol["p2"].to_string();
        assert!(p2.contains("/006") || p2.contains("/012"), "{p2}");
        assert_eq!(&sol["p2"], &sol[0], "by-name equals by-index");
        assert_eq!(&sol["l"], &sol[1]);
    }
}
