//! The prepared-query contract of the `GStoreD` facade:
//!
//! * one `PreparedQuery`, re-executed any number of times, returns
//!   bindings identical to the one-shot path — under every engine
//!   variant and every partitioning strategy;
//! * prepare-time work (parse / encode / shape analysis) happens exactly
//!   once regardless of execution count (asserted via `SessionStats`);
//! * `QuerySolution` by-name lookup always agrees with projection-order
//!   indexing (property-tested over random graphs and queries).

use proptest::prelude::*;

use gstored::core::engine::Variant;
use gstored::datagen::random::{random_graph, random_query, RandomGraphConfig};
use gstored::datagen::{yago, YagoConfig};
use gstored::prelude::*;

const EXECUTIONS: u64 = 4;

fn test_graph() -> RdfGraph {
    let mut g = RdfGraph::from_triples(yago::generate(&YagoConfig {
        persons: 200,
        ..Default::default()
    }));
    g.finalize();
    g
}

const TEST_QUERY: &str = "SELECT ?a ?t ?l WHERE { \
     ?a <http://dbpedia.org/ontology/influencedBy> ?b . \
     ?b <http://dbpedia.org/ontology/mainInterest> ?t . \
     ?t <http://www.w3.org/2000/01/rdf-schema#label> ?l }";

#[test]
fn prepared_reexecution_matches_one_shot_for_all_variants_and_partitioners() {
    let g = test_graph();
    let partitioners: Vec<Box<dyn Partitioner>> = vec![
        Box::new(HashPartitioner::new(4)),
        Box::new(SemanticHashPartitioner::new(4)),
        Box::new(MetisLikePartitioner::new(4)),
    ];
    let mut reference: Option<Vec<Vec<TermId>>> = None;
    for p in &partitioners {
        let dist = DistributedGraph::build(g.clone(), p.as_ref());
        for variant in Variant::ALL {
            let label = format!("{} / {}", p.name(), variant.label());
            let db = GStoreD::builder()
                .distributed(dist.clone())
                .variant(variant)
                .build()
                .unwrap();

            // One-shot path (prepare + execute fused).
            let one_shot = db.query(TEST_QUERY).unwrap();
            let mut expected = one_shot.bindings().to_vec();
            expected.sort_unstable();

            // Prepared path: one prepare, many executions.
            let before = db.stats();
            let prepared = db.prepare(TEST_QUERY).unwrap();
            for round in 0..EXECUTIONS {
                let results = prepared.execute().unwrap();
                let mut got = results.bindings().to_vec();
                got.sort_unstable();
                assert_eq!(got, expected, "{label}, round {round}");
            }
            let after = db.stats();
            assert_eq!(
                after.queries_prepared - before.queries_prepared,
                1,
                "{label}: prepare-time work ran once, not per execution"
            );
            assert_eq!(after.executions - before.executions, EXECUTIONS);

            // Every variant × partitioner agrees with every other.
            match &reference {
                None => reference = Some(expected),
                Some(r) => assert_eq!(r, &expected, "{label} diverged"),
            }
        }
    }
    assert!(
        !reference.expect("ran at least one combination").is_empty(),
        "the test query must produce matches"
    );
}

#[test]
fn prepared_path_agrees_with_engine_try_run() {
    // The deprecated-run replacement (`Engine::try_run`) and the facade's
    // prepared path are the same computation.
    let g = test_graph();
    let dist = DistributedGraph::build(g, &HashPartitioner::new(3));
    let query = QueryGraph::from_query(&parse_query(TEST_QUERY).unwrap()).unwrap();
    let engine = Engine::new(EngineConfig::default());
    let one_shot = engine.try_run(&dist, &query).unwrap();

    let db = GStoreD::builder()
        .distributed(dist.clone())
        .build()
        .unwrap();
    let prepared = db.prepare(TEST_QUERY).unwrap();
    let results = prepared.execute().unwrap();
    assert_eq!(results.vertex_rows(), &one_shot.rows[..]);
    assert_eq!(results.bindings(), &one_shot.bindings[..]);
}

#[test]
fn prepared_query_exposes_cached_analysis() {
    let db = GStoreD::builder()
        .graph(test_graph())
        .partitioner(HashPartitioner::new(4))
        .build()
        .unwrap();
    let prepared = db.prepare(TEST_QUERY).unwrap();
    assert_eq!(
        prepared.variables(),
        &["a".to_string(), "t".to_string(), "l".to_string()]
    );
    assert_eq!(prepared.text(), TEST_QUERY);
    // The 3-edge chain a->b->t->l is a path, not a star: the plan's
    // cached shape routes execution through the full distributed
    // machinery (partial evaluation + LEC + assembly).
    assert!(!prepared.shape().is_star());
    assert_eq!(prepared.shape().shape, gstored::sparql::QueryShape::Path);
    assert_eq!(prepared.plan().query().edge_count(), 3);
}

#[test]
fn concurrent_executions_share_one_prepared_query() {
    let db = GStoreD::builder()
        .graph(test_graph())
        .partitioner(HashPartitioner::new(4))
        .build()
        .unwrap();
    let prepared = db.prepare(TEST_QUERY).unwrap();
    let baseline = prepared.execute().unwrap().vertex_rows().to_vec();
    std::thread::scope(|scope| {
        for _ in 0..4 {
            scope.spawn(|| {
                let results = prepared.execute().unwrap();
                assert_eq!(results.vertex_rows(), &baseline[..]);
            });
        }
    });
    assert_eq!(db.stats().queries_prepared, 1);
    assert_eq!(db.stats().executions, 5);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// By-name lookup agrees with projection-order indexing on every
    /// solution of every random query.
    #[test]
    fn by_name_lookup_agrees_with_projection_order_indexing(
        graph_seed in 0u64..5000,
        query_seed in 0u64..5000,
        n_edges in 1usize..4,
        sites in 1usize..5,
    ) {
        let g = random_graph(&RandomGraphConfig {
            vertices: 20,
            edges: 40,
            predicates: 3,
            seed: graph_seed,
        });
        let text = random_query(n_edges, 3, None, query_seed);
        let db = GStoreD::builder()
            .graph(g)
            .partitioner(HashPartitioner::new(sites))
            .build()
            .unwrap();
        let results = db.query(&text).unwrap();
        let vars = results.variables().to_vec();
        for sol in &results {
            prop_assert_eq!(sol.len(), vars.len());
            for (i, name) in vars.iter().enumerate() {
                // sol[name], sol[i], get(name) and get_index(i) all agree.
                prop_assert_eq!(&sol[name.as_str()], &sol[i], "{} on {}", name, text);
                prop_assert_eq!(sol.get(name), sol.get_index(i));
                // And the decoded term is the dictionary decoding of the
                // encoded row.
                prop_assert_eq!(
                    sol.get_index(i).unwrap(),
                    db.dictionary().resolve(sol.vertex_id(i).unwrap())
                );
            }
            prop_assert_eq!(sol.get("not-a-variable"), None);
        }
    }

    /// Prepared re-execution is deterministic and identical to one-shot
    /// on random inputs, and never re-prepares.
    #[test]
    fn prepared_equals_one_shot_on_random_inputs(
        graph_seed in 0u64..5000,
        query_seed in 0u64..5000,
        n_edges in 1usize..4,
    ) {
        let g = random_graph(&RandomGraphConfig {
            vertices: 18,
            edges: 36,
            predicates: 3,
            seed: graph_seed,
        });
        let text = random_query(n_edges, 3, None, query_seed);
        let db = GStoreD::builder()
            .graph(g)
            .partitioner(HashPartitioner::new(3))
            .build()
            .unwrap();
        let one_shot = db.query(&text).unwrap().vertex_rows().to_vec();
        let prepared = db.prepare(&text).unwrap();
        for _ in 0..3 {
            prop_assert_eq!(prepared.execute().unwrap().vertex_rows(), &one_shot[..]);
        }
        prop_assert_eq!(db.stats().queries_prepared, 2, "one-shot + prepared");
        prop_assert_eq!(db.stats().executions, 4);
    }
}
