//! The chaos battery: every query against a fault-injected fleet must
//! either return exactly the fault-free oracle's rows or fail with a
//! typed engine error in bounded time — never panic, never hang, never
//! return wrong rows. Afterwards the workers' state tables must drain
//! to empty (possibly via the session's repair path), so a faulty run
//! cannot leak per-query state into the fleet.
//!
//! Faults come from [`ChaosTransport`] wrapped around the in-process
//! backend via `GStoreDBuilder::chaos`; the schedule is a pure function
//! of the proptest-chosen seed, so failures shrink and replay.

use std::time::{Duration, Instant};

use gstored::core::EngineError;
use gstored::net::ChaosConfig;
use gstored::prelude::*;
use gstored::rdf::{Triple, VertexId};
use proptest::prelude::*;

const P: &str = "http://x/p";
const Q: &str = "http://x/q";

/// Chains a{i} -p-> b{i} -q-> c{i} -p-> d{i}: crossing matches under
/// every partitioner, so all pipeline stages carry real traffic.
fn graph() -> RdfGraph {
    let t = |s: String, p: &str, o: String| Triple::new(Term::iri(s), Term::iri(p), Term::iri(o));
    let mut triples = Vec::new();
    for i in 0..12 {
        triples.push(t(format!("http://v/a{i}"), P, format!("http://v/b{i}")));
        triples.push(t(format!("http://v/b{i}"), Q, format!("http://v/c{i}")));
        triples.push(t(format!("http://v/c{i}"), P, format!("http://v/d{i}")));
    }
    RdfGraph::from_triples(triples)
}

const PATH_QUERY: &str =
    "SELECT * WHERE { ?x <http://x/p> ?y . ?y <http://x/q> ?z . ?z <http://x/p> ?w }";
const STAR_QUERY: &str = "SELECT * WHERE { ?x <http://x/p> ?y . ?y <http://x/q> ?z }";
const QUERIES: [&str; 2] = [PATH_QUERY, STAR_QUERY];

const SITES: usize = 3;
/// Short enough that injected hangs surface fast, long enough that an
/// unfaulted pipeline on a loaded CI box never trips it spuriously.
const DEADLINE: Duration = Duration::from_secs(2);
/// Generous per-call wall bound: deadline + a full repair cycle. A call
/// exceeding this means something blocked past its deadline.
const CALL_BOUND: Duration = Duration::from_secs(60);

fn session(chaos: Option<ChaosConfig>) -> GStoreD {
    let mut builder = GStoreD::builder()
        .graph(graph())
        .partitioner(HashPartitioner::new(SITES))
        .variant(Variant::Full)
        .query_deadline(Some(DEADLINE));
    if let Some(config) = chaos {
        builder = builder.chaos(config);
    }
    builder.build().unwrap()
}

fn sorted_rows(rows: &[Vec<VertexId>]) -> Vec<Vec<VertexId>> {
    let mut sorted = rows.to_vec();
    sorted.sort();
    sorted
}

/// The fault-free answer for each query in `QUERIES`.
fn oracle() -> Vec<Vec<Vec<VertexId>>> {
    let db = session(None);
    QUERIES
        .iter()
        .map(|q| {
            let rows = sorted_rows(db.query(q).unwrap().vertex_rows());
            assert!(!rows.is_empty(), "oracle for {q} is trivial");
            rows
        })
        .collect()
}

/// Bounded-retry drain check: the workers' state tables must reach
/// all-empty. Probe errors are fine — each one routes through the
/// session's repair path, which is exactly what clears sticky simulated
/// faults — but the tables must drain within the retry budget.
fn assert_fleet_drains(db: &GStoreD) {
    let mut last = String::new();
    for _ in 0..40 {
        match db.fleet_status() {
            Ok(statuses) if statuses.iter().all(|s| s.resident_queries == 0) => return,
            Ok(statuses) => {
                last = format!(
                    "resident: {:?}",
                    statuses
                        .iter()
                        .map(|s| s.resident_queries)
                        .collect::<Vec<_>>()
                );
            }
            Err(e) => last = format!("probe error: {e}"),
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("worker tables never drained after chaos battery ({last})");
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 16,
        ..ProptestConfig::default()
    })]

    /// The headline robustness property. Three rounds per query so
    /// sticky faults injected in one round exercise repair in the next.
    #[test]
    fn chaos_queries_match_oracle_or_fail_typed(
        seed in any::<u64>(),
        per_mille in 0u32..40,
    ) {
        let expected = oracle();
        let db = session(Some(ChaosConfig::uniform(seed, per_mille)));
        for (qi, query) in QUERIES.iter().enumerate() {
            for round in 0..3 {
                let start = Instant::now();
                let outcome = db.query(query);
                let elapsed = start.elapsed();
                prop_assert!(
                    elapsed < CALL_BOUND,
                    "{query} round {round}: call blocked {elapsed:?} (> {CALL_BOUND:?})"
                );
                match outcome {
                    Ok(results) => prop_assert_eq!(
                        sorted_rows(results.vertex_rows()),
                        expected[qi].clone(),
                        "{} round {}: wrong rows under chaos", query, round
                    ),
                    // Typed engine failures are the contract; anything
                    // else (parse, config) means chaos corrupted state
                    // it must not reach.
                    Err(gstored::Error::Engine(_)) => {}
                    Err(other) => {
                        panic!("{query} round {round}: non-engine error under chaos: {other}")
                    }
                }
            }
        }
        assert_fleet_drains(&db);
    }

    /// Same property through the streaming path, which repairs on the
    /// iterator's error arm instead of `run_plan`'s retry loop.
    #[test]
    fn chaos_streams_match_oracle_or_fail_typed(
        seed in any::<u64>(),
        per_mille in 0u32..40,
    ) {
        let expected = oracle();
        let db = session(Some(ChaosConfig::uniform(seed, per_mille)));
        for (qi, query) in QUERIES.iter().enumerate() {
            for round in 0..2 {
                let prepared = db.prepare(query).unwrap();
                let start = Instant::now();
                let mut rows = Vec::new();
                let mut failed = false;
                match prepared.stream() {
                    Ok(iter) => {
                        for item in iter {
                            match item {
                                Ok(solution) => rows.push(solution.into_vertex_row()),
                                Err(gstored::Error::Engine(_)) => {
                                    failed = true;
                                    break;
                                }
                                Err(other) => panic!(
                                    "{query} round {round}: non-engine stream error: {other}"
                                ),
                            }
                        }
                    }
                    Err(gstored::Error::Engine(_)) => failed = true,
                    Err(other) => panic!(
                        "{query} round {round}: non-engine stream setup error: {other}"
                    ),
                }
                let elapsed = start.elapsed();
                prop_assert!(
                    elapsed < CALL_BOUND,
                    "{query} round {round}: stream blocked {elapsed:?} (> {CALL_BOUND:?})"
                );
                if !failed {
                    prop_assert_eq!(
                        sorted_rows(&rows),
                        expected[qi].clone(),
                        "{} round {}: wrong streamed rows under chaos", query, round
                    );
                }
            }
        }
        assert_fleet_drains(&db);
    }
}

/// Sticky faults are survivable and the counters witness the recovery
/// machinery. A hang surfaces as `Timeout {site}` and drives the
/// targeted repair path (reconnect + router reset + fragment
/// re-install + retry); a send-side disconnect is unattributable to a
/// router slot and drives a fleet rebuild instead. Both must leave the
/// session able to answer correctly.
#[test]
fn sticky_faults_are_repaired_and_counted() {
    let expected = oracle();
    let db = session(Some(ChaosConfig {
        seed: 11,
        hang_per_mille: 25,
        disconnect_per_mille: 25,
        ..ChaosConfig::default()
    }));
    let mut successes = 0;
    for _ in 0..20 {
        match db.query(PATH_QUERY) {
            Ok(results) => {
                assert_eq!(sorted_rows(results.vertex_rows()), expected[0]);
                successes += 1;
            }
            Err(gstored::Error::Engine(_)) => {}
            Err(other) => panic!("non-engine error under sticky-fault chaos: {other}"),
        }
    }
    assert!(successes > 0, "no query ever survived sticky-fault chaos");
    let stats = db.robustness_stats();
    assert!(
        stats.timeouts > 0,
        "no hang ever surfaced as a timeout: {stats:?}"
    );
    assert!(stats.reconnects > 0, "repair never reconnected: {stats:?}");
    assert!(stats.repairs > 0, "no repair ever completed: {stats:?}");
    assert!(
        stats.retries > 0,
        "no execution was ever retried: {stats:?}"
    );
}

/// A permanently hung site surfaces as a typed timeout-then-unavailable
/// error in bounded time — the coordinator never blocks indefinitely.
/// With `hang_per_mille: 1000` every outgoing frame wedges its site, so
/// even the repair path's re-install probes hang; the session must give
/// up with `SiteUnavailable` after its capped attempts.
#[test]
fn total_hang_fails_typed_in_bounded_time() {
    let db = session(Some(ChaosConfig {
        seed: 5,
        hang_per_mille: 1000,
        ..ChaosConfig::default()
    }));
    let start = Instant::now();
    let outcome = db.query(PATH_QUERY);
    let elapsed = start.elapsed();
    assert!(
        elapsed < CALL_BOUND,
        "hung fleet blocked the coordinator for {elapsed:?}"
    );
    match outcome {
        Err(gstored::Error::Engine(
            EngineError::SiteUnavailable { .. } | EngineError::Timeout { .. },
        )) => {}
        other => panic!("hung fleet produced {other:?}, want timeout/site-unavailable"),
    }
    let stats = db.robustness_stats();
    assert!(
        stats.timeouts > 0,
        "hang never surfaced as a timeout: {stats:?}"
    );
    assert!(
        stats.repairs_failed > 0,
        "repair of a dead site never reported failure: {stats:?}"
    );
}

/// Chaos disabled is a true pass-through: a schedule wrapped around the
/// fleet but configured all-zero changes nothing — same rows, no
/// robustness events. (The happy-path overhead gate lives in the
/// availability benchmark; this pins semantics.)
#[test]
fn zero_schedule_is_transparent() {
    let expected = oracle();
    let db = session(Some(ChaosConfig {
        seed: 99,
        ..ChaosConfig::default()
    }));
    for (qi, query) in QUERIES.iter().enumerate() {
        let results = db.query(query).unwrap();
        assert_eq!(sorted_rows(results.vertex_rows()), expected[qi]);
    }
    assert_eq!(db.robustness_stats(), RobustnessStats::default());
    let statuses = db.fleet_status().unwrap();
    assert!(statuses.iter().all(|s| s.resident_queries == 0));
}
