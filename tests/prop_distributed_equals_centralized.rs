//! The system's defining correctness property (partitioning tolerance):
//! for ANY graph, ANY vertex-disjoint partitioning and ANY connected BGP,
//! distributed evaluation under every engine variant returns exactly the
//! centralized matches.

use proptest::prelude::*;

use gstored::core::engine::Variant;
use gstored::datagen::random::{random_graph, random_query, RandomGraphConfig};
use gstored::partition::{ExplicitPartitioner, PartitionAssignment};
use gstored::prelude::*;
use gstored::store::{find_matches, EncodedQuery};

/// Evaluate centrally as the reference.
fn reference(g: &RdfGraph, query: &QueryGraph) -> Vec<Vec<gstored::rdf::TermId>> {
    let q = EncodedQuery::encode(query, g.dict()).expect("no predicate projection");
    let mut m = find_matches(g, &q);
    m.sort_unstable();
    m
}

fn run_distributed(
    g: &RdfGraph,
    query_text: &str,
    assignment: &[usize],
    sites: usize,
    variant: Variant,
    star_fast_path: bool,
) -> Vec<Vec<gstored::rdf::TermId>> {
    // Deterministically map the proptest-chosen assignment onto vertices.
    let mut verts: Vec<_> = g.vertices().collect();
    verts.sort_unstable();
    let map: std::collections::HashMap<_, _> = verts
        .iter()
        .enumerate()
        .map(|(i, &v)| (v, assignment[i % assignment.len()] % sites))
        .collect();
    // The builder validates the Definition 1 invariants during build.
    let db = GStoreD::builder()
        .graph(g.clone())
        .assignment(PartitionAssignment {
            k: sites,
            of_vertex: map,
        })
        .variant(variant)
        .star_fast_path(star_fast_path)
        .build()
        .expect("Definition 1 invariants");
    let results = db.query(query_text).expect("generated query evaluates");
    let mut got = results.bindings().to_vec();
    got.sort_unstable();
    got
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Random graph × random partitioning × random query × every variant.
    #[test]
    fn all_variants_match_centralized(
        graph_seed in 0u64..5000,
        query_seed in 0u64..5000,
        assignment in prop::collection::vec(0usize..4, 16),
        n_edges in 1usize..4,
        anchored in any::<bool>(),
    ) {
        let g = random_graph(&RandomGraphConfig {
            vertices: 24,
            edges: 48,
            predicates: 3,
            seed: graph_seed,
        });
        let anchor = anchored.then(|| gstored::datagen::random::vertex_iri(0));
        let text = random_query(n_edges, 3, anchor.as_deref(), query_seed);
        let query = QueryGraph::from_query(
            &gstored::sparql::parse_query(&text).expect("generated query parses"),
        )
        .expect("generated query is connected");
        let expected = reference(&g, &query);
        for variant in Variant::ALL {
            let got = run_distributed(&g, &text, &assignment, 4, variant, true);
            prop_assert_eq!(
                &got, &expected,
                "variant {} on {}", variant.label(), text
            );
        }
    }

    /// The star fast path agrees with the general machinery.
    #[test]
    fn star_fast_path_equals_general_path(
        graph_seed in 0u64..5000,
        assignment in prop::collection::vec(0usize..3, 16),
        leaves in 1usize..4,
    ) {
        let g = random_graph(&RandomGraphConfig {
            vertices: 20,
            edges: 40,
            predicates: 2,
            seed: graph_seed,
        });
        // Build an n-leaf star query around a center variable.
        let mut patterns = Vec::new();
        for i in 0..leaves {
            let p = gstored::datagen::random::predicate_iri(i % 2);
            if i % 2 == 0 {
                patterns.push(format!("?c <{p}> ?l{i} ."));
            } else {
                patterns.push(format!("?l{i} <{p}> ?c ."));
            }
        }
        let text = format!("SELECT * WHERE {{ {} }}", patterns.join(" "));
        let query = QueryGraph::from_query(
            &gstored::sparql::parse_query(&text).unwrap(),
        )
        .unwrap();
        let expected = reference(&g, &query);
        let fast = run_distributed(&g, &text, &assignment, 3, Variant::Full, true);
        let slow = run_distributed(&g, &text, &assignment, 3, Variant::Full, false);
        prop_assert_eq!(&fast, &expected, "fast path diverged on {}", text);
        prop_assert_eq!(&slow, &expected, "general path diverged on {}", text);
    }

    /// Varying the number of sites never changes results.
    #[test]
    fn site_count_is_transparent(
        graph_seed in 0u64..2000,
        query_seed in 0u64..2000,
        assignment in prop::collection::vec(0usize..8, 16),
    ) {
        let g = random_graph(&RandomGraphConfig {
            vertices: 18,
            edges: 36,
            predicates: 3,
            seed: graph_seed,
        });
        let text = random_query(2, 3, None, query_seed);
        let query = QueryGraph::from_query(
            &gstored::sparql::parse_query(&text).unwrap(),
        )
        .unwrap();
        let expected = reference(&g, &query);
        for sites in [1usize, 2, 5, 8] {
            let got = run_distributed(&g, &text, &assignment, sites, Variant::Full, true);
            prop_assert_eq!(&got, &expected, "{} sites on {}", sites, text);
        }
    }
}

/// Adversarial fixed layouts that historically break partial evaluation:
/// every vertex alone; alternating sites along chains; one giant site.
#[test]
fn adversarial_partitionings_on_chain() {
    // Chain 0->1->...->9 with one predicate; path queries of length 1..4.
    let mut triples = Vec::new();
    for i in 0..9 {
        triples.push(gstored::rdf::Triple::new(
            Term::iri(format!("http://c/{i}")),
            Term::iri("http://p"),
            Term::iri(format!("http://c/{}", i + 1)),
        ));
    }
    let mut g = RdfGraph::from_triples(triples);
    g.finalize();

    for len in 1..=4usize {
        let patterns: Vec<String> = (0..len)
            .map(|i| format!("?v{i} <http://p> ?v{} .", i + 1))
            .collect();
        let text = format!("SELECT * WHERE {{ {} }}", patterns.join(" "));
        let query = QueryGraph::from_query(&gstored::sparql::parse_query(&text).unwrap()).unwrap();
        let q = EncodedQuery::encode(&query, g.dict()).unwrap();
        let mut expected = find_matches(&g, &q);
        expected.sort_unstable();
        assert_eq!(expected.len(), 10 - len, "chain sanity: {}", len);

        for layout in 0..3 {
            let mut map = std::collections::HashMap::new();
            let mut verts: Vec<_> = g.vertices().collect();
            verts.sort_unstable();
            for (i, v) in verts.iter().enumerate() {
                let site = match layout {
                    0 => i % 10,              // every vertex on its own site
                    1 => i % 2,               // alternating
                    _ => usize::from(i == 0), // one vertex isolated
                };
                map.insert(*v, site);
            }
            let k = map.values().copied().max().unwrap() + 1;
            let dist = DistributedGraph::build(g.clone(), &ExplicitPartitioner::new(k, map));
            for variant in Variant::ALL {
                let db = GStoreD::builder()
                    .distributed(dist.clone())
                    .variant(variant)
                    .build()
                    .expect("Definition 1 invariants");
                let mut got = db.query(&text).unwrap().bindings().to_vec();
                got.sort_unstable();
                assert_eq!(
                    got,
                    expected,
                    "layout {layout}, len {len}, {}",
                    variant.label()
                );
            }
        }
    }
}
