//! PR8 overlap-equivalence oracle.
//!
//! The overlapped stage driver (`EngineConfig::overlap_stages`) is a
//! pure scheduling change: per-site stage chains replace the classic
//! broadcast-then-gather rounds, but every site still receives the same
//! frames with the same payloads in the same per-site order, so the
//! result rows *and* the per-stage byte/message charges must be exactly
//! what the barriered driver produces. This property pins that claim
//! across all 4 engine variants × 3 partitioning strategies on random
//! graph/query pairs (which cover the star fast path, the pruning-free
//! variants, and the full candidates + LEC pipeline).

use proptest::prelude::*;

use gstored::core::engine::Variant;
use gstored::datagen::random::{random_graph, random_query, RandomGraphConfig};
use gstored::net::{QueryMetrics, StageMetrics};
use gstored::partition::{
    HashPartitioner, MetisLikePartitioner, Partitioner, SemanticHashPartitioner,
};
use gstored::prelude::*;

fn partitioners(sites: usize) -> Vec<Box<dyn Partitioner>> {
    vec![
        Box::new(HashPartitioner::new(sites)),
        Box::new(SemanticHashPartitioner::new(sites)),
        Box::new(MetisLikePartitioner::new(sites)),
    ]
}

/// The deterministic half of a stage's metrics: wall/network timing
/// differs run to run, shipment accounting may not drift by a byte.
fn shipment(stage: &StageMetrics) -> (u64, u64) {
    (stage.bytes_shipped, stage.messages)
}

fn shipment_signature(m: &QueryMetrics) -> [(u64, u64); 4] {
    [
        shipment(&m.candidates),
        shipment(&m.partial_evaluation),
        shipment(&m.lec_optimization),
        shipment(&m.assembly),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Random graph × random query: for every variant under every
    /// partitioner, the overlapped driver returns the barriered driver's
    /// exact sorted rows and its exact per-stage shipment signature.
    #[test]
    fn overlapped_driver_equals_barriered_driver(
        graph_seed in 0u64..5000,
        query_seed in 0u64..5000,
        n_edges in 1usize..4,
    ) {
        let g = random_graph(&RandomGraphConfig {
            vertices: 24,
            edges: 48,
            predicates: 3,
            seed: graph_seed,
        });
        let text = random_query(n_edges, 3, None, query_seed);
        let query = QueryGraph::from_query(
            &gstored::sparql::parse_query(&text).expect("generated query parses"),
        )
        .expect("generated query is connected");

        for p in &partitioners(3) {
            let dist = DistributedGraph::build(g.clone(), p.as_ref());
            for variant in Variant::ALL {
                let run = |overlap: bool| {
                    let engine = Engine::new(EngineConfig {
                        variant,
                        overlap_stages: overlap,
                        ..EngineConfig::default()
                    });
                    let out = engine.try_run(&dist, &query).expect("query evaluates");
                    let mut rows = out.rows.clone();
                    rows.sort_unstable();
                    (rows, shipment_signature(&out.metrics))
                };
                let (barriered_rows, barriered_ship) = run(false);
                let (overlapped_rows, overlapped_ship) = run(true);
                prop_assert_eq!(
                    &overlapped_rows, &barriered_rows,
                    "{} under {} row drift on {}", variant.label(), p.name(), text
                );
                prop_assert_eq!(
                    overlapped_ship, barriered_ship,
                    "{} under {} shipment drift on {}", variant.label(), p.name(), text
                );
            }
        }
    }
}

/// The worked three-edge chain from the docs, pinned outside proptest so
/// a drift reproduces without a seed: all variants, both drivers, equal
/// rows and shipment on a workload that exercises every pipeline stage.
#[test]
fn chain_query_equivalent_under_all_variants() {
    let mut triples = Vec::new();
    for i in 0..40 {
        let v = |k: usize| Term::iri(format!("http://chain/v{i}_{k}"));
        triples.push(Triple::new(v(0), Term::iri("http://chain/p"), v(1)));
        triples.push(Triple::new(v(1), Term::iri("http://chain/q"), v(2)));
        triples.push(Triple::new(v(2), Term::iri("http://chain/r"), v(3)));
    }
    let mut g = RdfGraph::from_triples(triples);
    g.finalize();
    let query = QueryGraph::from_query(
        &parse_query(
            "SELECT * WHERE { ?a <http://chain/p> ?b . \
             ?b <http://chain/q> ?c . ?c <http://chain/r> ?d }",
        )
        .unwrap(),
    )
    .unwrap();
    let dist = DistributedGraph::build(g, &HashPartitioner::new(4));
    for variant in Variant::ALL {
        let run = |overlap: bool| {
            let engine = Engine::new(EngineConfig {
                variant,
                overlap_stages: overlap,
                ..EngineConfig::default()
            });
            let out = engine.try_run(&dist, &query).unwrap();
            let mut rows = out.rows.clone();
            rows.sort_unstable();
            (rows, shipment_signature(&out.metrics))
        };
        let (rows_b, ship_b) = run(false);
        let (rows_o, ship_o) = run(true);
        assert_eq!(rows_o.len(), 40, "{}: chain count", variant.label());
        assert_eq!(rows_o, rows_b, "{}: row drift", variant.label());
        assert_eq!(ship_o, ship_b, "{}: shipment drift", variant.label());
    }
}
