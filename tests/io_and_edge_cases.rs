//! N-Triples file round-trips over generated datasets, plus engine edge
//! cases (empty graphs, self-loops, single-vertex class queries, LIMIT on
//! crossing matches).

use std::io::BufReader;

use gstored::core::engine::{Engine, Variant};
use gstored::datagen::{yago, YagoConfig};
use gstored::prelude::*;
use gstored::rdf::ntriples;
use gstored::rdf::Triple;

#[test]
fn generated_dataset_survives_ntriples_roundtrip() {
    let triples = yago::generate(&YagoConfig { persons: 150, ..Default::default() });
    let text = {
        let mut buf = Vec::new();
        ntriples::write_ntriples(&mut buf, &triples).unwrap();
        String::from_utf8(buf).unwrap()
    };
    let reparsed = ntriples::parse_ntriples(&text).unwrap();
    assert_eq!(reparsed, triples);

    // And through the buffered-reader path.
    let reparsed2 =
        ntriples::parse_ntriples_reader(BufReader::new(text.as_bytes())).unwrap();
    assert_eq!(reparsed2, triples);

    // The graphs built from both are identical in shape.
    let g1 = RdfGraph::from_triples(triples);
    let g2 = RdfGraph::from_triples(reparsed);
    assert_eq!(g1.edge_count(), g2.edge_count());
    assert_eq!(g1.vertex_count(), g2.vertex_count());
    assert_eq!(g1.type_triple_count(), g2.type_triple_count());
}

#[test]
fn single_vertex_class_query_runs_distributed() {
    // `SELECT ?x WHERE { ?x a Person }` — zero query edges, pure class
    // constraint; handled by the star fast path over class candidates.
    let triples = yago::generate(&YagoConfig { persons: 80, ..Default::default() });
    let mut g = RdfGraph::from_triples(triples);
    g.finalize();
    let query = QueryGraph::from_query(
        &gstored::sparql::parse_query(&format!(
            "SELECT ?x WHERE {{ ?x a <{}> }}",
            gstored::datagen::yago::PERSON_CLASS
        ))
        .unwrap(),
    )
    .unwrap();
    assert_eq!(query.edge_count(), 0);
    assert_eq!(query.vertex_count(), 1);
    let dist = DistributedGraph::build(g, &HashPartitioner::new(4));
    for variant in [Variant::Basic, Variant::Full] {
        let out = Engine::with_variant(variant).run(&dist, &query);
        assert_eq!(out.rows.len(), 80, "{}", variant.label());
    }
}

#[test]
fn empty_graph_yields_empty_results() {
    let g = RdfGraph::new();
    let query = QueryGraph::from_query(
        &gstored::sparql::parse_query("SELECT ?x WHERE { ?x <http://p> ?y }").unwrap(),
    )
    .unwrap();
    let dist = DistributedGraph::build(g, &HashPartitioner::new(3));
    let out = Engine::with_variant(Variant::Full).run(&dist, &query);
    assert!(out.rows.is_empty());
    assert_eq!(out.metrics.total_matches(), 0);
}

#[test]
fn self_loops_survive_distribution() {
    let mut g = RdfGraph::from_triples(vec![
        Triple::new(Term::iri("http://a"), Term::iri("http://p"), Term::iri("http://a")),
        Triple::new(Term::iri("http://a"), Term::iri("http://p"), Term::iri("http://b")),
        Triple::new(Term::iri("http://b"), Term::iri("http://p"), Term::iri("http://b")),
    ]);
    g.finalize();
    let query = QueryGraph::from_query(
        &gstored::sparql::parse_query("SELECT ?x WHERE { ?x <http://p> ?x }").unwrap(),
    )
    .unwrap();
    for seed in 0..4 {
        let dist =
            DistributedGraph::build(g.clone(), &HashPartitioner::with_seed(2, seed));
        let out = Engine::with_variant(Variant::Full).run(&dist, &query);
        assert_eq!(out.rows.len(), 2, "seed {seed}: both loop vertices match");
    }
}

#[test]
fn limit_truncates_crossing_matches_deterministically() {
    // Crossing-heavy query with LIMIT: results are sorted before
    // truncation, so the same rows come back under any partitioning.
    let triples = yago::generate(&YagoConfig { persons: 120, ..Default::default() });
    let mut g = RdfGraph::from_triples(triples);
    g.finalize();
    let query = QueryGraph::from_query(
        &gstored::sparql::parse_query(
            "SELECT ?a ?b WHERE { ?a <http://dbpedia.org/ontology/influencedBy> ?b . \
             ?b <http://dbpedia.org/ontology/influencedBy> ?c . \
             ?c <http://dbpedia.org/ontology/birthPlace> ?d } LIMIT 5",
        )
        .unwrap(),
    )
    .unwrap();
    let mut outputs = Vec::new();
    for seed in 0..3 {
        let dist =
            DistributedGraph::build(g.clone(), &HashPartitioner::with_seed(3, seed));
        let out = Engine::with_variant(Variant::Full).run(&dist, &query);
        assert!(out.rows.len() <= 5);
        outputs.push(out.rows);
    }
    assert_eq!(outputs[0], outputs[1]);
    assert_eq!(outputs[1], outputs[2]);
}

#[test]
fn unsatisfiable_class_is_empty_not_error() {
    let triples = yago::generate(&YagoConfig { persons: 30, ..Default::default() });
    let mut g = RdfGraph::from_triples(triples);
    g.finalize();
    let query = QueryGraph::from_query(
        &gstored::sparql::parse_query(
            "SELECT ?x WHERE { ?x a <http://no-such-class> . ?x <http://dbpedia.org/ontology/name> ?n }",
        )
        .unwrap(),
    )
    .unwrap();
    let dist = DistributedGraph::build(g, &HashPartitioner::new(3));
    let out = Engine::with_variant(Variant::Full).run(&dist, &query);
    assert!(out.rows.is_empty());
}

#[test]
fn variable_class_type_pattern_is_rejected_at_parse_layer() {
    let q = gstored::sparql::parse_query("SELECT ?x WHERE { ?x a ?t }").unwrap();
    assert!(matches!(
        QueryGraph::from_query(&q),
        Err(gstored::sparql::SparqlError::Unsupported(_))
    ));
}
