//! N-Triples file round-trips over generated datasets, plus engine edge
//! cases (empty graphs, self-loops, single-vertex class queries, LIMIT on
//! crossing matches), driven through the `GStoreD` facade.

use std::io::BufReader;

use gstored::core::engine::Variant;
use gstored::datagen::{yago, YagoConfig};
use gstored::prelude::*;
use gstored::rdf::ntriples;
use gstored::rdf::Triple;

#[test]
fn generated_dataset_survives_ntriples_roundtrip() {
    let triples = yago::generate(&YagoConfig {
        persons: 150,
        ..Default::default()
    });
    let text = {
        let mut buf = Vec::new();
        ntriples::write_ntriples(&mut buf, &triples).unwrap();
        String::from_utf8(buf).unwrap()
    };
    let reparsed = ntriples::parse_ntriples(&text).unwrap();
    assert_eq!(reparsed, triples);

    // And through the buffered-reader path.
    let reparsed2 = ntriples::parse_ntriples_reader(BufReader::new(text.as_bytes())).unwrap();
    assert_eq!(reparsed2, triples);

    // The graphs built from both are identical in shape.
    let g1 = RdfGraph::from_triples(triples);
    let g2 = RdfGraph::from_triples(reparsed);
    assert_eq!(g1.edge_count(), g2.edge_count());
    assert_eq!(g1.vertex_count(), g2.vertex_count());
    assert_eq!(g1.type_triple_count(), g2.type_triple_count());
}

#[test]
fn single_vertex_class_query_runs_distributed() {
    // `SELECT ?x WHERE { ?x a Person }` — zero query edges, pure class
    // constraint; handled by the star fast path over class candidates.
    let triples = yago::generate(&YagoConfig {
        persons: 80,
        ..Default::default()
    });
    let text = format!(
        "SELECT ?x WHERE {{ ?x a <{}> }}",
        gstored::datagen::yago::PERSON_CLASS
    );
    for variant in [Variant::Basic, Variant::Full] {
        let db = GStoreD::builder()
            .triples(triples.clone())
            .partitioner(HashPartitioner::new(4))
            .variant(variant)
            .build()
            .unwrap();
        let prepared = db.prepare(&text).unwrap();
        assert_eq!(prepared.plan().query().edge_count(), 0);
        assert_eq!(prepared.plan().query().vertex_count(), 1);
        let results = prepared.execute().unwrap();
        assert_eq!(results.len(), 80, "{}", variant.label());
    }
}

#[test]
fn empty_graph_yields_empty_results() {
    let db = GStoreD::builder()
        .partitioner(HashPartitioner::new(3))
        .variant(Variant::Full)
        .build()
        .unwrap();
    let results = db.query("SELECT ?x WHERE { ?x <http://p> ?y }").unwrap();
    assert!(results.is_empty());
    assert_eq!(results.metrics().total_matches(), 0);
}

#[test]
fn self_loops_survive_distribution() {
    let triples = vec![
        Triple::new(
            Term::iri("http://a"),
            Term::iri("http://p"),
            Term::iri("http://a"),
        ),
        Triple::new(
            Term::iri("http://a"),
            Term::iri("http://p"),
            Term::iri("http://b"),
        ),
        Triple::new(
            Term::iri("http://b"),
            Term::iri("http://p"),
            Term::iri("http://b"),
        ),
    ];
    for seed in 0..4 {
        let db = GStoreD::builder()
            .triples(triples.clone())
            .partitioner(HashPartitioner::with_seed(2, seed))
            .variant(Variant::Full)
            .build()
            .unwrap();
        let results = db.query("SELECT ?x WHERE { ?x <http://p> ?x }").unwrap();
        assert_eq!(results.len(), 2, "seed {seed}: both loop vertices match");
    }
}

#[test]
fn limit_truncates_crossing_matches_deterministically() {
    // Crossing-heavy query with LIMIT: results are sorted before
    // truncation, so the same rows come back under any partitioning.
    let triples = yago::generate(&YagoConfig {
        persons: 120,
        ..Default::default()
    });
    let text = "SELECT ?a ?b WHERE { ?a <http://dbpedia.org/ontology/influencedBy> ?b . \
         ?b <http://dbpedia.org/ontology/influencedBy> ?c . \
         ?c <http://dbpedia.org/ontology/birthPlace> ?d } LIMIT 5";
    let mut outputs = Vec::new();
    for seed in 0..3 {
        let db = GStoreD::builder()
            .triples(triples.clone())
            .partitioner(HashPartitioner::with_seed(3, seed))
            .variant(Variant::Full)
            .build()
            .unwrap();
        let results = db.query(text).unwrap();
        assert!(results.len() <= 5);
        outputs.push(results.vertex_rows().to_vec());
    }
    assert_eq!(outputs[0], outputs[1]);
    assert_eq!(outputs[1], outputs[2]);
}

#[test]
fn unsatisfiable_class_is_empty_not_error() {
    let triples = yago::generate(&YagoConfig {
        persons: 30,
        ..Default::default()
    });
    let db = GStoreD::builder()
        .triples(triples)
        .partitioner(HashPartitioner::new(3))
        .variant(Variant::Full)
        .build()
        .unwrap();
    let results = db
        .query(
            "SELECT ?x WHERE { ?x a <http://no-such-class> . ?x <http://dbpedia.org/ontology/name> ?n }",
        )
        .unwrap();
    assert!(results.is_empty());
}

#[test]
fn variable_class_type_pattern_is_rejected_at_parse_layer() {
    let db = GStoreD::builder().build().unwrap();
    assert!(matches!(
        db.prepare("SELECT ?x WHERE { ?x a ?t }"),
        Err(Error::Parse(gstored::sparql::SparqlError::Unsupported(_)))
    ));
}
