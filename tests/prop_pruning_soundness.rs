//! Soundness of the LEC machinery on random inputs:
//!
//! * Algorithm 2 never prunes a local partial match that contributes to a
//!   final match (results with/without pruning coincide).
//! * Algorithm 1's equivalence classing satisfies Theorem 1 (same
//!   feature ⇒ same induced query subgraph) and Theorem 5 (equal signs ⇒
//!   never joinable).
//! * Theorem 2/3: if two features are joinable, every LPM pair across
//!   their classes is joinable at the binding level.

use proptest::prelude::*;

use gstored::core::assembly::{assemble_basic, assemble_lec};
use gstored::core::lec::compute_lec_features;
use gstored::core::prune::prune_features;
use gstored::datagen::random::{random_graph, random_query, RandomGraphConfig};
use gstored::partition::PartitionAssignment;
use gstored::prelude::*;
use gstored::store::candidates::CandidateFilter;
use gstored::store::{enumerate_local_partial_matches, EncodedQuery, LocalPartialMatch};

fn setup(
    graph_seed: u64,
    query_seed: u64,
    assignment: &[usize],
    sites: usize,
    n_edges: usize,
) -> Option<(
    gstored::partition::DistributedGraph,
    QueryGraph,
    EncodedQuery,
    Vec<LocalPartialMatch>,
)> {
    let g = random_graph(&RandomGraphConfig {
        vertices: 20,
        edges: 40,
        predicates: 3,
        seed: graph_seed,
    });
    let text = random_query(n_edges, 3, None, query_seed);
    let query = QueryGraph::from_query(&gstored::sparql::parse_query(&text).ok()?).ok()?;
    let mut verts: Vec<_> = g.vertices().collect();
    verts.sort_unstable();
    let map = verts
        .iter()
        .enumerate()
        .map(|(i, &v)| (v, assignment[i % assignment.len()] % sites))
        .collect();
    let dist = DistributedGraph::build_with_assignment(
        g,
        PartitionAssignment {
            k: sites,
            of_vertex: map,
        },
    );
    let q = EncodedQuery::encode(&query, dist.dict())?;
    let filter = CandidateFilter::none(q.vertex_count());
    let lpms: Vec<LocalPartialMatch> = dist
        .fragments
        .iter()
        .flat_map(|f| enumerate_local_partial_matches(f, &q, &filter))
        .collect();
    Some((dist, query, q, lpms))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 40, ..ProptestConfig::default() })]

    /// Pruned assembly == unpruned assembly == basic assembly.
    #[test]
    fn pruning_preserves_results(
        graph_seed in 0u64..5000,
        query_seed in 0u64..5000,
        assignment in prop::collection::vec(0usize..3, 12),
        n_edges in 2usize..4,
    ) {
        let Some((_dist, _query, q, lpms)) =
            setup(graph_seed, query_seed, &assignment, 3, n_edges)
        else {
            return Ok(());
        };
        let query_edges: Vec<(usize, usize)> =
            q.edges().iter().map(|e| (e.from, e.to)).collect();
        let unpruned = assemble_lec(&lpms, q.vertex_count(), &query_edges);
        let basic = assemble_basic(&lpms, q.vertex_count());
        prop_assert_eq!(&unpruned, &basic, "LEC vs basic assembly");

        // Prune, then assemble only survivors.
        let (features, of) = compute_lec_features(&lpms, 0);
        let useful = prune_features(&features, q.vertex_count(), &query_edges);
        let surviving: Vec<LocalPartialMatch> = lpms
            .iter()
            .zip(&of)
            .filter(|&(_, &fi)| features[fi].sources.iter().any(|s| useful.contains(s)))
            .map(|(m, _)| m.clone())
            .collect();
        let pruned = assemble_lec(&surviving, q.vertex_count(), &query_edges);
        prop_assert_eq!(&pruned, &unpruned, "pruning changed the result set");
    }

    /// Theorem 1: LPMs sharing a LEC feature have identical bound query
    /// vertex sets (the induced subgraph of Q is determined by the class).
    #[test]
    fn theorem1_same_feature_same_structure(
        graph_seed in 0u64..5000,
        query_seed in 0u64..5000,
        assignment in prop::collection::vec(0usize..3, 12),
    ) {
        let Some((_dist, _query, _q, lpms)) =
            setup(graph_seed, query_seed, &assignment, 3, 3)
        else {
            return Ok(());
        };
        let (features, of) = compute_lec_features(&lpms, 0);
        for fi in 0..features.len() {
            let members: Vec<&LocalPartialMatch> = lpms
                .iter()
                .zip(&of)
                .filter(|&(_, &f)| f == fi)
                .map(|(m, _)| m)
                .collect();
            for pair in members.windows(2) {
                let bound_a: Vec<bool> =
                    pair[0].binding.iter().map(Option::is_some).collect();
                let bound_b: Vec<bool> =
                    pair[1].binding.iter().map(Option::is_some).collect();
                prop_assert_eq!(&bound_a, &bound_b, "Theorem 1 violated");
                prop_assert_eq!(pair[0].internal_mask, pair[1].internal_mask);
            }
        }
    }

    /// Theorem 5 + Theorem 2/3: equal signs never joinable; joinable
    /// features imply every cross-class LPM pair joins.
    #[test]
    fn theorems_2_3_5_on_random_inputs(
        graph_seed in 0u64..5000,
        query_seed in 0u64..5000,
        assignment in prop::collection::vec(0usize..3, 12),
    ) {
        let Some((_dist, _query, q, lpms)) =
            setup(graph_seed, query_seed, &assignment, 3, 3)
        else {
            return Ok(());
        };
        let query_edges: Vec<(usize, usize)> =
            q.edges().iter().map(|e| (e.from, e.to)).collect();
        let (features, of) = compute_lec_features(&lpms, 0);
        for i in 0..features.len() {
            for j in 0..features.len() {
                if i == j {
                    continue;
                }
                // Theorem 5.
                if features[i].sign == features[j].sign {
                    prop_assert!(!features[i].joinable(&features[j], &query_edges));
                }
                // Theorem 2/3: joinable features ⇒ all member pairs join.
                if features[i].joinable(&features[j], &query_edges) {
                    for (a, &fa) in lpms.iter().zip(&of) {
                        if fa != i {
                            continue;
                        }
                        for (b, &fb) in lpms.iter().zip(&of) {
                            if fb != j {
                                continue;
                            }
                            prop_assert!(
                                a.joinable(b),
                                "Theorem 3 violated: members of joinable classes must join"
                            );
                        }
                    }
                }
            }
        }
    }
}
