//! The concurrent multi-query runtime acceptance tests: N threads share
//! one `GStoreD` session over one worker fleet, on both backends, and
//! - every query's results equal the sequential baseline,
//! - per-query metrics do not bleed across concurrent queries,
//! - the workers' state tables are empty when the dust settles (no
//!   leaks), and
//! - arbitrarily interleaved `InstallQuery`/`ReleaseQuery`/stage frames
//!   never corrupt another query's state (property test).

use std::net::TcpListener;

use proptest::prelude::*;

use gstored::core::protocol::{self, QueryId, Request, ResponseBody};
use gstored::core::worker::{serve_tcp, SiteWorker};
use gstored::net::QueryMetrics;
use gstored::prelude::*;
use gstored::rdf::Triple;

const P: &str = "http://x/p";
const Q: &str = "http://x/q";

/// A graph with both intra-fragment and crossing matches under every
/// partitioner: chains a{i} -p-> b{i} -q-> c{i} -p-> d{i}.
fn graph() -> RdfGraph {
    let t = |s: String, p: &str, o: String| Triple::new(Term::iri(s), Term::iri(p), Term::iri(o));
    let mut triples = Vec::new();
    for i in 0..12 {
        triples.push(t(format!("http://v/a{i}"), P, format!("http://v/b{i}")));
        triples.push(t(format!("http://v/b{i}"), Q, format!("http://v/c{i}")));
        triples.push(t(format!("http://v/c{i}"), P, format!("http://v/d{i}")));
    }
    RdfGraph::from_triples(triples)
}

const PATH_QUERY: &str =
    "SELECT * WHERE { ?x <http://x/p> ?y . ?y <http://x/q> ?z . ?z <http://x/p> ?w }";
// A 2-edge path is a star centered on its middle vertex, so this takes
// the Section VIII-B fast path.
const STAR_QUERY: &str = "SELECT * WHERE { ?x <http://x/p> ?y . ?y <http://x/q> ?z }";
const QUERIES: [&str; 2] = [PATH_QUERY, STAR_QUERY];

fn spawn_tcp_fleet(k: usize) -> Vec<String> {
    (0..k)
        .map(|_| {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = listener.local_addr().unwrap().to_string();
            std::thread::spawn(move || serve_tcp(listener));
            addr
        })
        .collect()
}

fn builder_for(backend: Option<Vec<String>>) -> GStoreD {
    let b = GStoreD::builder()
        .graph(graph())
        .partitioner(HashPartitioner::new(3))
        .variant(Variant::Full);
    let b = match backend {
        Some(addrs) => b.tcp_workers(addrs),
        None => b,
    };
    b.build().unwrap()
}

fn stage_signature(m: &QueryMetrics) -> Vec<(u64, u64)> {
    [
        &m.candidates,
        &m.partial_evaluation,
        &m.lec_optimization,
        &m.assembly,
    ]
    .iter()
    .map(|s| (s.bytes_shipped, s.messages))
    .collect()
}

/// Per-query baseline: the sequential rows plus the per-stage
/// `(bytes, messages)` shipment signature.
type QueryBaseline = (Vec<Vec<TermId>>, Vec<(u64, u64)>);

/// The shared-session scenario on one backend: sequential baselines,
/// then 4 threads x 3 iterations of mixed path/star queries, with result
/// equality, metric-bleed and leak checks.
fn concurrent_scenario(tcp: bool) {
    let addrs = tcp.then(|| spawn_tcp_fleet(3));
    let db = builder_for(addrs);

    // Sequential baselines: rows and per-stage shipment per query.
    let baseline: Vec<QueryBaseline> = QUERIES
        .iter()
        .map(|q| {
            let r = db.query(q).unwrap();
            assert!(!r.is_empty(), "trivial baseline for {q}");
            (r.vertex_rows().to_vec(), stage_signature(r.metrics()))
        })
        .collect();

    // 4 client threads, each running both queries repeatedly against the
    // same prepared handles (prepare is shared too).
    let prepared: Vec<_> = QUERIES.iter().map(|q| db.prepare(q).unwrap()).collect();
    std::thread::scope(|scope| {
        for client in 0..4 {
            let prepared = &prepared;
            let baseline = &baseline;
            scope.spawn(move || {
                for round in 0..3 {
                    // Stagger which query each client starts with so the
                    // fleet really sees interleaved pipelines.
                    for qi in [client % 2, (client + 1) % 2] {
                        let results = prepared[qi].execute().unwrap();
                        let (rows, stages) = &baseline[qi];
                        assert_eq!(
                            results.vertex_rows(),
                            rows.as_slice(),
                            "client {client} round {round} query {qi}: rows drifted"
                        );
                        assert_eq!(
                            &stage_signature(results.metrics()),
                            stages,
                            "client {client} round {round} query {qi}: \
                             metrics bled across concurrent queries"
                        );
                    }
                }
            });
        }
    });

    // No leaks: every worker's state table is empty after completion.
    for (site, status) in db.fleet_status().unwrap().into_iter().enumerate() {
        assert_eq!(status.resident_queries, 0, "site {site} leaked a query");
        assert_eq!(status.resident_lpms, 0, "site {site} leaked LPMs");
    }

    // 2 baselines + 4 clients x 3 rounds x 2 queries.
    assert_eq!(db.stats().executions, 2 + 24);
}

#[test]
fn concurrent_queries_match_sequential_in_process() {
    concurrent_scenario(false);
}

#[test]
fn concurrent_queries_match_sequential_over_tcp() {
    concurrent_scenario(true);
}

#[test]
fn admission_cap_of_one_still_serves_concurrent_callers() {
    let db = GStoreD::builder()
        .graph(graph())
        .partitioner(HashPartitioner::new(3))
        .max_concurrent_queries(1)
        .build()
        .unwrap();
    let baseline = db.query(PATH_QUERY).unwrap().vertex_rows().to_vec();
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let db = &db;
            let baseline = &baseline;
            scope.spawn(move || {
                let r = db.query(PATH_QUERY).unwrap();
                assert_eq!(r.vertex_rows(), baseline.as_slice());
            });
        }
    });
    for status in db.fleet_status().unwrap() {
        assert_eq!(status.resident_queries, 0);
    }
}

#[test]
fn variants_serve_concurrently_too() {
    // LEC pruning (LO) exercises the DropPruned/ComputeLecFeatures legs
    // under concurrency as well.
    let db = GStoreD::builder()
        .graph(graph())
        .partitioner(HashPartitioner::new(3))
        .variant(Variant::LecOptimization)
        .build()
        .unwrap();
    let baseline = db.query(PATH_QUERY).unwrap().vertex_rows().to_vec();
    std::thread::scope(|scope| {
        for _ in 0..3 {
            let db = &db;
            let baseline = &baseline;
            scope.spawn(move || {
                for _ in 0..2 {
                    let r = db.query(PATH_QUERY).unwrap();
                    assert_eq!(r.vertex_rows(), baseline.as_slice());
                }
            });
        }
    });
    for status in db.fleet_status().unwrap() {
        assert_eq!(status.resident_queries, 0);
    }
}

// --- property test: interleaved install/release frames never corrupt
// another query's state ---

/// One step of the interleaving: which request to send for which of the
/// four candidate query ids.
#[derive(Debug, Clone, Copy)]
enum Op {
    Install(u32),
    Release(u32),
    PartialEval(u32),
    ShipSurvivors(u32),
}

/// Decode `(id, kind)` pairs from the generator into ops (the vendored
/// proptest shim has no `prop_map`).
fn to_op((id, kind): (u32, u8)) -> Op {
    match kind {
        0 => Op::Install(id),
        1 => Op::Release(id),
        2 => Op::PartialEval(id),
        _ => Op::ShipSurvivors(id),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn interleaved_install_release_never_corrupts_state(
        raw_ops in prop::collection::vec((0u32..4, 0u8..4), 1..40),
    ) {
        let ops: Vec<Op> = raw_ops.into_iter().map(to_op).collect();
        let g = graph();
        let dist = DistributedGraph::build(g, &HashPartitioner::new(2));
        let encoded = {
            let qg = QueryGraph::from_query(&parse_query(PATH_QUERY).unwrap()).unwrap();
            gstored::store::EncodedQuery::encode(&qg, dist.dict()).unwrap()
        };
        let fragment = &dist.fragments[0];

        // Oracle: the solo answers of a single-query worker.
        let solo = {
            let mut w = SiteWorker::for_fragment(fragment);
            let ack = w
                .handle(protocol::encode_request(&Request::InstallQuery {
                    query: QueryId(0),
                    encoded: Box::new(encoded.clone()),
                }))
                .unwrap();
            prop_assert!(matches!(
                protocol::decode_response(ack).unwrap().body,
                ResponseBody::Ack
            ));
            let pe = w
                .handle(protocol::encode_request(&Request::PartialEval {
                    query: QueryId(0),
                }))
                .unwrap();
            let pe = protocol::decode_response(pe).unwrap().body;
            let sv = w
                .handle(protocol::encode_request(&Request::ShipSurvivors {
                    query: QueryId(0),
                }))
                .unwrap();
            let sv = protocol::decode_response(sv).unwrap().body;
            (pe, sv)
        };

        // Model of what should be resident: id -> has PartialEval run.
        let mut resident: std::collections::HashMap<u32, bool> = Default::default();
        let mut worker = SiteWorker::for_fragment(fragment);
        let send = |worker: &mut SiteWorker<'_>, req: &Request| {
            let reply = worker.handle(protocol::encode_request(req)).unwrap();
            let resp = protocol::decode_response(reply).unwrap();
            prop_assert_eq!(resp.query, req.query_id());
            Ok(resp.body)
        };
        for op in ops {
            match op {
                Op::Install(id) => {
                    let body = send(&mut worker, &Request::InstallQuery {
                        query: QueryId(id),
                        encoded: Box::new(encoded.clone()),
                    })?;
                    if let std::collections::hash_map::Entry::Vacant(slot) = resident.entry(id) {
                        prop_assert!(matches!(body, ResponseBody::Ack));
                        slot.insert(false);
                    } else {
                        // Duplicate installs are rejected, state intact.
                        prop_assert!(matches!(body, ResponseBody::Error(_)));
                    }
                }
                Op::Release(id) => {
                    let body =
                        send(&mut worker, &Request::ReleaseQuery { query: QueryId(id) })?;
                    prop_assert!(matches!(body, ResponseBody::Ack), "release always acks");
                    resident.remove(&id);
                }
                Op::PartialEval(id) => {
                    let body =
                        send(&mut worker, &Request::PartialEval { query: QueryId(id) })?;
                    match resident.get_mut(&id) {
                        Some(evaluated) => {
                            prop_assert_eq!(&body, &solo.0, "PartialEval answer drifted");
                            *evaluated = true;
                        }
                        None => prop_assert!(
                            matches!(body, ResponseBody::UnknownQuery(q) if q == QueryId(id))
                        ),
                    }
                }
                Op::ShipSurvivors(id) => {
                    let body =
                        send(&mut worker, &Request::ShipSurvivors { query: QueryId(id) })?;
                    match resident.get(&id) {
                        Some(true) => prop_assert_eq!(&body, &solo.1, "survivors drifted"),
                        Some(false) => prop_assert!(
                            matches!(&body, ResponseBody::Survivors(s) if s.is_empty()),
                            "no LPMs before PartialEval"
                        ),
                        None => prop_assert!(
                            matches!(body, ResponseBody::UnknownQuery(q) if q == QueryId(id))
                        ),
                    }
                }
            }
            // The table never exceeds the resident model.
            prop_assert_eq!(worker.status().resident_queries, resident.len() as u64);
        }
    }
}
