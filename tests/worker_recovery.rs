//! Kill-and-restart recovery against real `gstored-worker` processes:
//! a worker killed mid-session must surface as a typed engine error in
//! bounded time (never a hang), and once a replacement is listening on
//! the same address the session must heal itself — reconnect, re-install
//! the fragment, and answer the next query with the fault-free rows —
//! without being rebuilt by hand. Exercised on both TCP transports
//! (blocking per-site sockets and the epoll reactor).

use std::net::{TcpListener, TcpStream};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use gstored::core::engine::EngineConfig;
use gstored::prelude::*;
use gstored::rdf::{Triple, VertexId};

const P: &str = "http://x/p";
const Q: &str = "http://x/q";

fn graph() -> RdfGraph {
    let t = |s: String, p: &str, o: String| Triple::new(Term::iri(s), Term::iri(p), Term::iri(o));
    let mut triples = Vec::new();
    for i in 0..12 {
        triples.push(t(format!("http://v/a{i}"), P, format!("http://v/b{i}")));
        triples.push(t(format!("http://v/b{i}"), Q, format!("http://v/c{i}")));
        triples.push(t(format!("http://v/c{i}"), P, format!("http://v/d{i}")));
    }
    RdfGraph::from_triples(triples)
}

const PATH_QUERY: &str =
    "SELECT * WHERE { ?x <http://x/p> ?y . ?y <http://x/q> ?z . ?z <http://x/p> ?w }";

/// A worker process that is killed when dropped, so a failing test
/// never leaks orphans.
struct Worker {
    child: Child,
    addr: String,
}

impl Worker {
    fn spawn(addr: &str) -> Worker {
        let child = Command::new(env!("CARGO_BIN_EXE_gstored-worker"))
            .arg(addr)
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn gstored-worker");
        let w = Worker {
            child,
            addr: addr.to_string(),
        };
        w.wait_ready();
        w
    }

    /// Block until the worker accepts connections (it binds at startup,
    /// so this converges in a few milliseconds).
    fn wait_ready(&self) {
        let deadline = Instant::now() + Duration::from_secs(10);
        while Instant::now() < deadline {
            if TcpStream::connect(&self.addr).is_ok() {
                return;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        panic!("worker on {} never became ready", self.addr);
    }

    fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for Worker {
    fn drop(&mut self) {
        self.kill();
    }
}

/// Reserve `k` distinct loopback addresses. The listeners are dropped
/// before the workers bind them; `SO_REUSEADDR` (set by the standard
/// library) makes the handoff race-free in practice.
fn reserve_addrs(k: usize) -> Vec<String> {
    let listeners: Vec<TcpListener> = (0..k)
        .map(|_| TcpListener::bind("127.0.0.1:0").unwrap())
        .collect();
    listeners
        .iter()
        .map(|l| l.local_addr().unwrap().to_string())
        .collect()
}

fn sorted_rows(rows: &[Vec<VertexId>]) -> Vec<Vec<VertexId>> {
    let mut sorted = rows.to_vec();
    sorted.sort();
    sorted
}

fn kill_restart_roundtrip(reactor: bool) {
    let label = if reactor { "reactor" } else { "blocking tcp" };
    let oracle = {
        let db = GStoreD::builder()
            .graph(graph())
            .partitioner(HashPartitioner::new(3))
            .build()
            .unwrap();
        sorted_rows(db.query(PATH_QUERY).unwrap().vertex_rows())
    };
    assert!(!oracle.is_empty(), "{label}: trivial oracle");

    let addrs = reserve_addrs(3);
    let mut workers: Vec<Worker> = addrs.iter().map(|a| Worker::spawn(a)).collect();

    let db = GStoreD::builder()
        .graph(graph())
        .partitioner(HashPartitioner::new(3))
        .config(EngineConfig {
            reactor_io: reactor,
            query_deadline: Some(Duration::from_secs(2)),
            ..EngineConfig::default()
        })
        .tcp_workers(addrs.iter().cloned())
        .build()
        .unwrap();

    // Healthy baseline: establishes the fleet and ships the fragments.
    assert_eq!(
        sorted_rows(db.query(PATH_QUERY).unwrap().vertex_rows()),
        oracle,
        "{label}: baseline rows wrong"
    );

    // Kill one site. The next query must fail typed, in bounded time.
    workers[1].kill();
    let start = Instant::now();
    let outcome = db.query(PATH_QUERY);
    let elapsed = start.elapsed();
    assert!(
        elapsed < Duration::from_secs(30),
        "{label}: dead worker blocked the coordinator for {elapsed:?}"
    );
    match outcome {
        Err(gstored::Error::Engine(_)) => {}
        Ok(_) => panic!("{label}: query succeeded with a dead site"),
        Err(other) => panic!("{label}: dead worker produced non-engine error: {other}"),
    }
    let stats = db.robustness_stats();
    assert!(
        stats.repairs_failed + stats.fleet_rebuilds + stats.repairs > 0,
        "{label}: failure handling left no trace: {stats:?}"
    );

    // Restart the dead site on the same address. The session must heal
    // itself: reconnect, re-install the fragment, answer correctly.
    workers[1] = Worker::spawn(&addrs[1]);
    let mut healed = None;
    for _ in 0..5 {
        match db.query(PATH_QUERY) {
            Ok(results) => {
                healed = Some(sorted_rows(results.vertex_rows()));
                break;
            }
            Err(gstored::Error::Engine(_)) => continue,
            Err(other) => panic!("{label}: post-restart non-engine error: {other}"),
        }
    }
    assert_eq!(
        healed.as_deref(),
        Some(oracle.as_slice()),
        "{label}: session never recovered after worker restart"
    );

    // Recovery left nothing resident in the fleet.
    let statuses = db.fleet_status().unwrap();
    assert!(
        statuses.iter().all(|s| s.resident_queries == 0),
        "{label}: resident state leaked across the kill/restart: {statuses:?}"
    );
}

#[test]
fn kill_and_restart_worker_blocking_tcp() {
    kill_restart_roundtrip(false);
}

#[test]
fn kill_and_restart_worker_reactor() {
    kill_restart_roundtrip(true);
}
