//! PR 10's planner-equivalence battery.
//!
//! The cost-based planner ([`gstored::core::planner`]) must never change
//! *answers* — only *work*. Three property families pin that down:
//!
//! 1. **Auto is invisible in the rows**: for ANY random graph, ANY of the
//!    three real partitioners and ANY random connected BGP,
//!    `Variant::Auto` returns exactly the rows of every explicit variant
//!    and of the centralized oracle.
//! 2. **Join reordering is invisible in the joins**: the
//!    smallest-cardinality-first `ComParJoin` of PR 10 produces exactly
//!    the crossing matches of the frozen pre-PR10 insertion-order copy
//!    ([`gstored_bench::reference::assemble_lec_prepr10`]) on LPM sets
//!    enumerated from randomly partitioned random graphs.
//! 3. **The cost model is a function**: decisions are deterministic,
//!    every estimate and cost is finite, the chosen variant really is a
//!    cost minimizer, and the internal-scan estimate grows monotonically
//!    with the data.

use proptest::prelude::*;

use gstored::core::assembly::assemble_lec;
use gstored::core::engine::Variant;
use gstored::core::planner::plan_query;
use gstored::datagen::random::{random_graph, random_query, RandomGraphConfig};
use gstored::partition::Partitioner;
use gstored::prelude::*;
use gstored::store::{
    enumerate_local_partial_matches, find_matches, CandidateFilter, EncodedQuery,
};
use gstored_bench::reference::assemble_lec_prepr10;

const SITES: usize = 3;

fn partitioner(name: &str) -> Box<dyn Partitioner> {
    match name {
        "hash" => Box::new(HashPartitioner::new(SITES)),
        "semantic" => Box::new(SemanticHashPartitioner::new(SITES)),
        "metis" => Box::new(MetisLikePartitioner::new(SITES)),
        other => panic!("unknown partitioner {other}"),
    }
}

/// Centralized oracle: match the query on the unpartitioned graph.
fn reference(g: &RdfGraph, query: &QueryGraph) -> Vec<Vec<gstored::rdf::TermId>> {
    let q = EncodedQuery::encode(query, g.dict()).expect("no predicate projection");
    let mut m = find_matches(g, &q);
    m.sort_unstable();
    m
}

fn query_rows(
    dist: &DistributedGraph,
    text: &str,
    variant: Variant,
) -> Vec<Vec<gstored::rdf::TermId>> {
    let db = GStoreD::builder()
        .distributed(dist.clone())
        .variant(variant)
        .build()
        .expect("Definition 1 invariants");
    let mut got = db
        .query(text)
        .expect("generated query evaluates")
        .bindings()
        .to_vec();
    got.sort_unstable();
    got
}

/// A ring of `n` edges over one predicate — internal counts scale
/// exactly with `n`, which is what the monotonicity property needs.
fn ring(n: usize) -> RdfGraph {
    let mut triples = Vec::new();
    for i in 0..n {
        triples.push(gstored::rdf::Triple::new(
            Term::iri(format!("http://r/{i}")),
            Term::iri("http://p"),
            Term::iri(format!("http://r/{}", (i + 1) % n)),
        ));
    }
    let mut g = RdfGraph::from_triples(triples);
    g.finalize();
    g
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Property family 1: Auto == every explicit variant == centralized,
    /// under all three real partitioning strategies.
    #[test]
    fn auto_matches_every_variant_and_centralized(
        graph_seed in 0u64..5000,
        query_seed in 0u64..5000,
        n_edges in 1usize..4,
        anchored in any::<bool>(),
    ) {
        let g = random_graph(&RandomGraphConfig {
            vertices: 24,
            edges: 48,
            predicates: 3,
            seed: graph_seed,
        });
        let anchor = anchored.then(|| gstored::datagen::random::vertex_iri(0));
        let text = random_query(n_edges, 3, anchor.as_deref(), query_seed);
        let query = QueryGraph::from_query(
            &gstored::sparql::parse_query(&text).expect("generated query parses"),
        )
        .expect("generated query is connected");
        let expected = reference(&g, &query);
        for strategy in ["hash", "semantic", "metis"] {
            let dist = DistributedGraph::build(g.clone(), partitioner(strategy).as_ref());
            for variant in Variant::ALL {
                let got = query_rows(&dist, &text, variant);
                prop_assert_eq!(
                    &got, &expected,
                    "{} under {} on {}", variant.label(), strategy, text
                );
            }
            let auto = query_rows(&dist, &text, Variant::Auto);
            prop_assert_eq!(
                &auto, &expected,
                "Auto under {} on {}", strategy, text
            );
        }
    }

    /// Property family 2: the smallest-cardinality-first ComParJoin
    /// returns exactly the crossing matches of the frozen pre-PR10
    /// insertion-order join, on LPMs from real partitioned enumeration.
    #[test]
    fn reordered_join_equals_frozen_prepr10(
        graph_seed in 0u64..5000,
        query_seed in 0u64..5000,
        n_edges in 1usize..4,
        strategy_pick in 0usize..3,
    ) {
        let g = random_graph(&RandomGraphConfig {
            vertices: 24,
            edges: 48,
            predicates: 3,
            seed: graph_seed,
        });
        let text = random_query(n_edges, 3, None, query_seed);
        let query = QueryGraph::from_query(
            &gstored::sparql::parse_query(&text).expect("generated query parses"),
        )
        .expect("generated query is connected");
        let strategy = ["hash", "semantic", "metis"][strategy_pick];
        let dist = DistributedGraph::build(g.clone(), partitioner(strategy).as_ref());
        let eq = EncodedQuery::encode(&query, dist.dict()).expect("encodable");
        let filter = CandidateFilter::none(eq.vertex_count());
        let mut all_lpms = Vec::new();
        for f in &dist.fragments {
            all_lpms.extend(enumerate_local_partial_matches(f, &eq, &filter));
        }
        let query_edges: Vec<(usize, usize)> =
            eq.edges().iter().map(|e| (e.from, e.to)).collect();
        let reordered = assemble_lec(&all_lpms, eq.vertex_count(), &query_edges);
        let frozen = assemble_lec_prepr10(&all_lpms, eq.vertex_count(), &query_edges);
        prop_assert_eq!(
            reordered, frozen,
            "join-reorder drift under {} on {}", strategy, text
        );
    }

    /// Property family 3a: the planner is a pure function of
    /// (statistics, query) — rerunning it yields the identical decision,
    /// every cost and estimate is finite, every explicit variant is
    /// costed, and the chosen variant minimizes the costed set.
    #[test]
    fn decisions_are_deterministic_finite_and_minimal(
        graph_seed in 0u64..5000,
        query_seed in 0u64..5000,
        n_edges in 1usize..4,
        strategy_pick in 0usize..3,
    ) {
        let g = random_graph(&RandomGraphConfig {
            vertices: 24,
            edges: 48,
            predicates: 3,
            seed: graph_seed,
        });
        let text = random_query(n_edges, 3, None, query_seed);
        let query = QueryGraph::from_query(
            &gstored::sparql::parse_query(&text).expect("generated query parses"),
        )
        .expect("generated query is connected");
        let strategy = ["hash", "semantic", "metis"][strategy_pick];
        let dist = DistributedGraph::build(g.clone(), partitioner(strategy).as_ref());
        let plan = PreparedPlan::new(query, dist.dict()).expect("preparable");
        let first = plan_query(&dist, &plan);
        let second = plan_query(&dist, &plan);
        prop_assert_eq!(&first, &second, "nondeterministic decision on {}", text);
        prop_assert_eq!(first.costs.len(), Variant::ALL.len());
        let chosen_cost = first
            .costs
            .iter()
            .find(|(v, _)| *v == first.chosen)
            .expect("chosen variant is costed")
            .1;
        for (v, c) in &first.costs {
            prop_assert!(c.is_finite() && *c >= 0.0, "cost({}) = {}", v.label(), c);
            prop_assert!(chosen_cost <= *c, "chosen not minimal vs {}", v.label());
        }
        for est in [
            first.est_lpms,
            first.est_crossing_fanout,
            first.est_internal_scan,
            first.est_candidate_selectivity,
        ] {
            prop_assert!(est.is_finite() && est >= 0.0, "estimate {est}");
        }
        prop_assert_eq!(first.join_order.len(), first.edge_cardinalities.len());
        let mut sorted = first.join_order.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..first.edge_cardinalities.len()).collect::<Vec<_>>());
    }

    /// Property family 3b: growing the data never shrinks the total
    /// scan-volume estimate for a fixed query shape. (Internal and
    /// crossing counts individually can trade places when repartitioning
    /// a bigger graph shuffles the assignment; their sum — the partial
    /// evaluation scan volume — cannot shrink.)
    #[test]
    fn scan_volume_estimate_is_monotone_in_data_size(
        base in 4usize..40,
        growth in 1usize..40,
        strategy_pick in 0usize..3,
    ) {
        let strategy = ["hash", "semantic", "metis"][strategy_pick];
        let text = "SELECT * WHERE { ?a <http://p> ?b . ?b <http://p> ?c . }";
        let mut est = Vec::new();
        for n in [base, base + growth] {
            let g = ring(n);
            let dist = DistributedGraph::build(g, partitioner(strategy).as_ref());
            let query = QueryGraph::from_query(
                &gstored::sparql::parse_query(text).unwrap(),
            )
            .unwrap();
            let plan = PreparedPlan::new(query, dist.dict()).expect("preparable");
            let d = plan_query(&dist, &plan);
            est.push(d.est_internal_scan + d.est_crossing_fanout);
        }
        prop_assert!(
            est[0] <= est[1],
            "scan volume estimate shrank: {} edges -> {}, {} edges -> {} ({})",
            base, est[0], base + growth, est[1], strategy
        );
    }
}
