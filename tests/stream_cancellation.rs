//! PR7 stream-cancellation leak tests.
//!
//! A dropped or LIMIT-short-circuited [`gstored::QuerySolutionIter`]
//! must leave **no residue anywhere in the fleet**: every worker's
//! query-state table empty (`fleet_status()` occupancy zero, no resident
//! LPMs) and the session's admission slot released — on the in-process
//! backend and over real TCP workers alike, since cancellation is a
//! protocol broadcast (`CancelQuery`), not an in-process shortcut.

use std::net::TcpListener;

use gstored::core::engine::Backend;
use gstored::core::worker::serve_tcp;
use gstored::prelude::*;
use gstored::rdf::Triple;
use gstored::GStoreD;

const P: &str = "http://x/p";
const Q: &str = "http://x/q";

/// A dense star (one hub, `n` leaves, each leaf with a tail edge): the
/// star query below has `n²` solutions, so LIMIT 1 abandons almost all
/// of them, and the path query keeps every site holding survivor state
/// when a stream is dropped mid-flight.
fn dense_star(n: usize) -> RdfGraph {
    let t = |s: String, p: &str, o: String| Triple::new(Term::iri(s), Term::iri(p), Term::iri(o));
    let mut triples = Vec::new();
    for i in 0..n {
        triples.push(t("http://v/hub".into(), P, format!("http://v/leaf{i}")));
        triples.push(t(
            format!("http://v/leaf{i}"),
            Q,
            format!("http://v/tail{i}"),
        ));
        triples.push(t(
            format!("http://v/tail{i}"),
            P,
            format!("http://v/end{i}"),
        ));
    }
    RdfGraph::from_triples(triples)
}

/// n² star solutions through the Section VIII-B fast path.
const STAR_QUERY: &str = "SELECT * WHERE { ?h <http://x/p> ?a . ?h <http://x/p> ?b }";
/// A 3-edge path — no star center, so it takes the general chunked
/// survivor pipeline.
const PATH_QUERY: &str =
    "SELECT * WHERE { ?a <http://x/p> ?b . ?b <http://x/q> ?c . ?c <http://x/p> ?d }";

/// Spawn `k` persistent TCP workers on ephemeral ports.
fn spawn_tcp_fleet(k: usize) -> Vec<String> {
    (0..k)
        .map(|_| {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = listener.local_addr().unwrap().to_string();
            std::thread::spawn(move || serve_tcp(listener));
            addr
        })
        .collect()
}

fn backends(k: usize) -> Vec<(&'static str, Backend)> {
    vec![
        ("in-process", Backend::InProcess),
        (
            "tcp",
            Backend::Tcp {
                workers: spawn_tcp_fleet(k),
            },
        ),
    ]
}

fn session(backend: Backend, max_concurrent: usize) -> GStoreD {
    GStoreD::builder()
        .graph(dense_star(40))
        .partitioner(HashPartitioner::new(3))
        .backend(backend)
        .max_concurrent_queries(max_concurrent)
        .build()
        .unwrap()
}

fn assert_fleet_drained(session: &GStoreD, context: &str) {
    for (site, status) in session.fleet_status().unwrap().iter().enumerate() {
        assert_eq!(
            status.resident_queries, 0,
            "{context}: site {site} still holds query state"
        );
        assert_eq!(
            status.resident_lpms, 0,
            "{context}: site {site} still holds LPMs"
        );
    }
}

/// Dropping an iterator mid-stream — with rows still pending on every
/// site — must drain the whole fleet, on both backends. The repeat count
/// exceeds `max_concurrent_queries`, so any leaked admission ticket
/// deadlocks the test instead of passing silently.
#[test]
fn dropping_a_stream_midway_drains_the_fleet_on_both_backends() {
    for (name, backend) in backends(3) {
        let session = session(backend, 2);
        for round in 0..5 {
            for query in [STAR_QUERY, PATH_QUERY] {
                let prepared = session.prepare(query).unwrap();
                let mut stream = prepared.stream_with_chunk(1).unwrap();
                let first = stream.next().expect("dense star has solutions").unwrap();
                assert!(!first.vertex_row().is_empty());
                drop(stream);
                assert_fleet_drained(&session, &format!("{name}, drop round {round}, {query}"));
            }
        }
    }
}

/// LIMIT 1 over the dense star: the iterator must cancel the fleet on
/// the same `next()` call that fills the limit — occupancy is zero
/// immediately after the first row, before the iterator is even
/// exhausted or dropped.
#[test]
fn limit_one_over_a_dense_star_releases_the_fleet_on_both_backends() {
    for (name, backend) in backends(3) {
        let session = session(backend, 2);
        for round in 0..5 {
            for query in [
                "SELECT * WHERE { ?h <http://x/p> ?a . ?h <http://x/p> ?b } LIMIT 1",
                "SELECT * WHERE { ?a <http://x/p> ?b . ?b <http://x/q> ?c . \
                 ?c <http://x/p> ?d } LIMIT 1",
            ] {
                let prepared = session.prepare(query).unwrap();
                let mut stream = prepared.stream_with_chunk(1).unwrap();
                let first = stream
                    .next()
                    .expect("limited query yields its row")
                    .unwrap();
                assert!(!first.vertex_row().is_empty());
                // Limit filled on that very call: fleet must already be
                // drained while the iterator is still alive.
                assert_fleet_drained(&session, &format!("{name}, limit round {round}, {query}"));
                assert!(stream.next().is_none(), "limit 1 means one row");
            }
        }
    }
}

/// A fully drained stream releases everything too, and the solution set
/// matches `execute()` on both backends — cancellation plumbing must not
/// perturb the ordinary completion path.
#[test]
fn completed_streams_match_execute_and_release_on_both_backends() {
    for (name, backend) in backends(3) {
        let session = session(backend, 2);
        for query in [STAR_QUERY, PATH_QUERY] {
            let prepared = session.prepare(query).unwrap();
            let expected = prepared.execute().unwrap().vertex_rows().to_vec();
            let mut streamed: Vec<Vec<_>> = prepared
                .stream_with_chunk(3)
                .unwrap()
                .map(|sol| sol.unwrap().into_vertex_row())
                .collect();
            streamed.sort_unstable();
            assert_eq!(streamed, expected, "{name}: {query}");
            assert_fleet_drained(&session, &format!("{name}, completed, {query}"));
        }
    }
}
