//! The pluggable-runtime acceptance tests: the in-process and TCP
//! backends must be observationally identical — same results, same
//! shipped bytes, same message counts — because they exchange
//! byte-identical protocol frames. And the shipment metrics must equal
//! what actually crossed the transport, frame for frame.

use std::net::TcpListener;
use std::time::{Duration, Instant};

use gstored::core::engine::{Backend, Engine, EngineConfig, Variant};
use gstored::core::protocol::{decode_response, encode_request, Request, ResponseBody};
use gstored::core::worker::{send_shutdown, serve_tcp, with_in_process_workers};
use gstored::core::PreparedPlan;
use gstored::net::{QueryMetrics, ReactorTransport, TcpTransport, Transport};
use gstored::prelude::*;
use gstored::rdf::Triple;

const P: &str = "http://x/p";
const Q: &str = "http://x/q";

/// A graph with both intra-fragment matches and crossing matches under
/// every partitioner: chains a{i} -p-> b{i} -q-> c{i} -p-> d{i}.
fn graph() -> RdfGraph {
    let t = |s: String, p: &str, o: String| Triple::new(Term::iri(s), Term::iri(p), Term::iri(o));
    let mut triples = Vec::new();
    for i in 0..12 {
        triples.push(t(format!("http://v/a{i}"), P, format!("http://v/b{i}")));
        triples.push(t(format!("http://v/b{i}"), Q, format!("http://v/c{i}")));
        triples.push(t(format!("http://v/c{i}"), P, format!("http://v/d{i}")));
    }
    RdfGraph::from_triples(triples)
}

const PATH_QUERY: &str =
    "SELECT * WHERE { ?x <http://x/p> ?y . ?y <http://x/q> ?z . ?z <http://x/p> ?w }";
// A 2-edge path is a star centered on its middle vertex, so this takes
// the Section VIII-B fast path.
const STAR_QUERY: &str = "SELECT * WHERE { ?x <http://x/p> ?y . ?y <http://x/q> ?z }";

/// Spawn `k` persistent TCP workers on ephemeral ports; returns their
/// addresses. The worker threads outlive the test (the fleet is shut
/// down explicitly where it matters; otherwise process exit reaps them).
fn spawn_tcp_fleet(k: usize) -> Vec<String> {
    (0..k)
        .map(|_| {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = listener.local_addr().unwrap().to_string();
            std::thread::spawn(move || serve_tcp(listener));
            addr
        })
        .collect()
}

fn partitioners(k: usize) -> Vec<Box<dyn Partitioner>> {
    vec![
        Box::new(HashPartitioner::new(k)),
        Box::new(SemanticHashPartitioner::new(k)),
        Box::new(MetisLikePartitioner::new(k)),
    ]
}

fn assert_same_shipment(a: &QueryMetrics, b: &QueryMetrics, context: &str) {
    for (name, x, y) in [
        ("candidates", &a.candidates, &b.candidates),
        (
            "partial_evaluation",
            &a.partial_evaluation,
            &b.partial_evaluation,
        ),
        ("lec_optimization", &a.lec_optimization, &b.lec_optimization),
        ("assembly", &a.assembly, &b.assembly),
    ] {
        assert_eq!(
            x.bytes_shipped, y.bytes_shipped,
            "{context}: {name} bytes differ between backends"
        );
        assert_eq!(
            x.messages, y.messages,
            "{context}: {name} message counts differ between backends"
        );
        assert_eq!(
            x.network, y.network,
            "{context}: {name} simulated network time differs between backends"
        );
    }
}

#[test]
fn backends_return_identical_results_and_byte_counts() {
    let g = graph();
    let k = 3;
    let addrs = spawn_tcp_fleet(k);
    for partitioner in partitioners(k) {
        let dist = DistributedGraph::build(g.clone(), partitioner.as_ref());
        assert_eq!(dist.validate(), None);
        for variant in Variant::ALL {
            for query in [PATH_QUERY, STAR_QUERY] {
                let plan = PreparedPlan::new(
                    QueryGraph::from_query(&gstored::sparql::parse_query(query).unwrap()).unwrap(),
                    dist.dict(),
                )
                .unwrap();
                let in_process = Engine::new(EngineConfig::variant(variant))
                    .execute(&dist, &plan)
                    .unwrap();
                let tcp = Engine::new(EngineConfig {
                    backend: Backend::Tcp {
                        workers: addrs.clone(),
                    },
                    ..EngineConfig::variant(variant)
                })
                .execute(&dist, &plan)
                .unwrap();
                let context = format!("{} / {} / {query}", partitioner.name(), variant.label());
                assert_eq!(in_process.rows, tcp.rows, "{context}: rows differ");
                assert_eq!(
                    in_process.bindings, tcp.bindings,
                    "{context}: bindings differ"
                );
                assert!(!in_process.rows.is_empty(), "{context}: trivial test");
                assert_same_shipment(&in_process.metrics, &tcp.metrics, &context);
            }
        }
    }
}

#[test]
fn shipment_metrics_equal_frames_on_the_transport() {
    // The anti-double-encoding regression: what the metrics report as
    // shipped must be exactly the frames that crossed the transport —
    // nothing estimated, nothing counted twice.
    let g = graph();
    for variant in Variant::ALL {
        for query in [PATH_QUERY, STAR_QUERY] {
            let dist = DistributedGraph::build(g.clone(), &HashPartitioner::new(3));
            let plan = PreparedPlan::new(
                QueryGraph::from_query(&gstored::sparql::parse_query(query).unwrap()).unwrap(),
                dist.dict(),
            )
            .unwrap();
            let engine = Engine::new(EngineConfig::variant(variant));
            with_in_process_workers(&dist, |transport| {
                let out = engine.execute_on(transport, &dist, &plan).unwrap();
                let m = &out.metrics;
                assert_eq!(
                    m.total_shipped(),
                    transport.counters().bytes(),
                    "{} / {query}: metric bytes != transport frame bytes",
                    variant.label()
                );
                let total_messages = m.candidates.messages
                    + m.partial_evaluation.messages
                    + m.lec_optimization.messages
                    + m.assembly.messages;
                assert_eq!(
                    total_messages,
                    transport.counters().frames(),
                    "{} / {query}: metric messages != transport frames",
                    variant.label()
                );
            });
        }
    }
}

#[test]
fn tcp_workers_are_persistent_across_executions() {
    let g = graph();
    let addrs = spawn_tcp_fleet(2);
    let db = GStoreD::builder()
        .graph(g)
        .partitioner(HashPartitioner::new(2))
        .variant(Variant::Full)
        .tcp_workers(addrs.iter().cloned())
        .build()
        .unwrap();
    let prepared = db.prepare(PATH_QUERY).unwrap();
    let first = prepared.execute().unwrap();
    assert!(!first.is_empty());
    // Same workers serve a second execution and a different query.
    let second = prepared.execute().unwrap();
    assert_eq!(first.vertex_rows(), second.vertex_rows());
    assert_eq!(
        first.metrics().total_shipped(),
        second.metrics().total_shipped()
    );
    let star = db.query(STAR_QUERY).unwrap();
    assert!(!star.is_empty());
    // An explicit shutdown stops the fleet.
    for addr in &addrs {
        send_shutdown(addr).unwrap();
    }
}

/// The TCP_NODELAY regression: `write_frame` issues two small writes per
/// frame (length prefix, then payload), the classic write-write-read
/// pattern where Nagle's algorithm holds the second write until the
/// peer's delayed ACK — ~40ms per round trip on Linux. Every socket in
/// the stack (`TcpTransport::connect`, `ReactorTransport::connect`, and
/// `serve_tcp`'s accepted connections) sets NODELAY, so hundreds of
/// sequential tiny request/reply frames must complete in interactive
/// time. The budget is ~20× what a loopback run needs but far below the
/// tens of seconds a reintroduced Nagle stall would cost.
#[test]
fn small_sequential_frames_are_not_nagle_delayed() {
    let addrs = spawn_tcp_fleet(1);
    const ROUNDS: usize = 200;
    for reactor in [false, true] {
        let transport: Box<dyn Transport> = if reactor {
            Box::new(ReactorTransport::connect(&[addrs[0].as_str()]).unwrap())
        } else {
            Box::new(TcpTransport::connect(&addrs).unwrap())
        };
        let start = Instant::now();
        for _ in 0..ROUNDS {
            let ping = encode_request(&Request::WorkerStatus { query: QueryId(7) });
            transport.send(0, ping).unwrap();
            let reply = decode_response(transport.recv(0).unwrap()).unwrap();
            assert!(
                matches!(reply.body, ResponseBody::Status(_)),
                "status ping got {:?}",
                reply.body
            );
        }
        let elapsed = start.elapsed();
        assert!(
            elapsed < Duration::from_secs(4),
            "{} paid per-frame delays: {ROUNDS} status round trips took {elapsed:?} \
             (Nagle back on a socket?)",
            if reactor { "reactor" } else { "blocking tcp" },
        );
    }
    send_shutdown(&addrs[0]).unwrap();
}

#[test]
fn facade_results_match_across_backends() {
    let g = graph();
    let addrs = spawn_tcp_fleet(3);
    let local = GStoreD::builder()
        .graph(g.clone())
        .partitioner(HashPartitioner::new(3))
        .build()
        .unwrap();
    let remote = GStoreD::builder()
        .graph(g)
        .partitioner(HashPartitioner::new(3))
        .tcp_workers(addrs)
        .build()
        .unwrap();
    let a = local.query(PATH_QUERY).unwrap();
    let b = remote.query(PATH_QUERY).unwrap();
    assert_eq!(a.vertex_rows(), b.vertex_rows());
    assert_eq!(a.metrics().total_shipped(), b.metrics().total_shipped());
}
