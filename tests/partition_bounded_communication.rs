//! Section IV-D's performance guarantee, as an executable check: the LEC
//! optimization's communication depends on the *query size and the
//! partitioning* (number of crossing edges), **not** on the total graph
//! size. We grow a dataset while holding the crossing structure fixed and
//! assert the feature shipment stays flat while the LPM volume grows; we
//! then grow only the crossing structure and assert feature shipment
//! grows with it.

use std::collections::HashMap;

use gstored::core::engine::Variant;
use gstored::partition::ExplicitPartitioner;
use gstored::prelude::*;
use gstored::rdf::Triple;

const P: &str = "http://x/p";
const Q: &str = "http://x/q";

/// Two fragments joined by `bridges` crossing p-edges; each fragment also
/// holds `bulk` internal p/q/p chains that inflate the graph (and the LPM
/// count) without touching the crossing structure. A 3-edge query keeps
/// us off the star fast path.
fn build(bulk: usize, bridges: usize) -> (RdfGraph, ExplicitPartitioner) {
    let mut triples = Vec::new();
    let t = |s: String, p: &str, o: String| Triple::new(Term::iri(s), Term::iri(p), Term::iri(o));
    // Crossing bridges: a{i} (F0) -p-> b{i} (F1) -q-> c{i} (F1) -p-> d{i}.
    for i in 0..bridges {
        triples.push(t(format!("http://f0/a{i}"), P, format!("http://f1/b{i}")));
        triples.push(t(format!("http://f1/b{i}"), Q, format!("http://f1/c{i}")));
        triples.push(t(format!("http://f1/c{i}"), P, format!("http://f1/d{i}")));
    }
    // Internal bulk in both fragments: x -p-> y -q-> z -p-> w chains.
    for f in 0..2 {
        for i in 0..bulk {
            triples.push(t(
                format!("http://f{f}/x{i}"),
                P,
                format!("http://f{f}/y{i}"),
            ));
            triples.push(t(
                format!("http://f{f}/y{i}"),
                Q,
                format!("http://f{f}/z{i}"),
            ));
            triples.push(t(
                format!("http://f{f}/z{i}"),
                P,
                format!("http://f{f}/w{i}"),
            ));
        }
    }
    let mut g = RdfGraph::from_triples(triples);
    g.finalize();
    let mut map = HashMap::new();
    for v in g.vertices() {
        let Term::Iri(iri) = g.term(v) else { continue };
        map.insert(v, usize::from(iri.starts_with("http://f1/")));
    }
    (g.clone(), ExplicitPartitioner::new(2, map))
}

fn run(bulk: usize, bridges: usize) -> gstored::net::QueryMetrics {
    let (g, p) = build(bulk, bridges);
    // The builder validates the Definition 1 invariants.
    let db = GStoreD::builder()
        .graph(g)
        .partitioner(p)
        .variant(Variant::LecOptimization)
        .build()
        .unwrap();
    let results = db
        .query(&format!(
            "SELECT * WHERE {{ ?x <{P}> ?y . ?y <{Q}> ?z . ?z <{P}> ?w }}"
        ))
        .unwrap();
    results.metrics().clone()
}

#[test]
fn feature_shipment_is_independent_of_graph_size() {
    // Grow the graph 16x while the crossing structure stays fixed.
    let small = run(50, 8);
    let large = run(800, 8);
    assert!(
        large.local_partial_matches >= small.local_partial_matches,
        "bulk should not shrink LPM counts"
    );
    // LEC feature shipment must stay flat: the features depend only on
    // the 8 bridges and the 2-edge query.
    assert_eq!(
        small.lec_features, large.lec_features,
        "feature count must depend on crossing edges only"
    );
    let (s, l) = (
        small.lec_optimization.bytes_shipped,
        large.lec_optimization.bytes_shipped,
    );
    assert!(
        l <= s + s / 4,
        "feature shipment grew with graph size: {s} -> {l} bytes"
    );
}

#[test]
fn feature_shipment_grows_with_crossing_edges() {
    let few = run(100, 4);
    let many = run(100, 32);
    assert!(
        many.lec_features > few.lec_features,
        "more crossing edges must mean more features: {} vs {}",
        few.lec_features,
        many.lec_features
    );
    assert!(
        many.lec_optimization.bytes_shipped > few.lec_optimization.bytes_shipped,
        "feature shipment must scale with the crossing structure"
    );
}

#[test]
fn analytical_size_bound_holds() {
    // Every shipped feature respects the O(|E^Q| + |V^Q|) size bound of
    // Section IV-D (constant factor: serialized varints per component).
    use gstored::core::lec::compute_lec_features;
    use gstored::core::protocol::encode_features;
    use gstored::store::candidates::CandidateFilter;
    use gstored::store::{enumerate_local_partial_matches, EncodedQuery};

    let (g, p) = build(100, 16);
    let dist = DistributedGraph::build(g, &p);
    let query = QueryGraph::from_query(
        &gstored::sparql::parse_query(&format!(
            "SELECT * WHERE {{ ?x <{P}> ?y . ?y <{Q}> ?z . ?z <{P}> ?w }}"
        ))
        .unwrap(),
    )
    .unwrap();
    let q = EncodedQuery::encode(&query, dist.dict()).unwrap();
    let filter = CandidateFilter::none(q.vertex_count());
    for f in &dist.fragments {
        let lpms = enumerate_local_partial_matches(f, &q, &filter);
        let (features, _) = compute_lec_features(&lpms, 0);
        for feat in &features {
            let wire = encode_features(std::slice::from_ref(feat)).len();
            // Generous constant: ≤ 64 bytes per (edge + vertex) unit.
            let bound = 64 * (q.edge_count() + q.vertex_count());
            assert!(
                wire <= bound,
                "feature wire size {wire} exceeds bound {bound}"
            );
        }
    }
}
