//! Full-pipeline tests on the three generated benchmark datasets: every
//! engine variant, every partitioning strategy and every baseline must
//! agree with the centralized reference on every benchmark query.

use gstored::baselines::{
    cliquesquare::CliqueSquareLike, dream::DreamLike, s2rdf::S2rdfLike, s2x::S2xLike, Baseline,
    CostModel,
};
use gstored::core::engine::Variant;
use gstored::datagen::{btc, lubm, queries, yago, BenchQuery, BtcConfig, LubmConfig, YagoConfig};
use gstored::prelude::*;
use gstored::store::{find_matches, EncodedQuery};

fn dataset_lubm() -> (RdfGraph, Vec<BenchQuery>) {
    let mut g = RdfGraph::from_triples(lubm::generate(&LubmConfig {
        universities: 4,
        ..Default::default()
    }));
    g.finalize();
    (g, queries::lubm_queries())
}

fn dataset_yago() -> (RdfGraph, Vec<BenchQuery>) {
    let mut g = RdfGraph::from_triples(yago::generate(&YagoConfig {
        persons: 600,
        ..Default::default()
    }));
    g.finalize();
    (g, queries::yago_queries())
}

fn dataset_btc() -> (RdfGraph, Vec<BenchQuery>) {
    let mut g = RdfGraph::from_triples(btc::generate(&BtcConfig {
        publishers: 5,
        ..Default::default()
    }));
    g.finalize();
    (g, queries::btc_queries())
}

fn reference(g: &RdfGraph, query: &QueryGraph) -> Vec<Vec<gstored::rdf::TermId>> {
    let q = EncodedQuery::encode(query, g.dict()).expect("benchmark queries encode");
    let mut m = find_matches(g, &q);
    m.sort_unstable();
    m
}

fn check_dataset(name: &str, g: RdfGraph, queries: Vec<BenchQuery>) {
    let partitioners: Vec<Box<dyn Partitioner>> = vec![
        Box::new(HashPartitioner::new(5)),
        Box::new(SemanticHashPartitioner::new(5)),
        Box::new(MetisLikePartitioner::new(5)),
    ];
    let baselines: Vec<Box<dyn Baseline>> = vec![
        Box::new(DreamLike::new(CostModel::zero())),
        Box::new(S2xLike::new(CostModel::zero())),
        Box::new(S2rdfLike::new(CostModel::zero())),
        Box::new(CliqueSquareLike::new(CostModel::zero())),
    ];
    // Centralized reference per query, computed once.
    let expected: Vec<(String, QueryGraph, Vec<Vec<gstored::rdf::TermId>>)> = queries
        .iter()
        .map(|bq| {
            let query = QueryGraph::from_query(
                &gstored::sparql::parse_query(&bq.text).expect("benchmark query parses"),
            )
            .expect("benchmark query connected");
            let reference = reference(&g, &query);
            (bq.text.clone(), query, reference)
        })
        .collect();
    let any_nonempty = expected.iter().any(|(_, _, r)| !r.is_empty());

    // One session per (partitioner, variant); every query runs through it.
    for p in &partitioners {
        // The builder validates the Definition 1 invariants.
        let dist = DistributedGraph::build(g.clone(), p.as_ref());
        for variant in [Variant::Basic, Variant::Full] {
            let db = GStoreD::builder()
                .distributed(dist.clone())
                .variant(variant)
                .build()
                .unwrap_or_else(|e| panic!("{name}/{}: {e}", p.name()));
            for (bq, (text, _, reference)) in queries.iter().zip(&expected) {
                let results = db.query(text).unwrap();
                let mut got = results.bindings().to_vec();
                got.sort_unstable();
                assert_eq!(
                    &got,
                    reference,
                    "{name}/{}: {} under {}",
                    bq.id,
                    variant.label(),
                    p.name()
                );
            }
        }
    }
    // Baselines run against the hash layout.
    let dist = DistributedGraph::build(g.clone(), &HashPartitioner::new(5));
    for (bq, (_, query, reference)) in queries.iter().zip(&expected) {
        for b in &baselines {
            let out = b.run(&g, &dist, query);
            assert_eq!(&out.bindings, reference, "{name}/{}: {}", bq.id, b.name());
        }
    }
    assert!(
        any_nonempty,
        "{name}: every benchmark query returned empty — dataset broken"
    );
}

#[test]
fn lubm_pipeline_agrees_everywhere() {
    let (g, queries) = dataset_lubm();
    check_dataset("LUBM", g, queries);
}

#[test]
fn yago_pipeline_agrees_everywhere() {
    let (g, queries) = dataset_yago();
    check_dataset("YAGO2", g, queries);
}

#[test]
fn btc_pipeline_agrees_everywhere() {
    let (g, queries) = dataset_btc();
    check_dataset("BTC", g, queries);
}

#[test]
fn expected_result_profiles_hold() {
    // The paper's per-query expectations at benchmark scale: LQ3/YQ2/BQ6/
    // BQ7 empty; the unselective heavyweights (LQ2, YQ3) large.
    let (g, queries) = dataset_lubm();
    let count = |id: &str, g: &RdfGraph, qs: &[BenchQuery]| {
        let bq = qs.iter().find(|q| q.id == id).unwrap();
        let query =
            QueryGraph::from_query(&gstored::sparql::parse_query(&bq.text).unwrap()).unwrap();
        reference(g, &query).len()
    };
    assert_eq!(count("LQ3", &g, &queries), 0, "LQ3 must be empty");
    assert!(
        count("LQ2", &g, &queries) > 100,
        "LQ2 is the unselective star"
    );
    assert!(
        count("LQ4", &g, &queries) > 0,
        "LQ4 finds Department0 professors"
    );
    assert!(
        count("LQ1", &g, &queries) > 0,
        "LQ1 triangle closes sometimes"
    );

    let (g, queries) = dataset_yago();
    assert_eq!(count("YQ2", &g, &queries), 0, "YQ2 must be empty");
    assert!(
        count("YQ1", &g, &queries) > 0,
        "YQ1 anchored influence chain"
    );
    assert!(count("YQ3", &g, &queries) > 500, "YQ3 is the heavyweight");

    let (g, queries) = dataset_btc();
    assert_eq!(count("BQ6", &g, &queries), 0, "BQ6 must be empty");
    assert!(count("BQ1", &g, &queries) > 0, "BQ1 anchored star");
    assert!(count("BQ4", &g, &queries) > 0, "BQ4 citation chain");
}

#[test]
fn distinct_and_limit_apply_end_to_end() {
    let (g, _) = dataset_yago();
    let db = GStoreD::builder()
        .graph(g)
        .partitioner(HashPartitioner::new(4))
        .variant(Variant::Full)
        .build()
        .unwrap();
    let results = db
        .query(
            "SELECT DISTINCT ?t WHERE { ?a <http://dbpedia.org/ontology/mainInterest> ?t } LIMIT 7",
        )
        .unwrap();
    assert_eq!(results.len(), 7);
    let set: std::collections::HashSet<_> = results.vertex_rows().iter().collect();
    assert_eq!(set.len(), 7, "DISTINCT respected");
}
