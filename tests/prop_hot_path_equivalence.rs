//! PR3/PR4 hot-path equivalence oracle.
//!
//! The neighbor-driven matcher, the neighbor-driven LPM enumerator, the
//! hash-join `assemble_lec` (PR3) and the interned/indexed/memoized LEC
//! pruning pipeline (PR4) are pure re-engineerings: on every input they
//! must return exactly what the code they replaced returned. The frozen
//! pre-PR3/pre-PR4 implementations live in `gstored_bench::reference` and
//! act as the oracle here, alongside `assemble_basic` and the centralized
//! matcher, across all 4 engine variants × 3 partitioning strategies.
//!
//! The dense-star and many-feature regressions at the bottom run
//! workloads the pre-PR3/pre-PR4 quadratic dedups needed minutes for;
//! the hash join and the interned-key prune must finish them in
//! interactive time with the exact expected result sets.

use std::collections::HashSet;
use std::time::{Duration, Instant};

use proptest::prelude::*;

use gstored::core::assembly::{assemble_basic, assemble_lec};
use gstored::core::engine::Variant;
use gstored::core::lec::compute_lec_features;
use gstored::core::prune::prune_features;
use gstored::datagen::random::{random_graph, random_query, RandomGraphConfig};
use gstored::partition::{
    HashPartitioner, MetisLikePartitioner, Partitioner, SemanticHashPartitioner,
};
use gstored::prelude::*;
use gstored::store::candidates::CandidateFilter;
use gstored::store::{
    enumerate_local_partial_matches, find_matches, EncodedQuery, LocalPartialMatch,
};
use gstored_bench::bench_pr3::dense_star_lpms;
use gstored_bench::bench_pr4::many_feature_features;
use gstored_bench::reference;

fn partitioners(sites: usize) -> Vec<Box<dyn Partitioner>> {
    vec![
        Box::new(HashPartitioner::new(sites)),
        Box::new(SemanticHashPartitioner::new(sites)),
        Box::new(MetisLikePartitioner::new(sites)),
    ]
}

fn sorted_lpms(mut lpms: Vec<LocalPartialMatch>) -> Vec<LocalPartialMatch> {
    lpms.sort_unstable_by(|a, b| {
        (&a.binding, a.internal_mask, &a.crossing).cmp(&(&b.binding, b.internal_mask, &b.crossing))
    });
    lpms
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Random graph × random query: the optimized matcher, enumerator and
    /// LEC assembly agree with the frozen pre-PR3 oracle, with
    /// `assemble_basic`, and with the centralized reference through every
    /// variant × partitioner engine run.
    #[test]
    fn optimized_hot_paths_equal_prepr3_oracle(
        graph_seed in 0u64..5000,
        query_seed in 0u64..5000,
        n_edges in 1usize..4,
    ) {
        let g = random_graph(&RandomGraphConfig {
            vertices: 24,
            edges: 48,
            predicates: 3,
            seed: graph_seed,
        });
        let text = random_query(n_edges, 3, None, query_seed);
        let query = QueryGraph::from_query(
            &gstored::sparql::parse_query(&text).expect("generated query parses"),
        )
        .expect("generated query is connected");
        let eq = EncodedQuery::encode(&query, g.dict()).expect("no predicate projection");

        // Matcher oracle: optimized vs frozen pre-PR3, identical output
        // (both enumerate in deterministic order — not even sorted first).
        let centralized = find_matches(&g, &eq);
        prop_assert_eq!(
            &centralized,
            &reference::find_matches_prepr3(&g, &eq),
            "matcher drift on {}", text
        );
        let mut expected = centralized;
        expected.sort_unstable();

        for p in &partitioners(3) {
            let dist = DistributedGraph::build(g.clone(), p.as_ref());
            prop_assert_eq!(dist.validate(), None);
            let filter = CandidateFilter::none(eq.vertex_count());

            // Enumerator oracle per fragment, then assembly three ways.
            let mut lpms = Vec::new();
            for f in &dist.fragments {
                let new = sorted_lpms(enumerate_local_partial_matches(f, &eq, &filter));
                let old = sorted_lpms(reference::enumerate_lpms_prepr3(f, &eq, &filter));
                prop_assert_eq!(&new, &old, "LPM drift in F{} on {} ({})", f.id, text, p.name());
                lpms.extend(new);
            }
            let query_edges: Vec<(usize, usize)> =
                eq.edges().iter().map(|e| (e.from, e.to)).collect();
            let lec = assemble_lec(&lpms, eq.vertex_count(), &query_edges);
            prop_assert_eq!(
                &lec,
                &reference::assemble_lec_prepr3(&lpms, eq.vertex_count(), &query_edges),
                "assembly drift on {} ({})", text, p.name()
            );
            prop_assert_eq!(
                &lec,
                &assemble_basic(&lpms, eq.vertex_count()),
                "lec vs basic drift on {} ({})", text, p.name()
            );

            // End to end: every variant equals the centralized reference.
            for variant in Variant::ALL {
                let out = Engine::with_variant(variant)
                    .try_run(&dist, &query)
                    .expect("generated query evaluates");
                let mut got = out.bindings.clone();
                got.sort_unstable();
                prop_assert_eq!(
                    &got, &expected,
                    "{} under {} diverged on {}", variant.label(), p.name(), text
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Random graph × random query: the PR4 pruning pipeline agrees with
    /// the frozen pre-PR4 oracle — Algorithm 1 feature-for-feature, the
    /// join graph edge-for-edge, Algorithm 2 survivor-for-survivor — and
    /// pruning preserves the assembled result set, across 3 partitioners
    /// with every engine variant checked against the centralized matcher.
    #[test]
    fn optimized_prune_equals_prepr4_oracle(
        graph_seed in 0u64..5000,
        query_seed in 0u64..5000,
        n_edges in 2usize..4,
    ) {
        let g = random_graph(&RandomGraphConfig {
            vertices: 24,
            edges: 48,
            predicates: 3,
            seed: graph_seed,
        });
        let text = random_query(n_edges, 3, None, query_seed);
        let query = QueryGraph::from_query(
            &gstored::sparql::parse_query(&text).expect("generated query parses"),
        )
        .expect("generated query is connected");
        let eq = EncodedQuery::encode(&query, g.dict()).expect("no predicate projection");
        let query_edges: Vec<(usize, usize)> =
            eq.edges().iter().map(|e| (e.from, e.to)).collect();
        let expected = {
            let mut m = find_matches(&g, &eq);
            m.sort_unstable();
            m
        };

        for p in &partitioners(3) {
            let dist = DistributedGraph::build(g.clone(), p.as_ref());
            let filter = CandidateFilter::none(eq.vertex_count());

            // Engine-style per-site Algorithm 1 with disjoint id ranges;
            // the interned compression must match the Vec-keyed oracle
            // feature-for-feature (ids, mappings, order — everything).
            let mut lpms: Vec<LocalPartialMatch> = Vec::new();
            let mut features = Vec::new();
            let mut feature_of_lpm: Vec<(usize, Vec<u32>)> = Vec::new(); // (lpm -> sources)
            let mut next = 0u32;
            for f in &dist.fragments {
                let site_lpms = enumerate_local_partial_matches(f, &eq, &filter);
                let (new_f, new_of) = compute_lec_features(&site_lpms, next);
                let (old_f, old_of) = reference::compute_lec_features_prepr4(&site_lpms, next);
                prop_assert_eq!(&new_f, &old_f, "Algorithm 1 drift in F{} on {}", f.id, text);
                prop_assert_eq!(&new_of, &old_of, "feature_of_lpm drift in F{} on {}", f.id, text);
                next += site_lpms.len() as u32 + 1;
                for (i, _) in site_lpms.iter().enumerate() {
                    feature_of_lpm.push((lpms.len() + i, new_f[new_of[i]].sources.clone()));
                }
                lpms.extend(site_lpms);
                features.extend(new_f);
            }

            // Join graph: the crossing-edge index must reproduce the
            // all-pairs sweep exactly (adjacency lists are sorted sets).
            let groups = gstored::core::prune::group_by_sign(&features);
            let old_groups = reference::group_by_sign_prepr4(&features);
            prop_assert_eq!(groups.len(), old_groups.len(), "grouping drift on {}", text);
            for (g_new, g_old) in groups.iter().zip(&old_groups) {
                prop_assert_eq!(g_new.sign, g_old.sign);
                prop_assert_eq!(g_new.members.len(), g_old.features.len());
            }
            let adj = gstored::core::prune::build_join_graph(&features, &groups, &query_edges);
            let old_adj = reference::build_join_graph_prepr4(&old_groups, &query_edges);
            let old_adj: Vec<Vec<usize>> = old_adj
                .into_iter()
                .map(|mut l| {
                    l.sort_unstable();
                    l
                })
                .collect();
            prop_assert_eq!(&adj, &old_adj, "join graph drift on {} ({})", text, p.name());

            // Algorithm 2: identical survivor sets.
            let new_useful: HashSet<u32> = prune_features(&features, eq.vertex_count(), &query_edges)
                .into_iter()
                .collect();
            let old_useful =
                reference::prune_features_prepr4(&features, eq.vertex_count(), &query_edges);
            prop_assert_eq!(&new_useful, &old_useful, "survivor drift on {} ({})", text, p.name());

            // Pruning soundness: assembling only survivors loses nothing.
            let surviving: Vec<LocalPartialMatch> = feature_of_lpm
                .iter()
                .filter(|(_, sources)| sources.iter().any(|s| new_useful.contains(s)))
                .map(|&(i, _)| lpms[i].clone())
                .collect();
            let unpruned = assemble_lec(&lpms, eq.vertex_count(), &query_edges);
            let pruned = assemble_lec(&surviving, eq.vertex_count(), &query_edges);
            prop_assert_eq!(&pruned, &unpruned, "pruning changed matches on {} ({})", text, p.name());

            // End to end: every variant equals the centralized reference
            // (LO and Full run the rewritten prune inside the engine).
            for variant in Variant::ALL {
                let out = Engine::with_variant(variant)
                    .try_run(&dist, &query)
                    .expect("generated query evaluates");
                let mut got = out.bindings.clone();
                got.sort_unstable();
                prop_assert_eq!(
                    &got, &expected,
                    "{} under {} diverged on {}", variant.label(), p.name(), text
                );
            }
        }
    }
}

/// The dense-star worst case: `n²` same-sign LPMs joining through two
/// leaf groups. The pre-PR3 `com_par_join` deduplicated intermediates
/// with an `O(n²)` `Vec::contains` over full `LocalPartialMatch` structs —
/// `O(n⁴)` comparisons here, minutes of wall time at this size. The hash
/// join must produce the exact `n²` matches in interactive time (the
/// generous bound below is ~100× what it needs, so the assertion only
/// fires on a complexity regression, not on a slow machine).
#[test]
fn dense_star_assembly_regression() {
    let n = 120usize;
    let (lpms, nv, qedges) = dense_star_lpms(n);
    assert_eq!(lpms.len(), n * n + 2 * n);
    let start = Instant::now();
    let out = assemble_lec(&lpms, nv, &qedges);
    let elapsed = start.elapsed();
    assert_eq!(out.len(), n * n, "every leaf pair assembles exactly once");
    // Spot-check one binding: hub with the first and last leaf.
    let hub = lpms[0].binding[0].unwrap();
    let first = vec![hub, TermId(1), TermId(1)];
    let last = vec![hub, TermId(n as u64), TermId(n as u64)];
    assert!(out.binary_search(&first).is_ok());
    assert!(out.binary_search(&last).is_ok());
    assert!(
        elapsed < Duration::from_secs(30),
        "dense-star assembly took {elapsed:?}: quadratic dedup is back"
    );
}

/// At a size the pre-PR3 code and the basic baseline can still handle,
/// all three assemblies agree on the dense star.
#[test]
fn dense_star_small_all_assemblies_agree() {
    let (lpms, nv, qedges) = dense_star_lpms(10);
    let lec = assemble_lec(&lpms, nv, &qedges);
    assert_eq!(lec.len(), 100);
    assert_eq!(lec, reference::assemble_lec_prepr3(&lpms, nv, &qedges));
    assert_eq!(lec, assemble_basic(&lpms, nv));
}

/// The many-feature pruning worst case: `n²` distinct middle features
/// fan out into `n²` distinct join intermediates per DFS level. The
/// pre-PR4 `com_lecf_join` deduplicated `next` with an
/// `next.iter_mut().find` linear scan over full `LecFeature` structs —
/// `O(n⁴)` mapping-`Vec` comparisons here, minutes of wall time at this
/// size. The interned-key hash dedup must keep every feature (they all
/// complete) in interactive time (the generous bound below is ~100× what
/// it needs, so the assertion only fires on a complexity regression).
#[test]
fn many_feature_prune_regression() {
    let n = 120usize;
    let (features, nv, qedges) = many_feature_features(n);
    assert_eq!(features.len(), n * n + 2 * n);
    let start = Instant::now();
    let useful = prune_features(&features, nv, &qedges);
    let elapsed = start.elapsed();
    assert_eq!(
        useful.len(),
        features.len(),
        "every feature participates in a complete combination"
    );
    assert!(
        elapsed < Duration::from_secs(30),
        "many-feature prune took {elapsed:?}: quadratic dedup is back"
    );
}

/// At a size the pre-PR4 code can still handle, the optimized prune and
/// the frozen oracle agree survivor-for-survivor on the many-feature
/// workload.
#[test]
fn many_feature_small_prune_agrees_with_oracle() {
    let (features, nv, qedges) = many_feature_features(12);
    let new: HashSet<u32> = prune_features(&features, nv, &qedges).into_iter().collect();
    let old = reference::prune_features_prepr4(&features, nv, &qedges);
    assert_eq!(new, old);
    assert_eq!(new.len(), features.len());
}
