//! PR3 hot-path equivalence oracle.
//!
//! The neighbor-driven matcher, the neighbor-driven LPM enumerator and
//! the hash-join `assemble_lec` are pure re-engineerings: on every input
//! they must return exactly what the code they replaced returned. The
//! frozen pre-PR3 implementations live in `gstored_bench::reference` and
//! act as the oracle here, alongside `assemble_basic` and the centralized
//! matcher, across all 4 engine variants × 3 partitioning strategies.
//!
//! The dense-star regression at the bottom runs a workload the pre-PR3
//! quadratic `next.contains` dedup needed minutes for; the hash join must
//! finish it in interactive time with the exact expected result set.

use std::time::{Duration, Instant};

use proptest::prelude::*;

use gstored::core::assembly::{assemble_basic, assemble_lec};
use gstored::core::engine::Variant;
use gstored::datagen::random::{random_graph, random_query, RandomGraphConfig};
use gstored::partition::{
    HashPartitioner, MetisLikePartitioner, Partitioner, SemanticHashPartitioner,
};
use gstored::prelude::*;
use gstored::store::candidates::CandidateFilter;
use gstored::store::{
    enumerate_local_partial_matches, find_matches, EncodedQuery, LocalPartialMatch,
};
use gstored_bench::bench_pr3::dense_star_lpms;
use gstored_bench::reference;

fn partitioners(sites: usize) -> Vec<Box<dyn Partitioner>> {
    vec![
        Box::new(HashPartitioner::new(sites)),
        Box::new(SemanticHashPartitioner::new(sites)),
        Box::new(MetisLikePartitioner::new(sites)),
    ]
}

fn sorted_lpms(mut lpms: Vec<LocalPartialMatch>) -> Vec<LocalPartialMatch> {
    lpms.sort_unstable_by(|a, b| {
        (&a.binding, a.internal_mask, &a.crossing).cmp(&(&b.binding, b.internal_mask, &b.crossing))
    });
    lpms
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Random graph × random query: the optimized matcher, enumerator and
    /// LEC assembly agree with the frozen pre-PR3 oracle, with
    /// `assemble_basic`, and with the centralized reference through every
    /// variant × partitioner engine run.
    #[test]
    fn optimized_hot_paths_equal_prepr3_oracle(
        graph_seed in 0u64..5000,
        query_seed in 0u64..5000,
        n_edges in 1usize..4,
    ) {
        let g = random_graph(&RandomGraphConfig {
            vertices: 24,
            edges: 48,
            predicates: 3,
            seed: graph_seed,
        });
        let text = random_query(n_edges, 3, None, query_seed);
        let query = QueryGraph::from_query(
            &gstored::sparql::parse_query(&text).expect("generated query parses"),
        )
        .expect("generated query is connected");
        let eq = EncodedQuery::encode(&query, g.dict()).expect("no predicate projection");

        // Matcher oracle: optimized vs frozen pre-PR3, identical output
        // (both enumerate in deterministic order — not even sorted first).
        let centralized = find_matches(&g, &eq);
        prop_assert_eq!(
            &centralized,
            &reference::find_matches_prepr3(&g, &eq),
            "matcher drift on {}", text
        );
        let mut expected = centralized;
        expected.sort_unstable();

        for p in &partitioners(3) {
            let dist = DistributedGraph::build(g.clone(), p.as_ref());
            prop_assert_eq!(dist.validate(), None);
            let filter = CandidateFilter::none(eq.vertex_count());

            // Enumerator oracle per fragment, then assembly three ways.
            let mut lpms = Vec::new();
            for f in &dist.fragments {
                let new = sorted_lpms(enumerate_local_partial_matches(f, &eq, &filter));
                let old = sorted_lpms(reference::enumerate_lpms_prepr3(f, &eq, &filter));
                prop_assert_eq!(&new, &old, "LPM drift in F{} on {} ({})", f.id, text, p.name());
                lpms.extend(new);
            }
            let query_edges: Vec<(usize, usize)> =
                eq.edges().iter().map(|e| (e.from, e.to)).collect();
            let lec = assemble_lec(&lpms, eq.vertex_count(), &query_edges);
            prop_assert_eq!(
                &lec,
                &reference::assemble_lec_prepr3(&lpms, eq.vertex_count(), &query_edges),
                "assembly drift on {} ({})", text, p.name()
            );
            prop_assert_eq!(
                &lec,
                &assemble_basic(&lpms, eq.vertex_count()),
                "lec vs basic drift on {} ({})", text, p.name()
            );

            // End to end: every variant equals the centralized reference.
            for variant in Variant::ALL {
                let out = Engine::with_variant(variant)
                    .try_run(&dist, &query)
                    .expect("generated query evaluates");
                let mut got = out.bindings.clone();
                got.sort_unstable();
                prop_assert_eq!(
                    &got, &expected,
                    "{} under {} diverged on {}", variant.label(), p.name(), text
                );
            }
        }
    }
}

/// The dense-star worst case: `n²` same-sign LPMs joining through two
/// leaf groups. The pre-PR3 `com_par_join` deduplicated intermediates
/// with an `O(n²)` `Vec::contains` over full `LocalPartialMatch` structs —
/// `O(n⁴)` comparisons here, minutes of wall time at this size. The hash
/// join must produce the exact `n²` matches in interactive time (the
/// generous bound below is ~100× what it needs, so the assertion only
/// fires on a complexity regression, not on a slow machine).
#[test]
fn dense_star_assembly_regression() {
    let n = 120usize;
    let (lpms, nv, qedges) = dense_star_lpms(n);
    assert_eq!(lpms.len(), n * n + 2 * n);
    let start = Instant::now();
    let out = assemble_lec(&lpms, nv, &qedges);
    let elapsed = start.elapsed();
    assert_eq!(out.len(), n * n, "every leaf pair assembles exactly once");
    // Spot-check one binding: hub with the first and last leaf.
    let hub = lpms[0].binding[0].unwrap();
    let first = vec![hub, TermId(1), TermId(1)];
    let last = vec![hub, TermId(n as u64), TermId(n as u64)];
    assert!(out.binary_search(&first).is_ok());
    assert!(out.binary_search(&last).is_ok());
    assert!(
        elapsed < Duration::from_secs(30),
        "dense-star assembly took {elapsed:?}: quadratic dedup is back"
    );
}

/// At a size the pre-PR3 code and the basic baseline can still handle,
/// all three assemblies agree on the dense star.
#[test]
fn dense_star_small_all_assemblies_agree() {
    let (lpms, nv, qedges) = dense_star_lpms(10);
    let lec = assemble_lec(&lpms, nv, &qedges);
    assert_eq!(lec.len(), 100);
    assert_eq!(lec, reference::assemble_lec_prepr3(&lpms, nv, &qedges));
    assert_eq!(lec, assemble_basic(&lpms, nv));
}
