//! PR7 streaming-equivalence oracle.
//!
//! `PreparedQuery::stream()` re-plumbs the whole result path — chunked
//! survivor shipping, the arrival-driven incremental join, lazy star
//! pulls — but it is a pure re-engineering of the result *set*: on every
//! input, the collected stream must equal `execute()`'s rows and the
//! frozen centralized matcher, for every engine variant, every
//! partitioner, and every survivor-chunk size. Chunk boundaries are a
//! transport knob; they must never change (or reorder-into-loss,
//! duplicate, or drop) a single solution.

use proptest::prelude::*;

use gstored::core::engine::Variant;
use gstored::datagen::random::{random_graph, random_query, RandomGraphConfig};
use gstored::partition::{
    HashPartitioner, MetisLikePartitioner, Partitioner, SemanticHashPartitioner,
};
use gstored::prelude::*;
use gstored::rdf::VertexId;
use gstored::store::{find_matches, EncodedQuery};
use gstored::GStoreD;

fn partitioners(sites: usize) -> Vec<Box<dyn Partitioner>> {
    vec![
        Box::new(HashPartitioner::new(sites)),
        Box::new(SemanticHashPartitioner::new(sites)),
        Box::new(MetisLikePartitioner::new(sites)),
    ]
}

/// The survivor-chunk sizes under test: pathological (1), prime and
/// smaller than most survivor sets (7), larger than most (64), and the
/// "everything in one reply" degenerate case.
const CHUNKS: [usize; 4] = [1, 7, 64, usize::MAX];

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Random graph × random query: collecting `stream()` equals
    /// `execute()` equals the centralized oracle, across 4 variants × 3
    /// partitioners × 4 chunk sizes.
    #[test]
    fn stream_equals_execute_equals_centralized(
        graph_seed in 0u64..5000,
        query_seed in 0u64..5000,
        n_edges in 1usize..4,
    ) {
        let g = random_graph(&RandomGraphConfig {
            vertices: 24,
            edges: 48,
            predicates: 3,
            seed: graph_seed,
        });
        let text = random_query(n_edges, 3, None, query_seed);

        // Frozen centralized oracle, projected exactly as the session
        // projects (SELECT * keeps every variable, in query order).
        let query = QueryGraph::from_query(
            &gstored::sparql::parse_query(&text).expect("generated query parses"),
        )
        .expect("generated query is connected");
        let eq = EncodedQuery::encode(&query, g.dict()).expect("no predicate projection");
        let proj = eq.projection().to_vec();
        let mut expected: Vec<Vec<VertexId>> = find_matches(&g, &eq)
            .iter()
            .map(|b| proj.iter().map(|&v| b[v]).collect())
            .collect();
        expected.sort_unstable();
        expected.dedup();

        for pi in 0..partitioners(3).len() {
            for variant in Variant::ALL {
                let p = partitioners(3).swap_remove(pi);
                let name = p.name();
                let session = GStoreD::builder()
                    .graph(g.clone())
                    .partitioner_boxed(p)
                    .variant(variant)
                    .build()
                    .expect("session builds");
                let prepared = session.prepare(&text).expect("prepares");

                let mut executed = prepared.execute().expect("executes").vertex_rows().to_vec();
                executed.sort_unstable();
                executed.dedup();
                prop_assert_eq!(
                    &executed, &expected,
                    "execute() under {} / {} diverged on {}", name, variant.label(), text
                );

                for chunk in CHUNKS {
                    let mut streamed: Vec<Vec<VertexId>> = prepared
                        .stream_with_chunk(chunk)
                        .expect("stream starts")
                        .map(|sol| sol.expect("stream yields").into_vertex_row())
                        .collect();
                    streamed.sort_unstable();
                    streamed.dedup();
                    prop_assert_eq!(
                        &streamed, &expected,
                        "stream(chunk={}) under {} / {} diverged on {}",
                        chunk, name, variant.label(), text
                    );
                }
            }
        }
    }
}
