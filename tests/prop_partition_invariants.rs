//! Definition 1 invariants and cost-model sanity under every partitioner
//! on random graphs.

use proptest::prelude::*;

use gstored::datagen::random::{random_graph, RandomGraphConfig};
use gstored::partition::cost::partitioning_cost;
use gstored::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 40, ..ProptestConfig::default() })]

    /// Every strategy produces a valid vertex-disjoint partitioning with
    /// replicated crossing edges, for any graph and site count.
    #[test]
    fn definition1_invariants_hold(
        seed in 0u64..10_000,
        vertices in 2usize..60,
        edges in 1usize..120,
        sites in 1usize..7,
    ) {
        let g = random_graph(&RandomGraphConfig {
            vertices,
            edges,
            predicates: 3,
            seed,
        });
        let partitioners: Vec<Box<dyn Partitioner>> = vec![
            Box::new(HashPartitioner::new(sites)),
            Box::new(SemanticHashPartitioner::new(sites)),
            Box::new(MetisLikePartitioner::new(sites)),
        ];
        for p in &partitioners {
            let dist = DistributedGraph::build(g.clone(), p.as_ref());
            prop_assert_eq!(dist.validate(), None, "{} violated Definition 1", p.name());
            prop_assert_eq!(dist.fragment_count(), sites);
        }
    }

    /// Cost-model identities: zero cost iff no crossing edges; the
    /// expectation term is exactly Σ deg_c(v)² / (2|Ec|).
    #[test]
    fn cost_model_identities(
        seed in 0u64..10_000,
        sites in 1usize..5,
    ) {
        let g = random_graph(&RandomGraphConfig {
            vertices: 30,
            edges: 60,
            predicates: 2,
            seed,
        });
        let dist = DistributedGraph::build(g, &HashPartitioner::new(sites));
        let report = partitioning_cost(&dist);
        let crossing = dist.crossing_edges();
        if crossing.is_empty() {
            prop_assert_eq!(report.cost, 0.0);
        } else {
            // Recompute the expectation independently.
            let mut deg: std::collections::HashMap<_, usize> =
                std::collections::HashMap::new();
            for e in &crossing {
                *deg.entry(e.from).or_insert(0) += 1;
                *deg.entry(e.to).or_insert(0) += 1;
            }
            let expect: f64 = deg.values().map(|&d| (d * d) as f64).sum::<f64>()
                / (2.0 * crossing.len() as f64);
            prop_assert!((report.expectation - expect).abs() < 1e-9);
            prop_assert!(report.expectation >= 0.5, "each edge contributes ≥ 2·1²/(2·|Ec|)");
            prop_assert!(report.cost >= report.expectation);
        }
        // Fragment edge sizes are consistent with the fragments.
        let sizes: Vec<usize> = dist.fragments.iter().map(|f| f.edge_size()).collect();
        prop_assert_eq!(report.fragment_edge_sizes, sizes);
    }

    /// Fragments jointly conserve edges: every edge appears as exactly one
    /// internal copy or exactly two crossing replicas.
    #[test]
    fn edge_conservation(
        seed in 0u64..10_000,
        sites in 2usize..6,
    ) {
        let g = random_graph(&RandomGraphConfig {
            vertices: 25,
            edges: 50,
            predicates: 3,
            seed,
        });
        let total = g.edge_count();
        let dist = DistributedGraph::build(g, &HashPartitioner::new(sites));
        let internal: usize = dist.fragments.iter().map(|f| f.internal_edges.len()).sum();
        let crossing: usize = dist.fragments.iter().map(|f| f.crossing_edges.len()).sum();
        prop_assert_eq!(crossing % 2, 0);
        prop_assert_eq!(internal + crossing / 2, total);
        prop_assert_eq!(dist.crossing_edges().len(), crossing / 2);
    }
}
