//! Offline stand-in for the crates.io `proptest` crate.
//!
//! The build environment has no network access, so this vendored shim
//! implements the subset of the proptest API this workspace uses:
//!
//! * the [`proptest!`] macro with an optional `#![proptest_config(...)]`
//!   inner attribute and `name in strategy` argument bindings,
//! * integer-range, `any::<T>()`, tuple, [`collection::vec`],
//!   [`option::of`] and simple `"[class]{m,n}"` string-regex strategies,
//! * `prop_assert!` / `prop_assert_eq!`.
//!
//! Semantics: each test runs `ProptestConfig::cases` deterministic random
//! cases (seeded per case index, so failures reproduce across runs).
//! There is **no shrinking** — a failing case reports its inputs via the
//! normal assertion message instead.

use std::fmt::Debug;
use std::ops::Range;

/// Per-test configuration, selected with `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
    /// Accepted for API compatibility; this shim never shrinks.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

/// Error value a property body may produce (via `return Err(...)`).
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Outcome of one property case; bodies may `return Ok(())` to skip out
/// of a case early, exactly as under real proptest.
pub type TestCaseResult = Result<(), TestCaseError>;

/// The deterministic RNG driving value generation (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for one test case. `case` keeps per-case streams disjoint.
    pub fn for_case(test_name: &str, case: u64) -> Self {
        // FNV-1a over the test name so different properties see
        // different streams even for the same case index.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in test_name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `0..bound` (`bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// A value generator. Unlike real proptest there is no intermediate
/// `ValueTree`: strategies produce values directly and nothing shrinks.
pub trait Strategy {
    /// The generated value type.
    type Value: Debug;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(usize, u64, u32, u16, u8, i32, i64);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized + Debug {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.next_u64() as u32
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        // Bias toward interesting small/boundary values now and then,
        // since there is no shrinking to find them.
        match rng.below(8) {
            0 => rng.below(16),
            1 => u64::MAX - rng.below(16),
            _ => rng.next_u64(),
        }
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> usize {
        u64::arbitrary(rng) as usize
    }
}

/// Strategy produced by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<A>(std::marker::PhantomData<A>);

impl<A: Arbitrary> Strategy for AnyStrategy<A> {
    type Value = A;
    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

/// The canonical strategy for a type: `any::<u64>()`.
pub fn any<A: Arbitrary>() -> AnyStrategy<A> {
    AnyStrategy(std::marker::PhantomData)
}

/// `"[class]{m,n}"` string-regex strategies.
///
/// Supported syntax: one bracketed character class (single characters and
/// `a-z` ranges) followed by `{n}` or `{m,n}`; a bare class means one
/// repetition. This covers every pattern in the workspace's tests.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (alphabet, min, max) = parse_simple_class_regex(self)
            .unwrap_or_else(|| panic!("unsupported string strategy pattern: {self:?}"));
        let len = min + rng.below((max - min + 1) as u64) as usize;
        (0..len)
            .map(|_| alphabet[rng.below(alphabet.len() as u64) as usize])
            .collect()
    }
}

fn parse_simple_class_regex(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class: Vec<char> = rest[..close].chars().collect();
    let mut alphabet = Vec::new();
    let mut i = 0;
    while i < class.len() {
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (lo, hi) = (class[i], class[i + 2]);
            if lo > hi {
                return None;
            }
            alphabet.extend((lo..=hi).filter(|c| c.is_ascii()));
            i += 3;
        } else {
            alphabet.push(class[i]);
            i += 1;
        }
    }
    if alphabet.is_empty() {
        return None;
    }
    let quant = &rest[close + 1..];
    if quant.is_empty() {
        return Some((alphabet, 1, 1));
    }
    let inner = quant.strip_prefix('{')?.strip_suffix('}')?;
    let (min, max) = match inner.split_once(',') {
        Some((a, b)) => (a.trim().parse().ok()?, b.trim().parse().ok()?),
        None => {
            let n = inner.trim().parse().ok()?;
            (n, n)
        }
    };
    (min <= max).then_some((alphabet, min, max))
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (S0/0, S1/1)
    (S0/0, S1/1, S2/2)
    (S0/0, S1/1, S2/2, S3/3)
    (S0/0, S1/1, S2/2, S3/3, S4/4)
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::fmt::Debug;
    use std::ops::Range;

    /// Anything usable as a vector length specification.
    pub trait IntoSizeRange {
        /// Lower and inclusive upper length bound.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty vec size range");
            (self.start, self.end - 1)
        }
    }

    /// Strategy for vectors of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.min + rng.below((self.max - self.min + 1) as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `vec(element, len)` / `vec(element, min..max)`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }
}

/// Option strategies (`prop::option::of`).
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy for `Option<T>` (~25% `None`, like proptest's default).
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            (rng.below(4) != 0).then(|| self.0.generate(rng))
        }
    }

    /// `of(strategy)`: sometimes `None`, otherwise `Some(value)`.
    pub fn of<S: Strategy>(strategy: S) -> OptionStrategy<S> {
        OptionStrategy(strategy)
    }
}

/// The usual glob import: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Arbitrary, ProptestConfig, Strategy, TestRng};
}

/// Assert a condition inside a property (plain assertion in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property (plain assertion in this shim).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a property (plain assertion in this shim).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Define property tests: each `fn name(arg in strategy, ...)` becomes a
/// `#[test]` running [`ProptestConfig::cases`] deterministic cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@funcs ($config) $($rest)*);
    };
    (
        $(#[$meta:meta])* fn $($rest:tt)*
    ) => {
        $crate::proptest!(@funcs ($crate::ProptestConfig::default()) $(#[$meta])* fn $($rest)*);
    };
    (@funcs ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                for case in 0..config.cases as u64 {
                    let mut proptest_rng =
                        $crate::TestRng::for_case(stringify!($name), case);
                    $(
                        let $arg =
                            $crate::Strategy::generate(&$strategy, &mut proptest_rng);
                    )+
                    #[allow(clippy::redundant_closure_call)]
                    let case_result = (|| -> $crate::TestCaseResult {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    if let Err(e) = case_result {
                        panic!("property {} failed on case {case}: {e}", stringify!($name));
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn regex_parser_handles_workspace_patterns() {
        for (pat, lens) in [
            ("[ -~]{0,30}", (0usize, 30usize)),
            ("[a-z]{2}", (2, 2)),
            ("[a-zA-Z0-9 ]{0,40}", (0, 40)),
            ("[a-z]{1,10}", (1, 10)),
        ] {
            let (alphabet, min, max) = super::parse_simple_class_regex(pat).expect(pat);
            assert!(!alphabet.is_empty());
            assert_eq!((min, max), lens);
        }
    }

    #[test]
    fn generation_is_deterministic_per_case() {
        let mut a = TestRng::for_case("t", 3);
        let mut b = TestRng::for_case("t", 3);
        let s = prop::collection::vec(0usize..10, 0..8);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn macro_binds_all_strategies(
            x in 0u64..100,
            v in prop::collection::vec(0usize..4, 5),
            o in prop::option::of(any::<bool>()),
            s in "[a-z]{1,4}",
            t in (0u32..10, 1usize..3),
        ) {
            prop_assert!(x < 100);
            prop_assert_eq!(v.len(), 5);
            prop_assert!(v.iter().all(|&e| e < 4));
            if let Some(b) = o {
                prop_assert!(u8::from(b) <= 1);
            }
            prop_assert!((1..=4).contains(&s.len()));
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            prop_assert!(t.0 < 10 && t.1 >= 1);
        }
    }
}
