//! Offline stand-in for the crates.io `fxhash` crate.
//!
//! Implements the Firefox `FxHasher`: a fast, **deterministic**,
//! non-cryptographic hash used for hot-path hash maps keyed by
//! machine-generated data (vertex ids, bindings, edge refs). Unlike the
//! standard library's SipHash it performs one multiply-rotate per word
//! and is not seeded per-process, so hash-based containers iterate and
//! cost identically across runs — which the benchmark harness relies on.
//!
//! The build environment has no network access; this shim implements
//! exactly the API subset the workspace uses: [`FxHasher`],
//! [`FxBuildHasher`], the [`FxHashMap`]/[`FxHashSet`] aliases, and the
//! [`hash64`] convenience function.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hash, Hasher};

/// 64-bit Fx seed: `2^64 / φ`, the same constant Firefox uses.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// A `BuildHasher` producing [`FxHasher`]s.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// The Firefox hasher: one `rotate ^ mul` step per input word.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("8 bytes")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// Hash a value once with [`FxHasher`].
#[inline]
pub fn hash64<T: Hash + ?Sized>(v: &T) -> u64 {
    let mut h = FxHasher::default();
    v.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_hashers() {
        let a = hash64(&[1u64, 2, 3][..]);
        let b = hash64(&[1u64, 2, 3][..]);
        assert_eq!(a, b);
        assert_ne!(a, hash64(&[1u64, 2, 4][..]));
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        m.insert(7, "seven");
        assert_eq!(m.get(&7), Some(&"seven"));
        let mut s: FxHashSet<Vec<u64>> = FxHashSet::default();
        assert!(s.insert(vec![1, 2]));
        assert!(!s.insert(vec![1, 2]));
    }

    #[test]
    fn unaligned_byte_tails_hash_distinctly() {
        assert_ne!(hash64("abc"), hash64("abd"));
        assert_ne!(hash64("abcdefgh"), hash64("abcdefgi"));
    }
}
