//! Offline stand-in for the crates.io `criterion` crate.
//!
//! The build environment has no network access, so this vendored shim
//! implements the subset of the Criterion API the workspace's benches
//! use: [`Criterion::benchmark_group`], group configuration
//! (`sample_size` / `warm_up_time` / `measurement_time`),
//! `bench_function` / `bench_with_input`, [`BenchmarkId`], [`black_box`]
//! and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement model: each benchmark warms up for the configured warm-up
//! time, then runs timed batches until the measurement time elapses (at
//! least `sample_size` iterations), and prints mean / min / max wall time
//! per iteration. No statistics beyond that — the point is a usable
//! `cargo bench` without the real dependency, not publication-grade
//! numbers.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`, Criterion's conventional display form.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// A parameter-only id (`from_parameter` in real Criterion).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
    min: Duration,
    max: Duration,
}

impl Bencher {
    fn new() -> Self {
        Bencher {
            iterations: 0,
            elapsed: Duration::ZERO,
            min: Duration::MAX,
            max: Duration::ZERO,
        }
    }

    /// Time `routine` repeatedly; the harness decides the iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        let out = routine();
        let once = start.elapsed();
        black_box(out);
        self.record(once);
    }

    fn record(&mut self, once: Duration) {
        self.iterations += 1;
        self.elapsed += once;
        self.min = self.min.min(once);
        self.max = self.max.max(once);
    }

    fn mean(&self) -> Duration {
        if self.iterations == 0 {
            Duration::ZERO
        } else {
            self.elapsed / self.iterations as u32
        }
    }
}

/// Shared bench settings (per group, or Criterion-wide defaults).
#[derive(Debug, Clone)]
struct Settings {
    sample_size: u64,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            sample_size: 20,
            warm_up_time: Duration::from_millis(200),
            measurement_time: Duration::from_millis(800),
        }
    }
}

fn run_one(full_id: &str, settings: &Settings, mut routine: impl FnMut(&mut Bencher)) {
    // Warm-up: run (untimed for reporting) until the warm-up budget is spent.
    let warm_start = Instant::now();
    while warm_start.elapsed() < settings.warm_up_time {
        let mut b = Bencher::new();
        routine(&mut b);
        if b.iterations == 0 {
            break; // routine never called iter(); nothing to measure
        }
    }

    let mut b = Bencher::new();
    let measure_start = Instant::now();
    loop {
        let before = b.iterations;
        routine(&mut b);
        if b.iterations == before {
            break; // routine never called iter()
        }
        if b.iterations >= settings.sample_size
            && measure_start.elapsed() >= settings.measurement_time
        {
            break;
        }
    }
    if b.iterations == 0 {
        println!("{full_id:<60} (no measurement: bencher unused)");
    } else {
        println!(
            "{full_id:<60} mean {:>12?}  min {:>12?}  max {:>12?}  ({} iters)",
            b.mean(),
            b.min,
            b.max,
            b.iterations
        );
    }
}

/// A named group of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    settings: Settings,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Iterations per measurement (lower bound in this shim).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n as u64;
        self
    }

    /// Warm-up budget before measuring.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.settings.warm_up_time = d;
        self
    }

    /// Measurement budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.settings.measurement_time = d;
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.id);
        run_one(&full, &self.settings, f);
        self
    }

    /// Run one benchmark parameterized by an input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.id);
        run_one(&full, &self.settings, |b| f(b, input));
        self
    }

    /// End the group (no-op beyond API compatibility).
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    /// Accepted for API compatibility; this shim takes no CLI arguments.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            name,
            settings: self.settings.clone(),
            _criterion: self,
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        run_one(&id.id, &self.settings, f);
        self
    }
}

/// Collect benchmark functions under one group name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.warm_up_time(Duration::from_millis(1));
        group.measurement_time(Duration::from_millis(5));
        let mut runs = 0u64;
        group.bench_function("noop", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        group.finish();
        assert!(runs >= 3);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("q", 4).id, "q/4");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }
}
