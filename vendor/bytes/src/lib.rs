//! Offline stand-in for the crates.io `bytes` crate.
//!
//! The build environment has no network access, so this vendored shim
//! implements the subset the workspace's wire codec uses: [`BytesMut`] as
//! an appendable buffer, [`Bytes`] as a cheaply cloneable shared view with
//! cursor-style reads, and the [`Buf`] / [`BufMut`] method traits.
//!
//! [`Bytes`] shares its backing allocation (`Arc<[u8]>`), so `clone` and
//! [`Bytes::slice`] are O(1) like the real crate; reads advance an offset
//! into the shared buffer.

use std::sync::Arc;

/// Read-side methods (subset of `bytes::Buf`).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Whether any bytes are left.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Read one byte, advancing the cursor.
    fn get_u8(&mut self) -> u8;

    /// Read a little-endian u64, advancing the cursor.
    fn get_u64_le(&mut self) -> u64;
}

/// Write-side methods (subset of `bytes::BufMut`).
pub trait BufMut {
    /// Append one byte.
    fn put_u8(&mut self, v: u8);

    /// Append a little-endian u64.
    fn put_u64_le(&mut self, v: u64);

    /// Append a byte slice.
    fn put_slice(&mut self, src: &[u8]);
}

/// A shared, immutable byte buffer with an internal read cursor.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(&[][..]),
            start: 0,
            end: 0,
        }
    }

    /// Wrap a static slice (copies in this shim; size semantics match).
    pub fn from_static(s: &'static [u8]) -> Self {
        Bytes::from(s.to_vec())
    }

    /// Length of the unread portion.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the unread portion is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// O(1) sub-view of the unread portion.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(
            range.start <= range.end && self.start + range.end <= self.end,
            "slice out of bounds"
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    /// Copy the unread portion into a fresh vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }

    /// Split off the next `len` bytes as an O(1) shared view.
    pub fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        assert!(len <= self.len(), "copy_to_bytes past end");
        let out = self.slice(0..len);
        self.start += len;
        out
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::from(v.into_boxed_slice()),
            start: 0,
            end,
        }
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_ref()
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_ref() {
            write!(f, "\\x{b:02x}")?;
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u8(&mut self) -> u8 {
        assert!(self.has_remaining(), "get_u8 past end");
        let b = self.data[self.start];
        self.start += 1;
        b
    }

    fn get_u64_le(&mut self) -> u64 {
        assert!(self.remaining() >= 8, "get_u64_le past end");
        let mut le = [0u8; 8];
        le.copy_from_slice(&self.data[self.start..self.start + 8]);
        self.start += 8;
        u64::from_le_bytes(le)
    }
}

/// A growable byte buffer.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Freeze into an immutable shared [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }

    fn put_u64_le(&mut self, v: u64) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_freeze_read_roundtrip() {
        let mut w = BytesMut::with_capacity(16);
        w.put_u8(7);
        w.put_u64_le(0xdead_beef);
        w.put_slice(&[1, 2, 3]);
        let mut b = w.freeze();
        assert_eq!(b.len(), 12);
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u64_le(), 0xdead_beef);
        assert_eq!(b.copy_to_bytes(3).as_ref(), &[1, 2, 3]);
        assert!(!b.has_remaining());
    }

    #[test]
    fn slice_and_clone_share_data() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(s.as_ref(), &[2, 3, 4]);
        assert_eq!(b.clone().as_ref(), b.as_ref());
        assert_eq!(b.to_vec(), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn reads_advance_past_slices() {
        let mut b = Bytes::from(vec![9, 8, 7]);
        assert_eq!(b.get_u8(), 9);
        let rest = b.slice(0..2);
        assert_eq!(rest.as_ref(), &[8, 7]);
    }

    #[test]
    #[should_panic(expected = "slice out of bounds")]
    fn out_of_bounds_slice_panics() {
        let _ = Bytes::from(vec![1]).slice(0..2);
    }
}
