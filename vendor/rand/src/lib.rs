//! Offline stand-in for the crates.io `rand` crate.
//!
//! The build environment has no network access, so this vendored shim
//! implements exactly the 0.8-era API surface the workspace uses:
//! [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! methods `gen_range` (over integer `Range` / `RangeInclusive`) and
//! `gen_bool`. The generator is SplitMix64: tiny, fast, and statistically
//! fine for data generation (it is not, and does not need to be,
//! `rand`-bit-compatible — all workspace seeds are self-consistent).

use std::ops::{Range, RangeInclusive};

/// A random number generator core: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding support.
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw one value from the range using `rng`.
    fn sample_one(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_one(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_one(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64 + 1;
                if span == 0 {
                    // Full-width inclusive range.
                    return start + rng.next_u64() as $t;
                }
                start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_sample_range!(usize, u64, u32, u16, u8, i32, i64);

/// User-facing random value generation.
pub trait Rng: RngCore {
    /// Uniform sample from an integer range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_one(self)
    }

    /// Bernoulli trial with success probability `p` (`0.0 ..= 1.0`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        // 53 uniform mantissa bits, the same construction rand uses.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<T: RngCore> Rng for T {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast PRNG (SplitMix64 core).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng {
                state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..9);
            assert!((3..9).contains(&v));
            let w = rng.gen_range(2..=4);
            assert!((2..=4).contains(&w));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut counts = [0usize; 4];
        for _ in 0..4000 {
            counts[rng.gen_range(0usize..4)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "skewed bucket: {counts:?}");
        }
    }
}
