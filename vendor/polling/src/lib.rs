//! Offline stand-in for the crates.io `polling` crate: a minimal
//! readiness poller over Linux `epoll`.
//!
//! Implements the subset of the `polling` v3 API this workspace uses:
//! [`Poller`] (`new` / `add` / `modify` / `delete` / `wait` / `notify`),
//! [`Event`] and [`Events`]. One deliberate deviation from the real
//! crate: interests are **level-triggered and persistent** (plain epoll
//! semantics) instead of oneshot, so callers do not need to re-arm after
//! every wake — the reactor in `gstored-net` relies on that.
//!
//! On non-Linux targets the same API compiles but every constructor
//! returns an `Unsupported` I/O error; the workspace's reactor transport
//! is Linux-only and falls back to the blocking transport elsewhere.

#![deny(missing_docs)]

/// A readiness interest / readiness report for one registered source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Caller-chosen key identifying the source (e.g. a site index).
    pub key: usize,
    /// Interest in (or report of) read readiness.
    pub readable: bool,
    /// Interest in (or report of) write readiness.
    pub writable: bool,
}

impl Event {
    /// Interest in both read and write readiness.
    pub fn all(key: usize) -> Event {
        Event {
            key,
            readable: true,
            writable: true,
        }
    }

    /// Interest in read readiness only.
    pub fn readable(key: usize) -> Event {
        Event {
            key,
            readable: true,
            writable: false,
        }
    }

    /// Interest in write readiness only.
    pub fn writable(key: usize) -> Event {
        Event {
            key,
            readable: false,
            writable: true,
        }
    }

    /// No interest; the source stays registered but silent.
    pub fn none(key: usize) -> Event {
        Event {
            key,
            readable: false,
            writable: false,
        }
    }
}

/// Buffer that [`Poller::wait`] fills with ready events.
#[derive(Debug, Default)]
pub struct Events {
    list: Vec<Event>,
}

impl Events {
    /// An empty event buffer.
    pub fn new() -> Events {
        Events { list: Vec::new() }
    }

    /// Iterate over the events delivered by the last `wait`.
    pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
        self.list.iter().copied()
    }

    /// Number of events delivered by the last `wait`.
    pub fn len(&self) -> usize {
        self.list.len()
    }

    /// Whether the last `wait` delivered no events.
    pub fn is_empty(&self) -> bool {
        self.list.is_empty()
    }

    /// Discard all buffered events.
    pub fn clear(&mut self) {
        self.list.clear();
    }
}

pub use sys::Poller;

#[cfg(target_os = "linux")]
mod sys {
    use super::{Event, Events};
    use std::io;
    use std::os::unix::io::{AsRawFd, RawFd};
    use std::time::Duration;

    // std already links libc; declare just the epoll/eventfd entry
    // points instead of depending on the `libc` crate.
    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn eventfd(initval: u32, flags: i32) -> i32;
        fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
        fn close(fd: i32) -> i32;
    }

    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLLIN: u32 = 0x1;
    const EPOLLOUT: u32 = 0x4;
    const EPOLLERR: u32 = 0x8;
    const EPOLLHUP: u32 = 0x10;
    const EPOLLRDHUP: u32 = 0x2000;
    const EPOLL_CLOEXEC: i32 = 0x80000;
    const EFD_CLOEXEC: i32 = 0x80000;
    const EFD_NONBLOCK: i32 = 0x800;

    /// The kernel's `struct epoll_event`; packed on x86-64 per the ABI.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    /// Key reserved for the internal notify eventfd; never reported.
    const NOTIFY_KEY: u64 = u64::MAX;

    fn cvt(ret: i32) -> io::Result<i32> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    /// Level-triggered epoll instance with an eventfd wakeup channel.
    #[derive(Debug)]
    pub struct Poller {
        epfd: RawFd,
        event_fd: RawFd,
    }

    // The fds are used concurrently only through &self syscalls, which
    // epoll and eventfd both permit from multiple threads.
    unsafe impl Send for Poller {}
    unsafe impl Sync for Poller {}

    impl Poller {
        /// Create a new poller (epoll instance plus notify eventfd).
        pub fn new() -> io::Result<Poller> {
            let epfd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
            let event_fd = match cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) }) {
                Ok(fd) => fd,
                Err(e) => {
                    unsafe { close(epfd) };
                    return Err(e);
                }
            };
            let poller = Poller { epfd, event_fd };
            let mut ev = EpollEvent {
                events: EPOLLIN,
                data: NOTIFY_KEY,
            };
            cvt(unsafe { epoll_ctl(poller.epfd, EPOLL_CTL_ADD, poller.event_fd, &mut ev) })?;
            Ok(poller)
        }

        fn mask(interest: Event) -> u32 {
            let mut events = EPOLLRDHUP;
            if interest.readable {
                events |= EPOLLIN;
            }
            if interest.writable {
                events |= EPOLLOUT;
            }
            events
        }

        /// Register a source with the given interest.
        ///
        /// Unlike the real `polling` crate, interests here are
        /// level-triggered and persistent: the source keeps reporting
        /// readiness until [`Poller::modify`]d or [`Poller::delete`]d.
        pub fn add(&self, source: &impl AsRawFd, interest: Event) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: Self::mask(interest),
                data: interest.key as u64,
            };
            cvt(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_ADD, source.as_raw_fd(), &mut ev) })?;
            Ok(())
        }

        /// Replace a registered source's interest.
        pub fn modify(&self, source: &impl AsRawFd, interest: Event) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: Self::mask(interest),
                data: interest.key as u64,
            };
            cvt(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_MOD, source.as_raw_fd(), &mut ev) })?;
            Ok(())
        }

        /// Deregister a source.
        pub fn delete(&self, source: &impl AsRawFd) -> io::Result<()> {
            let mut ev = EpollEvent { events: 0, data: 0 };
            cvt(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, source.as_raw_fd(), &mut ev) })?;
            Ok(())
        }

        /// Block until at least one source is ready, a [`Poller::notify`]
        /// arrives, or `timeout` elapses (`None` = wait forever).
        /// Returns the number of events written into `events`.
        pub fn wait(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<usize> {
            events.clear();
            let timeout_ms: i32 = match timeout {
                None => -1,
                Some(d) => d.as_millis().min(i32::MAX as u128) as i32,
            };
            let mut buf = [EpollEvent { events: 0, data: 0 }; 64];
            let n = loop {
                match cvt(unsafe {
                    epoll_wait(self.epfd, buf.as_mut_ptr(), buf.len() as i32, timeout_ms)
                }) {
                    Ok(n) => break n as usize,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                }
            };
            for ev in &buf[..n] {
                let (bits, data) = (ev.events, ev.data);
                if data == NOTIFY_KEY {
                    // Drain the eventfd so the next notify re-arms.
                    let mut b = [0u8; 8];
                    unsafe { read(self.event_fd, b.as_mut_ptr(), b.len()) };
                    continue;
                }
                events.list.push(Event {
                    key: data as usize,
                    readable: bits & (EPOLLIN | EPOLLHUP | EPOLLERR | EPOLLRDHUP) != 0,
                    writable: bits & (EPOLLOUT | EPOLLHUP | EPOLLERR) != 0,
                });
            }
            Ok(events.list.len())
        }

        /// Wake up a concurrent [`Poller::wait`] call.
        pub fn notify(&self) -> io::Result<()> {
            let one: u64 = 1;
            let ret = unsafe { write(self.event_fd, &one as *const u64 as *const u8, 8) };
            // EAGAIN means the counter is already nonzero: a wakeup is
            // pending anyway, so that is a success.
            if ret < 0 {
                let e = io::Error::last_os_error();
                if e.kind() != io::ErrorKind::WouldBlock {
                    return Err(e);
                }
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            unsafe {
                close(self.event_fd);
                close(self.epfd);
            }
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod sys {
    use super::{Event, Events};
    use std::io;
    use std::time::Duration;

    fn unsupported() -> io::Error {
        io::Error::new(
            io::ErrorKind::Unsupported,
            "polling shim: only the Linux epoll backend is implemented",
        )
    }

    /// Stub poller for non-Linux targets; every constructor errors.
    #[derive(Debug)]
    pub struct Poller {
        _private: (),
    }

    impl Poller {
        /// Always fails with `Unsupported` on this target.
        pub fn new() -> io::Result<Poller> {
            Err(unsupported())
        }

        /// Unreachable (no `Poller` can be constructed on this target).
        pub fn add(&self, _source: &impl std::any::Any, _interest: Event) -> io::Result<()> {
            Err(unsupported())
        }

        /// Unreachable (no `Poller` can be constructed on this target).
        pub fn modify(&self, _source: &impl std::any::Any, _interest: Event) -> io::Result<()> {
            Err(unsupported())
        }

        /// Unreachable (no `Poller` can be constructed on this target).
        pub fn delete(&self, _source: &impl std::any::Any) -> io::Result<()> {
            Err(unsupported())
        }

        /// Unreachable (no `Poller` can be constructed on this target).
        pub fn wait(&self, _events: &mut Events, _t: Option<Duration>) -> io::Result<usize> {
            Err(unsupported())
        }

        /// Unreachable (no `Poller` can be constructed on this target).
        pub fn notify(&self) -> io::Result<()> {
            Err(unsupported())
        }
    }
}

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::net::{TcpListener, TcpStream};
    use std::time::Duration;

    #[test]
    fn notify_wakes_wait() {
        let poller = std::sync::Arc::new(Poller::new().unwrap());
        let waker = std::sync::Arc::clone(&poller);
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            waker.notify().unwrap();
        });
        let mut events = Events::new();
        // Wakes with zero events well before the 5s timeout.
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 0);
        handle.join().unwrap();
    }

    #[test]
    fn wait_times_out_empty() {
        let poller = Poller::new().unwrap();
        let mut events = Events::new();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0);
        assert!(events.is_empty());
    }

    #[test]
    fn tcp_readability_is_reported_level_triggered() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        poller.add(&server, Event::readable(7)).unwrap();

        client.write_all(b"x").unwrap();
        let mut events = Events::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        let ev = events.iter().find(|e| e.key == 7).expect("readable event");
        assert!(ev.readable);

        // Level-triggered: the unread byte keeps reporting readiness.
        events.clear();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.key == 7 && e.readable));

        // Interest can be swapped to write-only and back.
        poller.modify(&server, Event::none(7)).unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert_eq!(n, 0);
        poller.delete(&server).unwrap();
    }
}
